//! Parallel saturation — the paper's §II-D open issue ("efficiently
//! maintaining RDF graph saturation, especially in a distributed setting";
//! "As memory sizes grow larger, in-memory RDF reasoning is also
//! attracting interest"), in the style of its ref. \[29\] (Motik et al.,
//! *Parallel materialisation of datalog programs in centralised,
//! main-memory RDF systems*).
//!
//! The schema-closure-specialised saturation of [`crate::saturate`] is
//! embarrassingly parallel in its instance pass: once the (small) schema
//! is closed, each base triple's consequence set is independent. The
//! parallel engine is a two-phase pipeline over the sharded graph of
//! `rdf_model`:
//!
//! 1. **derive** — extract and close the schema (serial — the schema is
//!    tiny), then partition the base instance triples across worker
//!    threads; each worker routes the base triples plus its
//!    locally-deduplicated consequences into per-shard
//!    [`TripleBuckets`] *at emit time*, against the shared read-only
//!    closed schema;
//! 2. **merge** — [`Graph::merge_buckets`] folds every (index, shard)
//!    bucket group into the output concurrently, one task per shard per
//!    index. Write targets are disjoint, so the merge runs without locks
//!    or cross-shard contention — this replaces the serial
//!    one-triple-at-a-time insertion loop that previously bounded
//!    scalability (Amdahl) regardless of derive-phase parallelism.
//!
//! No up-front clone of the input graph is taken: the output graph is
//! built shard-by-shard from the routed buckets (base triples ride along
//! in them).

use crate::saturation::{derive_instance_consequences, SaturationResult, SaturationStats};
use crate::schema::Schema;
use obs::CancelToken;
use rdf_model::{Graph, Triple, TripleBuckets, Vocab, WorkerPanicked};
use rustc_hash::{FxHashMap, FxHashSet};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use webreason_failpoints::fail_point;

/// How many base triples a derive worker processes between cancellation
/// polls. Small enough that an expired deadline stops a worker within
/// microseconds of work; large enough that the poll (one atomic load)
/// never shows up in a profile.
const CANCEL_POLL_STRIDE: usize = 512;

/// Why a cancellable parallel saturation returned no result.
#[derive(Debug)]
pub enum ParallelError {
    /// A derive worker panicked (a bug, or an armed failpoint).
    Worker(WorkerPanicked),
    /// The [`CancelToken`] tripped; every worker's routed buckets were
    /// discarded whole and nothing was merged into an output graph.
    Cancelled,
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Worker(e) => write!(f, "{e}"),
            ParallelError::Cancelled => f.write_str("parallel saturation cancelled"),
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<WorkerPanicked> for ParallelError {
    fn from(e: WorkerPanicked) -> Self {
        ParallelError::Worker(e)
    }
}

/// Computes `G∞` with `threads` worker threads for both phases.
///
/// Produces exactly the same graph as [`crate::saturate`] (asserted by the
/// test suite); the output graph is sharded `threads.next_power_of_two()`
/// ways. `stats.rule_firings` records, besides the derivation counts
/// (`"parallel-derived"`, `"parallel-new"`), the wall-clock of the two
/// phases in microseconds (`"derive-us"`, `"merge-us"`) — the A-PAR
/// experiment reports this split per thread count.
///
/// Panic isolation: a panic inside a derive worker is caught and the
/// whole pass **falls back to the sequential engine**, which computes the
/// identical graph — callers that want the panic surfaced instead use
/// [`try_saturate_parallel`].
pub fn saturate_parallel(g: &Graph, vocab: &Vocab, threads: NonZeroUsize) -> SaturationResult {
    match try_saturate_parallel(g, vocab, threads) {
        Ok(result) => result,
        // The sequential engine derives the same closure; the store stays
        // consistent (and unpoisoned) even when a worker died.
        Err(_) => crate::saturate(g, vocab),
    }
}

/// [`saturate_parallel`] that surfaces a derive-worker panic as a
/// structured [`WorkerPanicked`] error instead of falling back. No
/// partial output escapes: the routed buckets of a failed pass are
/// dropped whole.
pub fn try_saturate_parallel(
    g: &Graph,
    vocab: &Vocab,
    threads: NonZeroUsize,
) -> Result<SaturationResult, WorkerPanicked> {
    match try_saturate_parallel_cancel(g, vocab, threads, &CancelToken::none()) {
        Ok(result) => Ok(result),
        Err(ParallelError::Worker(e)) => Err(e),
        Err(ParallelError::Cancelled) => {
            unreachable!("a CancelToken::none() saturation never cancels")
        }
    }
}

/// [`try_saturate_parallel`] with cooperative cancellation: each derive
/// worker polls `cancel` every [`CANCEL_POLL_STRIDE`] base triples, and
/// the main thread polls it between the derive and merge phases. On trip
/// every worker's routed buckets are dropped whole, no counters other
/// than `rdfs.parallel.cancelled` are published, and
/// [`ParallelError::Cancelled`] is returned.
///
/// The store's maintenance path deliberately passes
/// [`CancelToken::none`]: an update's saturation must run to completion
/// for atomicity, so only standalone/offline saturations (CLI, bench)
/// are candidates for a live token.
pub fn try_saturate_parallel_cancel(
    g: &Graph,
    vocab: &Vocab,
    threads: NonZeroUsize,
    cancel: &CancelToken,
) -> Result<SaturationResult, ParallelError> {
    let reg = obs::global();
    let _run_span = reg.span("rdfs.parallel.run");
    let threads = threads.get();
    let schema = Schema::extract(g, vocab);
    let shard_count = threads.next_power_of_two();
    let mut out = Graph::with_shard_count(shard_count);

    // Phase 1 — derive. Workers route base triples and their consequences
    // into per-shard buckets at emit time; each deduplicates derivations
    // locally so bucket traffic stays proportional to distinct
    // consequences per worker.
    let derive_span = reg.span("rdfs.parallel.derive");
    let derive_start = Instant::now();
    let base: Vec<Triple> = g.iter().collect();
    let chunk = base.len().div_ceil(threads).max(1);
    // `None` inside the Ok arm means the worker saw the token trip and
    // abandoned its chunk; its partial bucket never leaves the closure.
    type WorkerResult = Result<Option<(TripleBuckets, u64)>, WorkerPanicked>;
    let worker_out: Vec<WorkerResult> = std::thread::scope(|scope| {
        let schema = &schema;
        let handles: Vec<_> = base
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    // Panic isolation: a panicking worker (a bug, or an
                    // armed failpoint) is caught here so the scope joins
                    // cleanly and no lock or shared structure is poisoned.
                    catch_unwind(AssertUnwindSafe(|| {
                        fail_point!("rdfs.parallel.worker");
                        let mut bucket = TripleBuckets::new(shard_count);
                        let mut local =
                            FxHashSet::with_capacity_and_hasher(part.len() * 2, Default::default());
                        for (i, t) in part.iter().enumerate() {
                            if i % CANCEL_POLL_STRIDE == 0 && cancel.is_cancelled() {
                                return None;
                            }
                            bucket.push(*t);
                            derive_instance_consequences(t, vocab, schema, |_, c| {
                                if local.insert(c) {
                                    bucket.push(c);
                                }
                            });
                        }
                        Some((bucket, local.len() as u64))
                    }))
                    .map_err(|payload| {
                        WorkerPanicked::from_payload("rdfs.parallel.worker", payload)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("caught-panic worker never unwinds"))
            .collect()
    });
    let mut buckets: Vec<TripleBuckets> = Vec::with_capacity(worker_out.len() + 1);
    let mut worker_raws: Vec<u64> = Vec::with_capacity(worker_out.len());
    let mut derived_raw = 0u64;
    let mut cancelled = false;
    for result in worker_out {
        match result? {
            Some((bucket, raw)) => {
                derived_raw += raw;
                worker_raws.push(raw);
                buckets.push(bucket);
            }
            // One cancelled worker discards the whole pass — but keep
            // draining so a sibling's panic still surfaces as Worker.
            None => cancelled = true,
        }
    }
    if cancelled {
        reg.add("rdfs.parallel.cancelled", 1);
        return Err(ParallelError::Cancelled);
    }
    // The closed schema is part of G∞. It is tiny, so the main thread
    // routes it, counting its contribution for the stats split below.
    let mut schema_bucket = TripleBuckets::new(shard_count);
    let mut schema_seen: FxHashSet<Triple> = FxHashSet::default();
    let mut schema_new = 0usize;
    for t in schema.closed_triples(vocab) {
        if schema_seen.insert(t) {
            schema_bucket.push(t);
            if !g.contains(&t) {
                schema_new += 1;
            }
        }
    }
    buckets.push(schema_bucket);
    let derive_us = derive_start.elapsed().as_micros() as u64;
    drop(derive_span);

    // Phase 2 — merge. One task per (index, shard), all concurrent. The
    // failpoint sits between the phases: killing here models a crash
    // after derivation but before any write lands in the output graph.
    // Last cancellation poll: past this point the merge runs to
    // completion (its writes are into the private `out` graph anyway).
    if cancel.is_cancelled() {
        reg.add("rdfs.parallel.cancelled", 1);
        return Err(ParallelError::Cancelled);
    }
    for raw in worker_raws {
        // Per-worker derivation spread — skew here means poor balance.
        // Deferred past the last cancellation poll so an abandoned pass
        // publishes nothing but `rdfs.parallel.cancelled`.
        reg.record("rdfs.parallel.worker_derived", raw);
    }
    fail_point!("store.merge.pre_commit");
    let merge_span = reg.span("rdfs.parallel.merge");
    let merge_start = Instant::now();
    out.merge_buckets(buckets, threads);
    let merge_us = merge_start.elapsed().as_micros() as u64;
    drop(merge_span);

    let inferred = out.len() - g.len();
    let mut rule_firings: FxHashMap<&'static str, u64> = FxHashMap::default();
    rule_firings.insert("parallel-derived", derived_raw);
    rule_firings.insert("parallel-new", (inferred - schema_new) as u64);
    rule_firings.insert("derive-us", derive_us);
    rule_firings.insert("merge-us", merge_us);
    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred,
        passes: 1,
        rule_firings,
    };
    reg.add("rdfs.parallel.runs", 1);
    reg.add("rdfs.parallel.workers", threads as u64);
    reg.add("rdfs.parallel.shards", shard_count as u64);
    reg.add("rdfs.parallel.derived_raw", derived_raw);
    reg.add(
        "rdfs.parallel.derived_new",
        stats.rule_firings["parallel-new"],
    );
    reg.add("rdfs.saturate.inferred", inferred as u64);
    reg.add(
        "rdfs.saturate.rule_firings",
        derived_raw + schema_new as u64,
    );
    Ok(SaturationResult { graph: out, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturate;
    use rdf_model::{Dictionary, TermId};

    fn fixture() -> (Graph, Vocab) {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut id = |n: String| dict.encode_iri(&format!("http://ex/{n}"));
        let mut g = Graph::new();
        // a 4-level class chain, 2 property chains with domains/ranges
        let classes: Vec<TermId> = (0..6).map(|i| id(format!("C{i}"))).collect();
        for w in classes.windows(2) {
            g.insert(Triple::new(w[0], vocab.sub_class_of, w[1]));
        }
        let props: Vec<TermId> = (0..4).map(|i| id(format!("p{i}"))).collect();
        g.insert(Triple::new(props[0], vocab.sub_property_of, props[1]));
        g.insert(Triple::new(props[1], vocab.domain, classes[1]));
        g.insert(Triple::new(props[2], vocab.range, classes[2]));
        for i in 0..200 {
            let s = id(format!("n{i}"));
            let o = id(format!("n{}", (i * 7) % 200));
            g.insert(Triple::new(s, props[i % 4], o));
            if i % 3 == 0 {
                g.insert(Triple::new(s, vocab.rdf_type, classes[i % 3]));
            }
        }
        (g, vocab)
    }

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let (g, vocab) = fixture();
        let sequential = saturate(&g, &vocab);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(threads).unwrap());
            assert_eq!(par.graph, sequential.graph, "{threads} threads");
            assert_eq!(par.stats.inferred, sequential.stats.inferred);
        }
    }

    #[test]
    fn output_is_sharded_by_thread_count() {
        let (g, vocab) = fixture();
        for (threads, shards) in [(1usize, 1usize), (2, 2), (3, 4), (4, 4), (8, 8)] {
            let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(threads).unwrap());
            assert_eq!(par.graph.shard_count(), shards, "{threads} threads");
        }
    }

    #[test]
    fn empty_graph() {
        let mut d = Dictionary::new();
        let vocab = Vocab::intern(&mut d);
        let par = saturate_parallel(&Graph::new(), &vocab, NonZeroUsize::new(4).unwrap());
        assert!(par.graph.is_empty());
    }

    #[test]
    fn more_threads_than_triples() {
        let mut d = Dictionary::new();
        let vocab = Vocab::intern(&mut d);
        let a = d.encode_iri("http://ex/a");
        let b = d.encode_iri("http://ex/b");
        let mut g = Graph::new();
        g.insert(Triple::new(a, vocab.sub_class_of, b));
        let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(64).unwrap());
        assert_eq!(par.graph, saturate(&g, &vocab).graph);
    }

    #[test]
    fn cancelled_saturation_returns_cancelled_and_nothing_else() {
        let (g, vocab) = fixture();
        // Trips on the very first poll: every worker abandons its chunk.
        let cancel = CancelToken::trip_after_checks(1);
        let err = try_saturate_parallel_cancel(&g, &vocab, NonZeroUsize::new(4).unwrap(), &cancel)
            .unwrap_err();
        assert!(matches!(err, ParallelError::Cancelled), "got {err}");
    }

    #[test]
    fn cancelled_pass_leaves_a_rerun_identical() {
        let (g, vocab) = fixture();
        let threads = NonZeroUsize::new(4).unwrap();
        let cancel = CancelToken::trip_after_checks(1);
        let _ = try_saturate_parallel_cancel(&g, &vocab, threads, &cancel);
        // The abandoned pass left no shared state behind: a fresh run
        // still equals the sequential closure.
        let par = try_saturate_parallel_cancel(&g, &vocab, threads, &CancelToken::none()).unwrap();
        assert_eq!(par.graph, saturate(&g, &vocab).graph);
    }

    #[test]
    fn none_token_never_cancels() {
        let (g, vocab) = fixture();
        let par = try_saturate_parallel_cancel(
            &g,
            &vocab,
            NonZeroUsize::new(2).unwrap(),
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(par.graph, saturate(&g, &vocab).graph);
    }

    #[test]
    fn stats_record_raw_derivations() {
        let (g, vocab) = fixture();
        let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(2).unwrap());
        let raw = par.stats.rule_firings["parallel-derived"];
        let new = par.stats.rule_firings["parallel-new"];
        assert!(raw >= new, "raw {raw} >= deduped {new}");
        // inferred = instance derivations + schema-closure triples
        assert!(par.stats.inferred >= new as usize);
        assert_eq!(par.stats.inferred, par.graph.len() - g.len());
    }
}
