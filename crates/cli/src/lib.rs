//! # webreason-cli — the `webreason` command-line tool
//!
//! A practitioner-facing front end over the store ("its target audience
//! comprises students, researchers and practitioners with an interest in
//! Web data management", §I):
//!
//! ```text
//! webreason query <data.ttl>…   --sparql <text|@file> [--strategy S] [--limit-display N] [--threads N]
//!                               [--journal DIR [--fsync always|never]]
//! webreason saturate <data.ttl>… [--parallel N] [--format nt|ttl]
//! webreason reformulate <data.ttl>… --sparql <text|@file>
//! webreason explain <data.ttl>… --triple "<s> <p> <o>"
//! webreason stats <data.ttl>…
//! webreason metrics [--format json|prometheus] [--journal DIR]
//! webreason serve --journal DIR [--addr A] [--threads N] [--queue N]
//!                 [--fsync always|never] [--group-commit on|off] [--duration-secs S]
//!                 [--backend reactor|threaded] [--max-conns N] [--idle-timeout MS]
//!                 [--default-deadline-ms MS] [--max-deadline-ms MS]
//!                 [--max-subscriptions N]
//! webreason checkpoint <journal-dir>
//! webreason recover <journal-dir>
//! ```
//!
//! Data files are Turtle (`.ttl`) or N-Triples (anything else). The
//! library half exposes each command as a function returning its output
//! as a string, so the test suite drives them without spawning processes;
//! `src/main.rs` is a thin shell around [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{parse_args, CliError, Command, Strategy};
pub use commands::run_command;

/// Parses `args` (without the program name) and runs the command,
/// returning the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let command = parse_args(args)?;
    run_command(&command)
}

/// The usage text.
pub const USAGE: &str = "\
webreason — RDF storage and reasoning (saturation / reformulation / backward chaining)

USAGE:
    webreason <COMMAND> <data-file>... [OPTIONS]

COMMANDS:
    query        answer a SPARQL BGP query over the data
    saturate     print the saturated graph G∞
    reformulate  print the reformulated query q_ref and its statistics
    explain      show why a triple is entailed
    stats        summarise the dataset (triples, schema, classes, properties)
    thresholds   the paper's Fig. 3 analysis: per-query amortisation thresholds
    metrics      run a built-in workload and print the observability snapshot
    serve        run the embedded HTTP query/update server over a journaled store
    checkpoint   snapshot a journaled store (takes the journal dir, not data files)
    recover      rebuild a journaled store read-only and summarise it
    help         show this message

OPTIONS:
    --sparql <text|@file>    the query (query/reformulate); '@f' reads file f
    --strategy <name>        none | saturation | dred | counting | plus |
                             reformulation | interval (alias litemat) |
                             adaptive | backward | datalog
                             [default: counting]
                             serve: strategy for a freshly created journal
    --triple \"<s> <p> <o>\"   the triple to explain (N-Triples terms)
    --parallel <N>           saturate with N worker threads
    --threads <N>            query: saturation passes use N threads [default: 1]
    --format <f>             saturate: nt or ttl [default: nt];
                             metrics: json or prometheus       [default: json]
    --limit-display <N>      print at most N solutions         [default: 20]
    --queries <file>         thresholds: one query per line (`name|query`)
    --entailment <f>         saturate: fragment (default) or full RDFS closure
    --journal <dir>          query: journal updates to <dir>; the store is
                             recovered from it on later runs (data files optional)
                             metrics: keep the workload's journal in <dir>
    --fsync <always|never>   journal durability against OS crashes [default: always]
    --addr <host:port>       serve: bind address; :0 picks a free port
                             [default: 127.0.0.1:7878]
    --queue <N>              serve: writer-queue depth; full => 429  [default: 64]
    --group-commit <on|off>  serve: drain queued updates as one fsync+publish
                             group (off = per-script fsync)     [default: on]
    --duration-secs <S>      serve: shut down gracefully after S seconds
                             (omit to serve until killed)
    --backend <b>            serve: reactor (event loop; default) or threaded
                             (blocking accept + worker pool)
    --max-conns <N>          serve: open-connection cap; excess accepts are
                             refused with 503            [default: 4096]
    --idle-timeout <MS>      serve: reap connections idle for MS milliseconds
                             in any read/write phase     [default: 10000]
    --default-deadline-ms <MS>  serve: deadline for requests without an
                             X-Webreason-Deadline-Ms header; 0 disables
                             [default: 30000]
    --max-deadline-ms <MS>   serve: clamp on per-request deadline headers
                             [default: 60000]
    --max-subscriptions <N>  serve: live POST /subscribe registrations allowed
                             at once; 0 disables them    [default: 64]

Data files ending in .ttl parse as Turtle; anything else as N-Triples.
";
