//! Dictionary encoding: interning [`Term`]s as compact integer ids.
//!
//! Every layer above the model (saturation, reformulation, query
//! evaluation, Datalog) manipulates [`TermId`]s only; the dictionary is the
//! single point where strings are materialised. This mirrors the design of
//! dictionary-encoded RDF systems (RDF-3X, Hexastore, OWLIM) surveyed in
//! Section II-C of the paper.

use crate::term::Term;
use rustc_hash::FxHashMap;
use std::fmt;

/// A compact identifier for an interned [`Term`].
///
/// Ids are dense (`0..dictionary.len()`), `Copy`, and stable for the
/// lifetime of the [`Dictionary`] that produced them. Using `u32` keeps an
/// encoded [`crate::Triple`] at 12 bytes; a dictionary can hold up to
/// 2³² distinct terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The dense index of this id, usable for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TermId` from a dense index.
    ///
    /// Intended for storage layers (e.g. the workload generator's column
    /// tables); ids fabricated out of range simply fail to decode.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TermId(u32::try_from(index).expect("term id space exhausted"))
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional, append-only mapping between [`Term`]s and [`TermId`]s.
///
/// `encode` interns (idempotently); `decode` recovers the term. Terms are
/// never removed: RDF dictionaries in practice are append-only because ids
/// may be referenced from persisted triples or query plans.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with room for `capacity` terms.
    pub fn with_capacity(capacity: usize) -> Self {
        Dictionary {
            terms: Vec::with_capacity(capacity),
            ids: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Interns a term, returning its id. Idempotent: encoding the same term
    /// twice returns the same id.
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term id space exhausted"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Interns an IRI term given as a string.
    pub fn encode_iri(&mut self, iri: &str) -> TermId {
        // Fast path: avoid building a Term when already interned.
        // (Lookup requires a Term key, so we build one either way; kept as a
        // named helper because it is the dominant call shape.)
        self.encode(&Term::iri(iri))
    }

    /// Returns the id of a term if it has been interned.
    pub fn get_id(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Returns the id of an IRI if it has been interned.
    pub fn get_iri_id(&self, iri: &str) -> Option<TermId> {
        self.get_id(&Term::iri(iri))
    }

    /// Recovers the term for an id produced by this dictionary.
    pub fn decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("http://a"));
        let b = d.encode(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = Dictionary::new();
        let i = d.encode(&Term::iri("x"));
        let l = d.encode(&Term::literal("x"));
        let b = d.encode(&Term::blank("x"));
        assert_ne!(i, l);
        assert_ne!(i, b);
        assert_ne!(l, b);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://example.org/a"),
            Term::literal("plain"),
            Term::Literal(Literal::lang("hi", "en")),
            Term::Literal(Literal::typed(
                "4",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
            Term::blank("b0"),
        ];
        let ids: Vec<_> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), Some(t));
        }
    }

    #[test]
    fn decode_unknown_id_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.decode(TermId::from_index(7)), None);
    }

    #[test]
    fn get_id_without_interning() {
        let mut d = Dictionary::new();
        assert_eq!(d.get_iri_id("http://a"), None);
        let id = d.encode_iri("http://a");
        assert_eq!(d.get_iri_id("http://a"), Some(id));
        // get_id does not intern
        assert_eq!(d.get_id(&Term::iri("http://b")), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_iteration_ordered() {
        let mut d = Dictionary::new();
        for i in 0..10 {
            let id = d.encode_iri(&format!("http://t/{i}"));
            assert_eq!(id.index(), i);
        }
        let collected: Vec<_> = d.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_term() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[a-z:/#0-9]{0,20}".prop_map(Term::iri),
                "\\PC{0,20}".prop_map(Term::literal),
                ("\\PC{0,10}", "[a-z]{1,5}").prop_map(|(l, t)| Term::Literal(Literal::lang(l, &t))),
                ("\\PC{0,10}", "[a-z:/#]{1,15}")
                    .prop_map(|(l, t)| Term::Literal(Literal::typed(l, t))),
                "[A-Za-z0-9]{1,8}".prop_map(Term::blank),
            ]
        }

        proptest! {
            #[test]
            fn round_trip_random_terms(terms in proptest::collection::vec(arb_term(), 0..64)) {
                let mut d = Dictionary::new();
                let ids: Vec<_> = terms.iter().map(|t| d.encode(t)).collect();
                for (t, id) in terms.iter().zip(&ids) {
                    prop_assert_eq!(d.decode(*id), Some(t));
                    prop_assert_eq!(d.get_id(t), Some(*id));
                }
                // id count equals the number of distinct terms
                let distinct: std::collections::BTreeSet<_> = terms.iter().collect();
                prop_assert_eq!(d.len(), distinct.len());
            }
        }
    }
}
