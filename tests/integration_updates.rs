//! Update-stream scenarios: the dynamic-graph setting of the paper's §I,
//! where "typical Semantic Web scenarios involve integrating data from
//! several RDF repositories … authored independently" and both instance
//! data and schemas change.

use rdf_model::Triple;
use rdfs::incremental::{MaintenanceAlgorithm, UpdateKind};
use rdfs::saturate;
use webreason_core::{ReasoningConfig, Store};
use workload::lubm::{generate, LubmConfig, UbVocab};
use workload::synth::{generate as synth_generate, SynthConfig};

/// Simulates integrating a second endpoint's schema into a running store:
/// new constraints arrive *after* the instance data (the scenario that
/// makes compute-everything-up-front infeasible per §I).
#[test]
fn late_arriving_schema_from_second_endpoint() {
    for algo in MaintenanceAlgorithm::ALL {
        let mut store = Store::new(ReasoningConfig::Saturation(algo));
        // Endpoint A ships facts with its own vocabulary…
        store
            .load_turtle(
                r#"
                @prefix a: <http://endpointA.example/> .
                a:r1 a:locatedIn a:paris .
                a:r2 a:locatedIn a:lyon .
            "#,
            )
            .unwrap();
        let q = "PREFIX b: <http://endpointB.example/> SELECT ?x WHERE { ?x a b:Place }";
        assert_eq!(store.answer_sparql(q).unwrap().len(), 0);
        // …endpoint B later contributes constraints mapping A's vocabulary.
        store
            .load_turtle(
                r#"
                @prefix a: <http://endpointA.example/> .
                @prefix b: <http://endpointB.example/> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                a:locatedIn rdfs:range b:Place .
            "#,
            )
            .unwrap();
        assert_eq!(store.answer_sparql(q).unwrap().len(), 2, "{}", algo.name());
    }
}

/// A long random-ish update stream over LUBM data: maintained saturation
/// must equal recomputation at checkpoints.
#[test]
fn lubm_update_stream_checkpoints() {
    let ds = generate(&LubmConfig::tiny());
    let mut dict = ds.dict.clone();
    let ub = UbVocab::intern(&mut dict);
    let vocab = ds.vocab;

    // Build an update stream: delete some existing triples, add new ones.
    let existing: Vec<Triple> = ds.graph.iter().take(40).collect();
    let new_triples: Vec<Triple> = (0..20)
        .map(|i| {
            let s = dict.encode_iri(&format!("http://webreason.example/data/new{i}"));
            let dept = dict.encode_iri("http://webreason.example/data/u0/d1");
            Triple::new(
                s,
                if i % 2 == 0 {
                    ub.member_of
                } else {
                    ub.takes_course
                },
                dept,
            )
        })
        .collect();
    // plus a schema change: new class + subclass edge
    let special = dict.encode_iri("http://webreason.example/univ-bench#VisitingProfessor");
    let schema_edge = Triple::new(special, vocab.sub_class_of, ub.professor);

    for algo in [MaintenanceAlgorithm::DRed, MaintenanceAlgorithm::Counting] {
        let mut m = algo.build(ds.graph.clone(), vocab);
        let mut base = ds.graph.clone();
        let mut step = 0usize;
        let checkpoint =
            |m: &dyn rdfs::incremental::Maintainer, base: &rdf_model::Graph, step: usize| {
                let expect = saturate(base, &vocab).graph;
                assert_eq!(
                    m.saturated(),
                    &expect,
                    "{} diverged at step {step}",
                    algo.name()
                );
            };
        for t in &existing {
            base.remove(t);
            m.delete(t);
            step += 1;
            if step.is_multiple_of(10) {
                checkpoint(m.as_ref(), &base, step);
            }
        }
        for &t in &new_triples {
            base.insert(t);
            m.insert(t);
        }
        checkpoint(m.as_ref(), &base, step);
        base.insert(schema_edge);
        m.insert(schema_edge);
        checkpoint(m.as_ref(), &base, step + 1);
        base.remove(&schema_edge);
        m.delete(&schema_edge);
        checkpoint(m.as_ref(), &base, step + 2);
    }
}

/// Update kinds are classified correctly through the store API.
#[test]
fn update_kind_classification() {
    let mut store = Store::new(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
    store
        .load_turtle("@prefix ex: <http://ex/> .\nex:a ex:p ex:b .")
        .unwrap();
    let mut dict = store.dictionary().clone();
    let vocab = *store.vocab();
    let a = dict.get_iri_id("http://ex/a").unwrap();
    let p = dict.get_iri_id("http://ex/p").unwrap();
    let b = dict.get_iri_id("http://ex/b").unwrap();
    let c = dict.encode_iri("http://ex/C");

    assert_eq!(store.insert(Triple::new(a, p, b)).kind, UpdateKind::Noop);
    assert_eq!(store.delete(&Triple::new(b, p, a)).kind, UpdateKind::Noop);
    // encode ex:C into the store's dictionary through insert_terms
    let stats = store.insert_terms(
        &rdf_model::Term::iri("http://ex/p"),
        &rdf_model::Term::iri(rdf_model::vocab::RDFS_DOMAIN),
        &rdf_model::Term::iri("http://ex/C"),
    );
    assert_eq!(stats.kind, UpdateKind::SchemaInsert);
    assert!(stats.added >= 1, "derives a rdf:type C");
    let _ = (vocab, c);
}

/// Counting vs DRed vs recompute on a bigger synthetic store: the three
/// maintainers agree triple-for-triple after a mixed stream.
#[test]
fn synthetic_mixed_stream_three_way_agreement() {
    let w = synth_generate(&SynthConfig {
        individuals: 80,
        edges: 300,
        typings: 120,
        seed: 99,
        ..Default::default()
    });
    let vocab = w.dataset.vocab;
    let graph = w.dataset.graph;

    let mut maintainers: Vec<_> = MaintenanceAlgorithm::ALL
        .iter()
        .map(|a| a.build(graph.clone(), vocab))
        .collect();

    // Stream: remove every 7th triple, re-add every 3rd removed.
    let victims: Vec<Triple> = graph.iter().step_by(7).collect();
    for t in &victims {
        for m in &mut maintainers {
            m.delete(t);
        }
    }
    for t in victims.iter().step_by(3) {
        for m in &mut maintainers {
            m.insert(*t);
        }
    }
    let reference = maintainers[0].saturated().clone();
    for m in &maintainers[1..] {
        assert_eq!(m.saturated(), &reference, "{:?}", m.algorithm());
    }
    assert_eq!(&saturate(maintainers[0].base(), &vocab).graph, &reference);
}
