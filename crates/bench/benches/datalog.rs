//! Criterion bench behind A-DATALOG: the generic Datalog engine on its
//! own (transitive closure) and as the RDF saturation backend.

use bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::engine::{fixpoint, Atom, Database, DlTerm, Program, Rule};
use rdf_model::TermId;
use std::hint::black_box;
use workload::lubm::generate;

fn closure_program() -> Program {
    const EDGE: u32 = 0;
    const PATH: u32 = 1;
    Program::new(vec![
        Rule {
            head: Atom::new(PATH, [DlTerm::Var(0), DlTerm::Var(1)]),
            body: vec![Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)])],
        },
        Rule {
            head: Atom::new(PATH, [DlTerm::Var(0), DlTerm::Var(2)]),
            body: vec![
                Atom::new(EDGE, [DlTerm::Var(0), DlTerm::Var(1)]),
                Atom::new(PATH, [DlTerm::Var(1), DlTerm::Var(2)]),
            ],
        },
    ])
}

fn bench_transitive_closure(c: &mut Criterion) {
    let program = closure_program();
    let mut group = c.benchmark_group("datalog/closure");
    group.sample_size(20);
    for n in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut db = Database::new();
                for i in 0..n {
                    db.insert(0, [TermId::from_index(i), TermId::from_index(i + 1)]);
                }
                black_box(fixpoint(&mut db, &program))
            })
        });
    }
    group.finish();
}

fn bench_rdf_translation(c: &mut Criterion) {
    let ds = generate(&Scale::Tiny.config());
    let mut group = c.benchmark_group("datalog/rdf");
    group.sample_size(10);
    group.bench_function("saturate_via_datalog", |b| {
        b.iter(|| black_box(datalog::saturate_via_datalog(&ds.graph, &ds.vocab)))
    });
    group.finish();
}

criterion_group!(benches, bench_transitive_closure, bench_rdf_translation);
criterion_main!(benches);
