//! Vendored minimal reimplementation of the `rand` crate surface this
//! workspace uses (the container has no network access to crates.io).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension trait with `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic for a given seed,
//! which is all the workload generators rely on (the exact stream differs
//! from upstream `rand`, so generated datasets differ in content but not in
//! shape or statistics).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ under this vendored shim.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Primitive integers samplable from ranges. The blanket
/// `SampleRange` impls below go through this trait so type inference
/// unifies the range element type with `gen_range`'s return type, as
/// upstream rand's `SampleUniform` does (callers rely on this, e.g.
/// `rng.gen_range(0..100) < some_u8`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Order-preserving encoding into `u128` (sign-flipped for signed).
    fn to_bits(self) -> u128;
    /// Inverse of [`SampleUniform::to_bits`].
    fn from_bits(bits: u128) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_bits(self) -> u128 {
                self as u128
            }
            fn from_bits(bits: u128) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_bits(self) -> u128 {
                (self as i128 as u128) ^ (1u128 << 127)
            }
            fn from_bits(bits: u128) -> Self {
                (bits ^ (1u128 << 127)) as i128 as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, i128, isize);

/// One draw uniform in `0..span` (`span > 0`).
fn draw_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    if span <= u64::MAX as u128 {
        (rng.next_u64() % span as u64) as u128
    } else {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        wide % span
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_bits(), self.end.to_bits());
        assert!(lo < hi, "gen_range: empty range");
        T::from_bits(lo + draw_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_bits(), self.end().to_bits());
        assert!(lo <= hi, "gen_range: empty range");
        if lo == 0 && hi == u128::MAX {
            // Full-domain inclusive range: span would overflow u128.
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            return T::from_bits(wide);
        }
        T::from_bits(lo + draw_below(rng, hi - lo + 1))
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (2000..4000).contains(&hits),
            "≈30% of 10k draws, got {hits}"
        );
    }
}
