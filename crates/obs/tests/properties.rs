//! Metrics correctness suite (ISSUE 4, satellite 1).
//!
//! * Histogram merge is associative, commutative and conserves per-bucket
//!   counts (property-tested).
//! * Counters are exact under concurrent increments (`std::thread::scope`).
//! * Span nesting under a `ManualClock`: child time ≤ parent time, and
//!   disjoint siblings sum to exactly the parent's non-gap time.

use obs::{bucket_index, Histogram, ManualClock, Registry, BUCKETS};
use proptest::prelude::*;

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1_000_000, 0..64),
        ys in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (a, b) = (histogram_of(&xs), histogram_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1_000_000, 0..48),
        ys in proptest::collection::vec(0u64..1_000_000, 0..48),
        zs in proptest::collection::vec(0u64..1_000_000, 0..48),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_conserves_bucket_counts(
        xs in proptest::collection::vec(0u64..u64::MAX, 0..64),
        ys in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (a, b) = (histogram_of(&xs), histogram_of(&ys));
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.buckets()[i], a.buckets()[i] + b.buckets()[i]);
        }
        // No observation leaks out of the bucket array either.
        prop_assert_eq!(merged.buckets().iter().sum::<u64>(), merged.count());
    }

    #[test]
    fn recording_preserves_totals(values in proptest::collection::vec(0u64..1_000_000, 0..128)) {
        let h = histogram_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        for &v in &values {
            prop_assert!(h.buckets()[bucket_index(v)] > 0);
        }
    }
}

#[test]
fn counters_are_exact_under_concurrency() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = reg.counter("test.concurrent.incr");
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.incr();
                }
            });
        }
    });
    assert_eq!(
        reg.counter_value("test.concurrent.incr"),
        THREADS * PER_THREAD,
        "no increment may be lost or double-counted"
    );
}

#[test]
fn concurrent_handles_share_one_cell() {
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let reg = &reg;
            scope.spawn(move || {
                // Each thread registers the counter itself — first-use
                // registration must race safely to a single cell.
                reg.counter("test.concurrent.add").add(t + 1);
            });
        }
    });
    assert_eq!(reg.counter_value("test.concurrent.add"), 1 + 2 + 3 + 4);
}

#[test]
fn child_span_time_is_bounded_by_parent_time() {
    let reg = Registry::new();
    let clock = reg.install_manual_clock();
    {
        let _parent = reg.span("test.parent");
        clock.advance(3);
        {
            let _child = reg.span("test.child");
            clock.advance(11);
        }
        clock.advance(2);
    }
    let parent = reg.span_agg("test.parent", None).expect("parent recorded");
    let child = reg
        .span_agg("test.child", Some("test.parent"))
        .expect("child recorded under parent");
    assert_eq!(parent.total_us, 16);
    assert_eq!(child.total_us, 11);
    assert!(
        child.total_us <= parent.total_us,
        "a child span cannot outlast its parent"
    );
}

#[test]
fn disjoint_sibling_spans_sum_into_the_parent() {
    let reg = Registry::new();
    let clock = reg.install_manual_clock();
    {
        let _parent = reg.span("test.parent");
        for step in [7u64, 5, 9] {
            let _sibling = reg.span("test.sibling");
            clock.advance(step);
        }
    }
    let parent = reg.span_agg("test.parent", None).expect("parent recorded");
    let siblings = reg
        .span_agg("test.sibling", Some("test.parent"))
        .expect("siblings recorded under parent");
    assert_eq!(siblings.count, 3);
    assert_eq!(siblings.total_us, 7 + 5 + 9);
    assert_eq!(
        parent.total_us, siblings.total_us,
        "no time passed outside the siblings, so their sum is exactly the parent"
    );
}

#[test]
fn sibling_spans_with_gaps_still_fit_inside_the_parent() {
    let reg = Registry::new();
    let clock = reg.install_manual_clock();
    {
        let _parent = reg.span("test.gappy");
        for step in [4u64, 6] {
            {
                let _sibling = reg.span("test.gappy_child");
                clock.advance(step);
            }
            clock.advance(1); // gap between siblings, inside the parent
        }
    }
    let parent = reg.span_agg("test.gappy", None).unwrap();
    let children = reg
        .span_agg("test.gappy_child", Some("test.gappy"))
        .unwrap();
    assert_eq!(children.total_us, 10);
    assert_eq!(parent.total_us, 12);
    assert!(children.total_us <= parent.total_us);
}

#[test]
fn spans_on_other_threads_start_fresh_hierarchies() {
    let reg = Registry::new();
    let _clock = reg.install_manual_clock();
    {
        let _parent = reg.span("test.main");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = reg.span("test.worker");
            });
        });
    }
    assert!(
        reg.span_agg("test.worker", None).is_some(),
        "worker-thread spans must not inherit another thread's parent"
    );
    assert!(reg.span_agg("test.worker", Some("test.main")).is_none());
}

#[test]
fn manual_clock_is_shared_through_the_arc() {
    let reg = Registry::new();
    let clock: std::sync::Arc<ManualClock> = reg.install_manual_clock();
    assert_eq!(reg.now_us(), 0);
    clock.advance(42);
    assert_eq!(reg.now_us(), 42);
}
