//! A hashed timer wheel for connection idle deadlines.
//!
//! The reactor needs "reap anything whose phase deadline passed" without
//! scanning every connection per tick and without a heap reorder per
//! deadline change. The wheel hashes each deadline into one of `slots`
//! buckets by tick number; advancing the cursor drains only the buckets
//! the clock crossed. Entries are **lazy**: the wheel never deletes —
//! connections re-arm by inserting a new entry and the reactor drops
//! stale pops by re-checking `(generation, current deadline)` against the
//! live connection. An entry that pops early (its deadline is still in
//! the future because the bucket wrapped, or the connection re-armed
//! later) is simply reinserted / re-checked, so correctness never depends
//! on wheel bookkeeping — only liveness does.

/// One armed deadline: an opaque `(token, generation)` owner plus the
/// absolute millisecond it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout {
    pub token: usize,
    pub generation: u64,
    pub deadline_ms: u64,
}

/// Fixed-fanout hashed wheel over millisecond ticks.
pub struct TimerWheel {
    slots: Vec<Vec<Timeout>>,
    tick_ms: u64,
    /// Last tick the cursor fully processed.
    cur_tick: u64,
    len: usize,
}

impl TimerWheel {
    /// `tick_ms` is the reap granularity (deadlines fire up to one tick
    /// late); `slots` the fanout (span = `tick_ms * slots` before an
    /// entry wraps and pops early for a re-check).
    pub fn new(tick_ms: u64, slots: usize, now_ms: u64) -> TimerWheel {
        let tick_ms = tick_ms.max(1);
        TimerWheel {
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            tick_ms,
            cur_tick: now_ms / tick_ms,
            len: 0,
        }
    }

    /// Number of armed (possibly stale) entries.
    #[allow(dead_code)] // exercised by the unit tests
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are armed.
    #[allow(dead_code)] // exercised by the unit tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a deadline. A deadline at or before the cursor lands in the
    /// next tick (it fires on the next `advance`, never a full wrap away).
    pub fn insert(&mut self, token: usize, generation: u64, deadline_ms: u64) {
        let tick = (deadline_ms / self.tick_ms).max(self.cur_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Timeout {
            token,
            generation,
            deadline_ms,
        });
        self.len += 1;
    }

    /// Moves the cursor to `now_ms`, returning every entry whose deadline
    /// has passed. Entries found early (wrapped buckets) are reinserted
    /// for a future pass. The caller must treat returned entries as
    /// *candidates* — re-check them against the live connection state.
    pub fn advance(&mut self, now_ms: u64) -> Vec<Timeout> {
        let target = now_ms / self.tick_ms;
        let mut fired = Vec::new();
        if target <= self.cur_tick || self.len == 0 {
            self.cur_tick = self.cur_tick.max(target);
            return fired;
        }
        // Visiting more buckets than the fanout revisits them; cap there.
        let steps = (target - self.cur_tick).min(self.slots.len() as u64);
        let mut requeue = Vec::new();
        for i in 1..=steps {
            let tick = self.cur_tick + i;
            let slot = (tick % self.slots.len() as u64) as usize;
            for t in self.slots[slot].drain(..) {
                self.len -= 1;
                if t.deadline_ms <= now_ms {
                    fired.push(t);
                } else {
                    requeue.push(t); // wrapped: not due yet
                }
            }
        }
        self.cur_tick = target;
        for t in requeue {
            self.insert(t.token, t.generation, t.deadline_ms);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_not_before() {
        let mut w = TimerWheel::new(10, 16, 0);
        w.insert(1, 7, 95);
        assert!(w.advance(90).is_empty());
        let fired = w.advance(100);
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].token, fired[0].generation), (1, 7));
        assert!(w.is_empty());
    }

    #[test]
    fn wrapped_entries_pop_late_not_lost() {
        // Span is 10ms * 4 slots = 40ms; a 100ms deadline wraps twice.
        let mut w = TimerWheel::new(10, 4, 0);
        w.insert(3, 1, 100);
        let mut t = 0;
        let mut fired = Vec::new();
        while fired.is_empty() && t < 300 {
            t += 10;
            fired = w.advance(t);
        }
        assert_eq!(fired.len(), 1);
        assert!(t >= 100, "fired at {t}, before the 100ms deadline");
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let mut w = TimerWheel::new(10, 8, 1000);
        w.insert(5, 2, 500); // already past
        let fired = w.advance(1011);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn big_jumps_visit_every_slot_once() {
        let mut w = TimerWheel::new(10, 8, 0);
        for token in 0..32 {
            w.insert(token, 0, 10 + token as u64);
        }
        let fired = w.advance(10_000);
        assert_eq!(fired.len(), 32);
        assert!(w.is_empty());
    }

    #[test]
    fn duplicate_arms_both_pop() {
        // Re-arming inserts a second entry; the reactor drops the stale
        // one by re-checking the live deadline. The wheel just delivers.
        let mut w = TimerWheel::new(10, 16, 0);
        w.insert(1, 1, 30);
        w.insert(1, 1, 60);
        assert_eq!(w.len(), 2);
        assert_eq!(w.advance(40).len(), 1);
        assert_eq!(w.advance(70).len(), 1);
    }
}
