//! The RDF / RDFS built-in vocabulary (Fig. 1 of the paper) and common
//! XSD datatypes, as IRI constants plus a pre-interned id bundle.

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;

/// `rdf:type` — "specifies the class(es) to which a resource belongs".
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdf:Property` — the class of RDF properties.
pub const RDF_PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
/// `rdfs:subClassOf` — subclass constraint (`s ⊆ o` on unary relations).
pub const RDFS_SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf` — subproperty constraint (`s ⊆ o` on binary relations).
pub const RDFS_SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain` — domain typing constraint (`Π_domain(s) ⊆ o`).
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range` — range typing constraint (`Π_range(s) ⊆ o`).
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `rdfs:Class` — the class of classes.
pub const RDFS_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
/// `rdfs:Resource` — the class of everything.
pub const RDFS_RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";
/// `rdfs:Literal` — the class of literal values.
pub const RDFS_LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:decimal`.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

/// The `rdf:` namespace prefix.
pub const NS_RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// The `rdfs:` namespace prefix.
pub const NS_RDFS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// The `xsd:` namespace prefix.
pub const NS_XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// Pre-interned ids for the vocabulary terms every reasoning algorithm
/// dispatches on.
///
/// Interning these once up front keeps the hot loops free of string
/// comparisons: a triple is a *schema triple* iff its property id equals one
/// of the four constraint ids, an *assertion* otherwise (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vocab {
    /// `rdf:type`.
    pub rdf_type: TermId,
    /// `rdfs:subClassOf`.
    pub sub_class_of: TermId,
    /// `rdfs:subPropertyOf`.
    pub sub_property_of: TermId,
    /// `rdfs:domain`.
    pub domain: TermId,
    /// `rdfs:range`.
    pub range: TermId,
    /// `rdfs:Class`.
    pub rdfs_class: TermId,
    /// `rdf:Property`.
    pub rdf_property: TermId,
    /// `rdfs:Resource`.
    pub rdfs_resource: TermId,
    /// `rdfs:Literal`.
    pub rdfs_literal: TermId,
}

impl Vocab {
    /// Interns the vocabulary in `dict` and returns the id bundle.
    ///
    /// Call once per dictionary; repeated calls return identical ids.
    pub fn intern(dict: &mut Dictionary) -> Self {
        let mut enc = |iri: &str| dict.encode(&Term::iri(iri));
        Vocab {
            rdf_type: enc(RDF_TYPE),
            sub_class_of: enc(RDFS_SUB_CLASS_OF),
            sub_property_of: enc(RDFS_SUB_PROPERTY_OF),
            domain: enc(RDFS_DOMAIN),
            range: enc(RDFS_RANGE),
            rdfs_class: enc(RDFS_CLASS),
            rdf_property: enc(RDF_PROPERTY),
            rdfs_resource: enc(RDFS_RESOURCE),
            rdfs_literal: enc(RDFS_LITERAL),
        }
    }

    /// True if `p` is one of the four RDFS constraint properties of Fig. 1
    /// (subclass, subproperty, domain or range typing).
    #[inline]
    pub fn is_schema_property(&self, p: TermId) -> bool {
        p == self.sub_class_of || p == self.sub_property_of || p == self.domain || p == self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let v1 = Vocab::intern(&mut d);
        let n = d.len();
        let v2 = Vocab::intern(&mut d);
        assert_eq!(v1, v2);
        assert_eq!(d.len(), n);
    }

    #[test]
    fn schema_property_detection() {
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        assert!(v.is_schema_property(v.sub_class_of));
        assert!(v.is_schema_property(v.sub_property_of));
        assert!(v.is_schema_property(v.domain));
        assert!(v.is_schema_property(v.range));
        assert!(!v.is_schema_property(v.rdf_type));
        let other = d.encode_iri("http://example.org/p");
        assert!(!v.is_schema_property(other));
    }

    #[test]
    fn vocab_ids_decode_to_expected_iris() {
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        assert_eq!(d.decode(v.rdf_type).unwrap().as_iri(), Some(RDF_TYPE));
        assert_eq!(d.decode(v.domain).unwrap().as_iri(), Some(RDFS_DOMAIN));
        assert_eq!(d.decode(v.range).unwrap().as_iri(), Some(RDFS_RANGE));
        assert_eq!(
            d.decode(v.sub_class_of).unwrap().as_iri(),
            Some(RDFS_SUB_CLASS_OF)
        );
        assert_eq!(
            d.decode(v.sub_property_of).unwrap().as_iri(),
            Some(RDFS_SUB_PROPERTY_OF)
        );
    }
}
