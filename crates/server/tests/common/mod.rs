//! Shared test plumbing: a scripted, deterministic [`IoSource`] so the
//! per-connection state machine can be driven with exact byte/event
//! sequences — no sockets, no threads, no timing.

#![allow(dead_code)] // each test binary uses a subset

use std::collections::VecDeque;
use std::io::{self, ErrorKind};

use webreason_server::conn::IoSource;

/// One scripted readability outcome.
pub enum ReadStep {
    /// The "socket" delivers exactly these bytes (never empty).
    Data(Vec<u8>),
    /// The "socket" has nothing right now (`WouldBlock`).
    Block,
    /// Peer half-closed its write side; reads return 0 from here on.
    Eof,
}

/// A deterministic I/O source: reads replay a script, writes accept a
/// capped number of bytes per call and record everything accepted.
pub struct ScriptedIo {
    reads: VecDeque<ReadStep>,
    /// Per-call write caps, consumed front-to-back.
    write_caps: VecDeque<usize>,
    /// Cap applied once `write_caps` is exhausted: `None` = unlimited,
    /// `Some(0)` = `WouldBlock`.
    pub default_write: Option<usize>,
    /// Everything the connection managed to write, in order.
    pub written: Vec<u8>,
    eof: bool,
}

impl ScriptedIo {
    pub fn new() -> ScriptedIo {
        ScriptedIo {
            reads: VecDeque::new(),
            write_caps: VecDeque::new(),
            default_write: None,
            written: Vec::new(),
            eof: false,
        }
    }

    /// Queues readable bytes (ignored if empty — a zero-byte read would
    /// masquerade as EOF).
    pub fn push_data(&mut self, bytes: &[u8]) {
        if !bytes.is_empty() {
            self.reads.push_back(ReadStep::Data(bytes.to_vec()));
        }
    }

    /// Queues one `WouldBlock`.
    pub fn push_block(&mut self) {
        self.reads.push_back(ReadStep::Block);
    }

    /// Queues the peer's half-close (sticky: all later reads return 0).
    pub fn push_eof(&mut self) {
        self.reads.push_back(ReadStep::Eof);
    }

    /// Caps the next write call at `n` bytes (0 = `WouldBlock`).
    pub fn cap_next_write(&mut self, n: usize) {
        self.write_caps.push_back(n);
    }
}

impl IoSource for ScriptedIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.pop_front() {
            Some(ReadStep::Data(mut d)) => {
                if d.len() > buf.len() {
                    let rest = d.split_off(buf.len());
                    self.reads.push_front(ReadStep::Data(rest));
                }
                buf[..d.len()].copy_from_slice(&d);
                Ok(d.len())
            }
            Some(ReadStep::Block) => Err(ErrorKind::WouldBlock.into()),
            Some(ReadStep::Eof) => {
                self.eof = true;
                Ok(0)
            }
            None => {
                if self.eof {
                    Ok(0)
                } else {
                    Err(ErrorKind::WouldBlock.into())
                }
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = match self.write_caps.pop_front() {
            Some(c) => c,
            None => self.default_write.unwrap_or(buf.len()),
        };
        if cap == 0 {
            return Err(ErrorKind::WouldBlock.into());
        }
        let n = cap.min(buf.len());
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}
