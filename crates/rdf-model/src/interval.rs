//! LiteMat-style hierarchy-interval encoding.
//!
//! Reformulation expands "`C` or any subclass" into one union branch per
//! subclass. LiteMat (Curé et al.) instead renumbers the hierarchy so that
//! every subtree occupies a *contiguous interval* of ids: the same
//! semantic test becomes a single range containment check, and a probe
//! over the whole subtree becomes one range scan.
//!
//! [`IntervalDict`] implements that renumbering as a **sidecar** to the
//! ordinary [`crate::Dictionary`]: term ids stay append-only (snapshot
//! invariant), and the interval pass assigns each hierarchy term a
//! separate dense *interval id* (`iid`). The encoding is rebuilt from
//! scratch on schema change — rebuilding is the "schema update" cost of
//! the interval strategy, the analogue of re-saturation.
//!
//! The labelling tolerates the full RDFS schema shape:
//!
//! * **Cycles** (`C1 ⊑ C2 ⊑ C1`) are condensed into one strongly
//!   connected component whose members get consecutive iids and share one
//!   coverage set (the classes are equivalent).
//! * **Multi-parent DAG nodes** get a deterministic *primary* parent; the
//!   pre-order numbering follows the primary forest, so pure-tree
//!   subtrees stay contiguous, and a node reached through a secondary
//!   edge contributes extra runs to its ancestors' [`IntervalSet`]s (the
//!   "small interval sets" fallback — counted by
//!   [`IntervalDict::fallback_terms`]).

use crate::TermId;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;

/// A set of interval ids stored as sorted, disjoint, maximal half-open
/// runs `[lo, hi)`. Pure-tree subtrees compress to a single run; DAG
/// fallback nodes carry a few.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntervalSet {
    runs: SmallVec<[(u32, u32); 2]>,
}

impl IntervalSet {
    /// Builds a set from an arbitrary list of ids (sorted, deduplicated
    /// and compressed into maximal runs).
    pub fn from_ids(mut ids: Vec<u32>) -> IntervalSet {
        ids.sort_unstable();
        ids.dedup();
        let mut runs: SmallVec<[(u32, u32); 2]> = SmallVec::new();
        for id in ids {
            match runs.last_mut() {
                Some((_, hi)) if *hi == id => *hi = id + 1,
                _ => runs.push((id, id + 1)),
            }
        }
        IntervalSet { runs }
    }

    /// Merges several sets into one (sorted disjoint maximal runs).
    pub fn union_of<'a>(sets: impl IntoIterator<Item = &'a IntervalSet>) -> IntervalSet {
        let mut runs: Vec<(u32, u32)> = sets
            .into_iter()
            .flat_map(|s| s.runs.iter().copied())
            .collect();
        runs.sort_unstable();
        let mut merged: SmallVec<[(u32, u32); 2]> = SmallVec::new();
        for (lo, hi) in runs {
            match merged.last_mut() {
                Some((_, mhi)) if *mhi >= lo => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        IntervalSet { runs: merged }
    }

    /// Whether `iid` falls inside one of the runs.
    pub fn contains(&self, iid: u32) -> bool {
        self.runs
            .binary_search_by(|&(lo, hi)| {
                if iid < lo {
                    std::cmp::Ordering::Greater
                } else if iid >= hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Total number of member ids.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The compressed runs.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Iterates every member id in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..hi)
    }
}

/// The hierarchy-interval sidecar dictionary: a dense renumbering of the
/// schema's class and property terms such that subtree membership is an
/// interval containment test.
///
/// Built by [`IntervalDict::build`] from the *direct* child → parent
/// edges of the hierarchy (both `subClassOf` and `subPropertyOf` — the
/// two component sets are disjoint, so one numbering serves both).
#[derive(Debug, Clone, Default)]
pub struct IntervalDict {
    /// Term → interval id.
    iid_of: FxHashMap<TermId, u32>,
    /// Interval id → term (dense reverse array: the "range scan" walks
    /// this slice).
    term_of: Vec<TermId>,
    /// Term → covered interval set ({term} ∪ all descendants). Members
    /// of a cycle (equivalence SCC) share identical coverage.
    coverage: FxHashMap<TermId, IntervalSet>,
    /// Number of terms whose coverage needed more than one run (DAG
    /// fallback).
    fallback_terms: usize,
}

impl IntervalDict {
    /// Builds the encoding from direct `(child, parent)` hierarchy edges
    /// plus any standalone hierarchy terms without edges. Duplicate edges
    /// and self-loops are tolerated; unknown terms in queries simply have
    /// no coverage.
    pub fn build(edges: &[(TermId, TermId)], extra: &[TermId]) -> IntervalDict {
        // Collect and index the node set deterministically.
        let mut terms: Vec<TermId> = edges
            .iter()
            .flat_map(|&(c, p)| [c, p])
            .chain(extra.iter().copied())
            .collect();
        terms.sort_unstable();
        terms.dedup();
        let n = terms.len();
        if n == 0 {
            return IntervalDict::default();
        }
        let idx_of: FxHashMap<TermId, usize> =
            terms.iter().enumerate().map(|(i, &t)| (t, i)).collect();

        // Adjacency: child → parents (the direction of ⊑).
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(c, p) in edges {
            if c == p {
                continue;
            }
            let (ci, pi) = (idx_of[&c], idx_of[&p]);
            if !parents[ci].contains(&pi) {
                parents[ci].push(pi);
            }
        }
        for ps in &mut parents {
            ps.sort_unstable();
        }

        // Kosaraju SCC condensation: cycles are equivalence classes.
        let scc_of = sccs(&parents);
        let n_scc = scc_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut scc_members: Vec<Vec<usize>> = vec![Vec::new(); n_scc];
        for (i, &s) in scc_of.iter().enumerate() {
            scc_members[s].push(i);
        }
        for m in &mut scc_members {
            m.sort_unstable(); // terms[] is sorted, so this sorts by TermId
        }

        // Condensed edges (deduplicated), both directions.
        let mut scc_parents: Vec<Vec<usize>> = vec![Vec::new(); n_scc];
        let mut scc_children: Vec<Vec<usize>> = vec![Vec::new(); n_scc];
        for (c, ps) in parents.iter().enumerate() {
            for &p in ps {
                let (cs, psc) = (scc_of[c], scc_of[p]);
                if cs != psc && !scc_parents[cs].contains(&psc) {
                    scc_parents[cs].push(psc);
                    scc_children[psc].push(cs);
                }
            }
        }
        // Representative (smallest member index) orders SCCs deterministically.
        let rep = |s: usize| scc_members[s][0];
        for cs in &mut scc_children {
            cs.sort_unstable_by_key(|&s| rep(s));
        }

        // Primary parent = parent SCC with the smallest representative;
        // the primary edges form a forest the pre-order numbering follows.
        let primary: Vec<Option<usize>> = scc_parents
            .iter()
            .map(|ps| ps.iter().copied().min_by_key(|&s| rep(s)))
            .collect();
        let mut primary_children: Vec<Vec<usize>> = vec![Vec::new(); n_scc];
        for (s, &p) in primary.iter().enumerate() {
            if let Some(p) = p {
                primary_children[p].push(s);
            }
        }
        for cs in &mut primary_children {
            cs.sort_unstable_by_key(|&s| rep(s));
        }
        let mut roots: Vec<usize> = (0..n_scc).filter(|&s| primary[s].is_none()).collect();
        roots.sort_unstable_by_key(|&s| rep(s));

        // Pre-order DFS over the primary forest assigns consecutive iids
        // to each SCC's members, so every primary subtree is contiguous.
        let mut first_iid: Vec<u32> = vec![0; n_scc];
        let mut term_of: Vec<TermId> = Vec::with_capacity(n);
        let mut iid_of: FxHashMap<TermId, u32> = FxHashMap::default();
        let mut stack: Vec<usize> = roots.iter().rev().copied().collect();
        while let Some(s) = stack.pop() {
            first_iid[s] = term_of.len() as u32;
            for &m in &scc_members[s] {
                iid_of.insert(terms[m], term_of.len() as u32);
                term_of.push(terms[m]);
            }
            stack.extend(primary_children[s].iter().rev());
        }

        // Coverage: every SCC reachable through child edges (the full
        // DAG, not just the primary forest) contributes its iid run.
        let mut coverage: FxHashMap<TermId, IntervalSet> = FxHashMap::default();
        let mut fallback_terms = 0usize;
        let mut seen: Vec<u32> = vec![u32::MAX; n_scc];
        for s in 0..n_scc {
            let mut ids: Vec<u32> = Vec::new();
            let mut dfs: Vec<usize> = vec![s];
            while let Some(d) = dfs.pop() {
                if seen[d] == s as u32 {
                    continue;
                }
                seen[d] = s as u32;
                let lo = first_iid[d];
                ids.extend(lo..lo + scc_members[d].len() as u32);
                dfs.extend(scc_children[d].iter().copied());
            }
            let set = IntervalSet::from_ids(ids);
            if set.runs.len() > 1 {
                fallback_terms += scc_members[s].len();
            }
            for &m in &scc_members[s] {
                coverage.insert(terms[m], set.clone());
            }
        }

        IntervalDict {
            iid_of,
            term_of,
            coverage,
            fallback_terms,
        }
    }

    /// The interval id of a hierarchy term, if it was part of the schema.
    pub fn interval_id(&self, t: TermId) -> Option<u32> {
        self.iid_of.get(&t).copied()
    }

    /// The term at a given interval id (reverse lookup; dense).
    pub fn term_at(&self, iid: u32) -> Option<TermId> {
        self.term_of.get(iid as usize).copied()
    }

    /// The interval set covering `t` and all of its descendants, or
    /// `None` when `t` is not a hierarchy term.
    pub fn coverage(&self, t: TermId) -> Option<&IntervalSet> {
        self.coverage.get(&t)
    }

    /// Whether `t` is a member of `set` (O(1) map lookup + O(log runs)
    /// containment — the filter-scan probe).
    pub fn contains(&self, set: &IntervalSet, t: TermId) -> bool {
        self.iid_of.get(&t).is_some_and(|&iid| set.contains(iid))
    }

    /// Iterates the terms of `set` via the dense reverse array (the
    /// member-enumeration probe: one contiguous walk per run).
    pub fn members<'a>(&'a self, set: &'a IntervalSet) -> impl Iterator<Item = TermId> + 'a {
        set.iter().filter_map(|iid| self.term_at(iid))
    }

    /// Number of encoded hierarchy terms.
    pub fn len(&self) -> usize {
        self.term_of.len()
    }

    /// Whether the dictionary encodes no terms.
    pub fn is_empty(&self) -> bool {
        self.term_of.is_empty()
    }

    /// How many terms needed a multi-run coverage set (multi-parent DAG
    /// fallback). Zero for pure trees.
    pub fn fallback_terms(&self) -> usize {
        self.fallback_terms
    }
}

/// Kosaraju's algorithm (iterative): returns the SCC id of every node.
/// Ids are assigned in reverse-finish order, but callers only rely on the
/// partition itself.
fn sccs(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            radj[v].push(u);
        }
    }
    // Pass 1: post-order finish times on the forward graph.
    let mut finish: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        visited[start] = true;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                if !visited[v] {
                    visited[v] = true;
                    stack.push((v, 0));
                }
            } else {
                finish.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: DFS on the reverse graph in reverse finish order.
    let mut scc = vec![usize::MAX; n];
    let mut count = 0usize;
    for &start in finish.iter().rev() {
        if scc[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        scc[start] = count;
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if scc[v] == usize::MAX {
                    scc[v] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    scc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rustc_hash::FxHashSet;

    fn t(i: usize) -> TermId {
        TermId::from_index(i)
    }

    /// child → parent edges of a small tree:
    ///        0
    ///      /   \
    ///     1     2
    ///    / \     \
    ///   3   4     5
    fn tree_edges() -> Vec<(TermId, TermId)> {
        vec![
            (t(1), t(0)),
            (t(2), t(0)),
            (t(3), t(1)),
            (t(4), t(1)),
            (t(5), t(2)),
        ]
    }

    #[test]
    fn tree_subtrees_are_single_contiguous_runs() {
        let d = IntervalDict::build(&tree_edges(), &[]);
        assert_eq!(d.len(), 6);
        assert_eq!(d.fallback_terms(), 0);
        for i in 0..6 {
            let cov = d.coverage(t(i)).unwrap();
            assert_eq!(cov.runs().len(), 1, "tree node {i} must be one run");
        }
        assert_eq!(d.coverage(t(0)).unwrap().len(), 6);
        assert_eq!(d.coverage(t(1)).unwrap().len(), 3);
        assert_eq!(d.coverage(t(2)).unwrap().len(), 2);
        assert_eq!(d.coverage(t(3)).unwrap().len(), 1);
    }

    #[test]
    fn descendant_coverage_nests_and_siblings_are_disjoint() {
        let d = IntervalDict::build(&tree_edges(), &[]);
        let root = d.coverage(t(0)).unwrap();
        for i in 1..6 {
            for iid in d.coverage(t(i)).unwrap().iter() {
                assert!(root.contains(iid), "descendant {i} ⊆ root interval");
            }
        }
        let (a, b) = (d.coverage(t(1)).unwrap(), d.coverage(t(2)).unwrap());
        assert!(a.iter().all(|iid| !b.contains(iid)), "siblings disjoint");
    }

    #[test]
    fn multi_parent_fallback_keeps_every_descendant() {
        // 3 has parents 1 and 2; 1 and 2 are under 0; 4 pads 1's subtree
        // so 2's coverage cannot stay contiguous.
        let edges = vec![
            (t(1), t(0)),
            (t(2), t(0)),
            (t(3), t(1)),
            (t(3), t(2)),
            (t(4), t(1)),
        ];
        let d = IntervalDict::build(&edges, &[]);
        assert!(d.contains(d.coverage(t(1)).unwrap(), t(3)));
        assert!(d.contains(d.coverage(t(2)).unwrap(), t(3)));
        assert!(d.contains(d.coverage(t(0)).unwrap(), t(3)));
        // The secondary parent reaches 3 through a non-adjacent run.
        assert!(d.fallback_terms() >= 1);
        assert!(d.coverage(t(2)).unwrap().runs().len() > 1);
    }

    #[test]
    fn cycles_condense_into_shared_coverage() {
        // 1 ⊑ 2 ⊑ 1 (equivalent), both under 0, with 3 below the cycle.
        let edges = vec![(t(1), t(2)), (t(2), t(1)), (t(1), t(0)), (t(3), t(2))];
        let d = IntervalDict::build(&edges, &[]);
        assert_eq!(d.coverage(t(1)), d.coverage(t(2)));
        assert!(d.contains(d.coverage(t(1)).unwrap(), t(3)));
        assert!(d.contains(d.coverage(t(0)).unwrap(), t(3)));
        // The cycle members occupy consecutive iids.
        let (a, b) = (d.interval_id(t(1)).unwrap(), d.interval_id(t(2)).unwrap());
        assert_eq!(a.abs_diff(b), 1);
    }

    #[test]
    fn standalone_terms_cover_only_themselves() {
        let d = IntervalDict::build(&[], &[t(7), t(9)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.coverage(t(7)).unwrap().len(), 1);
        assert!(d.contains(d.coverage(t(9)).unwrap(), t(9)));
        assert!(!d.contains(d.coverage(t(9)).unwrap(), t(7)));
        assert!(d.coverage(t(8)).is_none());
    }

    #[test]
    fn empty_build_is_empty() {
        let d = IntervalDict::build(&[], &[]);
        assert!(d.is_empty());
        assert_eq!(d.fallback_terms(), 0);
    }

    #[test]
    fn interval_set_ops() {
        let s = IntervalSet::from_ids(vec![5, 1, 2, 3, 1, 9]);
        assert_eq!(s.runs(), &[(1, 4), (5, 6), (9, 10)]);
        assert_eq!(s.len(), 5);
        assert!(s.contains(3) && s.contains(5) && s.contains(9));
        assert!(!s.contains(0) && !s.contains(4) && !s.contains(10));
        let u = IntervalSet::union_of([&s, &IntervalSet::from_ids(vec![4, 10])]);
        assert_eq!(u.runs(), &[(1, 6), (9, 11)]);
        assert!(IntervalSet::default().is_empty());
    }

    /// Reachability by brute force over the raw edges, for comparison.
    fn reach(edges: &[(TermId, TermId)], from: TermId) -> FxHashSet<TermId> {
        let mut out: FxHashSet<TermId> = FxHashSet::default();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if out.insert(u) {
                for &(c, p) in edges {
                    if p == u {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
        proptest::collection::vec((0usize..12, 0usize..12), 0..24)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// On any digraph (cycles, multi-parent, self-loops), coverage
        /// membership equals reachability over the edge relation.
        #[test]
        fn coverage_equals_reachability(raw in arb_edges(), extra in proptest::collection::vec(0usize..12, 0..4)) {
            let edges: Vec<(TermId, TermId)> =
                raw.iter().map(|&(c, p)| (t(c), t(p))).collect();
            let extra: Vec<TermId> = extra.iter().map(|&i| t(i)).collect();
            let d = IntervalDict::build(&edges, &extra);
            let nodes: FxHashSet<TermId> =
                edges.iter().flat_map(|&(c, p)| [c, p]).chain(extra.iter().copied()).collect();
            prop_assert_eq!(d.len(), nodes.len());
            for &nd in &nodes {
                let cov = d.coverage(nd).unwrap();
                let expect = reach(&edges, nd);
                let got: FxHashSet<TermId> = d.members(cov).collect();
                prop_assert_eq!(&got, &expect, "coverage({:?}) mismatch", nd);
                // Containment agrees with enumeration.
                for &o in &nodes {
                    prop_assert_eq!(d.contains(cov, o), expect.contains(&o));
                }
            }
        }

        /// iids are a dense permutation and reverse lookups round-trip.
        #[test]
        fn iids_are_dense_and_round_trip(raw in arb_edges()) {
            let edges: Vec<(TermId, TermId)> =
                raw.iter().map(|&(c, p)| (t(c), t(p))).collect();
            let d = IntervalDict::build(&edges, &[]);
            let mut seen = vec![false; d.len()];
            for iid in 0..d.len() as u32 {
                let term = d.term_at(iid).unwrap();
                prop_assert_eq!(d.interval_id(term), Some(iid));
                prop_assert!(!std::mem::replace(&mut seen[iid as usize], true));
            }
        }

        /// Re-encoding after a random schema delta (edge additions and
        /// removals) still matches reachability — nothing is lost.
        #[test]
        fn reencode_after_delta_preserves_membership(
            raw in arb_edges(),
            add in arb_edges(),
            drop_mask in proptest::collection::vec(proptest::bool::ANY, 0..25),
        ) {
            let mut edges: Vec<(TermId, TermId)> =
                raw.iter().map(|&(c, p)| (t(c), t(p))).collect();
            edges.retain({
                let mut i = 0;
                let mask = drop_mask;
                move |_| {
                    let keep = !mask.get(i).copied().unwrap_or(false);
                    i += 1;
                    keep
                }
            });
            edges.extend(add.iter().map(|&(c, p)| (t(c), t(p))));
            let d = IntervalDict::build(&edges, &[]);
            let nodes: FxHashSet<TermId> =
                edges.iter().flat_map(|&(c, p)| [c, p]).collect();
            for &nd in &nodes {
                let got: FxHashSet<TermId> = d.members(d.coverage(nd).unwrap()).collect();
                prop_assert_eq!(got, reach(&edges, nd));
            }
        }
    }
}
