//! RDFS-Plus in action — the "some of OWL's predicates" support the paper
//! attributes to AllegroGraph RDFS++ and Virtuoso (§II-C): `owl:inverseOf`,
//! `owl:SymmetricProperty` and `owl:TransitiveProperty`, materialised and
//! maintained under updates.
//!
//! ```sh
//! cargo run --example owl_plus
//! ```

use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};

const DATA: &str = r#"
    @prefix geo:  <http://geo.example/> .
    @prefix owl:  <http://www.w3.org/2002/07/owl#> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

    # RDFS-Plus ontology
    geo:locatedIn  a owl:TransitiveProperty .
    geo:contains   owl:inverseOf geo:locatedIn .
    geo:borders    a owl:SymmetricProperty .
    geo:locatedIn  rdfs:domain geo:Place .

    # facts
    geo:montmartre geo:locatedIn geo:paris .
    geo:paris      geo:locatedIn geo:france .
    geo:france     geo:locatedIn geo:europe .
    geo:france     geo:borders   geo:spain .
"#;

fn main() {
    let mut store = Store::new(ReasoningConfig::SaturationPlus);
    store.load_turtle(DATA).unwrap();

    let q = "PREFIX geo: <http://geo.example/> SELECT ?x WHERE { geo:montmartre geo:locatedIn ?x }";
    println!("Montmartre is located in (transitivity):");
    for line in store
        .answer_sparql(q)
        .unwrap()
        .to_strings(&store.dictionary())
    {
        println!("    {line}");
    }

    let q = "PREFIX geo: <http://geo.example/> SELECT ?x WHERE { geo:europe geo:contains ?x }";
    println!("\nEurope contains (inverse of the transitive closure):");
    for line in store
        .answer_sparql(q)
        .unwrap()
        .to_strings(&store.dictionary())
    {
        println!("    {line}");
    }

    let q = "PREFIX geo: <http://geo.example/> SELECT ?x WHERE { geo:spain geo:borders ?x }";
    println!("\nSpain borders (symmetry):");
    for line in store
        .answer_sparql(q)
        .unwrap()
        .to_strings(&store.dictionary())
    {
        println!("    {line}");
    }

    let q = "PREFIX geo: <http://geo.example/> SELECT DISTINCT ?x WHERE { ?x a geo:Place }";
    println!("\nPlaces (OWL edges composing with the RDFS domain rule):");
    for line in store
        .answer_sparql(q)
        .unwrap()
        .to_strings(&store.dictionary())
    {
        println!("    {line}");
    }

    // The same data under plain RDFS misses the OWL-derived answers.
    store.set_config(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
    let q = "PREFIX geo: <http://geo.example/> SELECT ?x WHERE { geo:montmartre geo:locatedIn ?x }";
    println!(
        "\nUnder plain RDFS the first query returns {} answer(s) — \"sometimes\n\
         incomplete\" is exactly how the paper characterises systems that\n\
         support only part of the OWL vocabulary.",
        store.answer_sparql(q).unwrap().len()
    );
}
