//! Vendored minimal reimplementation of the `rustc-hash` crate (the
//! container has no network access to crates.io). Provides the same
//! `FxHashMap` / `FxHashSet` aliases over a fast non-cryptographic
//! multiply-rotate hasher, API-compatible with the subset this workspace
//! uses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher in the style of rustc's FxHasher.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(7), h(7));
        assert_ne!(h(7), h(8));
    }

    #[test]
    fn byte_stream_hashing_covers_remainders() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"123456789"), h(b"12345678"));
    }
}
