//! University benchmark walk-through: generate a LUBM-style dataset, run
//! the ten-query workload under saturation and reformulation, and print a
//! side-by-side cost table — the experiment class behind the paper's
//! Fig. 3.
//!
//! ```sh
//! cargo run --release --example university
//! ```

use std::time::Instant;
use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store};
use workload::lubm::{generate, queries, LubmConfig};

fn main() {
    let cfg = LubmConfig {
        departments: 4,
        students_per_department: 60,
        ..LubmConfig::default()
    };
    println!(
        "generating LUBM-style data ({} university, {} departments)…",
        cfg.universities, cfg.departments
    );
    let mut ds = generate(&cfg);
    let named = queries(&mut ds);
    println!(
        "base graph: {} triples, {} dictionary terms\n",
        ds.graph.len(),
        ds.dict.len()
    );

    let start = Instant::now();
    let sat_store = Store::from_parts(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
    );
    let sat_setup = start.elapsed();
    let stats = sat_store.stats();
    println!(
        "saturation: {} -> {} triples in {:.1} ms (blow-up ×{:.2})\n",
        stats.base_triples,
        stats.saturated_triples.unwrap(),
        sat_setup.as_secs_f64() * 1e3,
        stats.saturated_triples.unwrap() as f64 / stats.base_triples as f64
    );

    let ref_store = Store::from_parts(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::Reformulation,
    );

    println!(
        "{:<4} {:>8} {:>14} {:>14}   description",
        "query", "answers", "q(G∞) ms", "q_ref(G) ms"
    );
    for nq in &named {
        let mut q = nq.query.clone();
        q.distinct = true;

        let t0 = Instant::now();
        let sat_answers = sat_store.answer(&q).unwrap();
        let sat_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let ref_answers = ref_store.answer(&q).unwrap();
        let ref_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            sat_answers.as_set(),
            ref_answers.as_set(),
            "{} strategies agree",
            nq.name
        );
        println!(
            "{:<4} {:>8} {:>14.3} {:>14.3}   {}",
            nq.name,
            sat_answers.len(),
            sat_ms,
            ref_ms,
            nq.description
        );
    }
    println!(
        "\nBoth strategies return identical answer sets; their costs differ —\n\
         \"the most appropriate technique to a given setting should be chosen\n\
         with an eye on the performance\" (§II-B). See `cargo run -p bench --bin fig3`."
    );
}
