//! Social-network workload — the paper's §II-A running example
//! (`hasFriend rdfs:domain Person`, "Anne hasFriend Marie") scaled into a
//! generator.
//!
//! The LUBM-style workload has a deep class tree and shallow property
//! hierarchy; this one is the opposite — a flat class hierarchy but a
//! property lattice (`closeFriendOf ⊑ hasFriend ⊑ knows`,
//! `follows ⊑ knows`) over a high-fan-out graph — so the two workloads
//! stress different reformulation shapes (subproperty chains vs subclass
//! trees) and different saturation profiles (rdfs7-heavy vs rdfs9-heavy).

use crate::{Dataset, NamedQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Dictionary, Graph, TermId, Triple, Vocab};
use sparql::parse_query;

/// Namespace of the social-network vocabulary.
pub const NS_SN: &str = "http://webreason.example/social#";
/// Namespace of generated people and places.
pub const NS_PEOPLE: &str = "http://webreason.example/people/";

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocialConfig {
    /// Number of people.
    pub people: usize,
    /// Average friendship edges per person.
    pub friends_per_person: usize,
    /// Average follow edges per person.
    pub follows_per_person: usize,
    /// Number of cities people live in.
    pub cities: usize,
    /// Fraction (percent) of people explicitly typed; the rest are typed
    /// only via the domain/range of their edges — the paper's point that
    /// "taking into account this implicit information is crucial".
    pub typed_percent: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            people: 2_000,
            friends_per_person: 6,
            follows_per_person: 4,
            cities: 25,
            typed_percent: 30,
            seed: 7,
        }
    }
}

impl SocialConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        SocialConfig {
            people: 60,
            friends_per_person: 3,
            follows_per_person: 2,
            cities: 4,
            ..Default::default()
        }
    }
}

/// The ontology's ids.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names mirror the ontology 1:1
pub struct SnVocab {
    pub person: TermId,
    pub influencer: TermId,
    pub place: TermId,
    pub city: TermId,
    pub knows: TermId,
    pub has_friend: TermId,
    pub close_friend_of: TermId,
    pub follows: TermId,
    pub lives_in: TermId,
}

impl SnVocab {
    /// Interns the vocabulary.
    pub fn intern(dict: &mut Dictionary) -> Self {
        let mut enc = |n: &str| dict.encode_iri(&format!("{NS_SN}{n}"));
        SnVocab {
            person: enc("Person"),
            influencer: enc("Influencer"),
            place: enc("Place"),
            city: enc("City"),
            knows: enc("knows"),
            has_friend: enc("hasFriend"),
            close_friend_of: enc("closeFriendOf"),
            follows: enc("follows"),
            lives_in: enc("livesIn"),
        }
    }
}

/// Generates the dataset.
pub fn generate(cfg: &SocialConfig) -> Dataset {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let sn = SnVocab::intern(&mut dict);
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Schema: property lattice + flat-ish classes (the §II-A constraints).
    g.insert(Triple::new(sn.has_friend, vocab.sub_property_of, sn.knows));
    g.insert(Triple::new(
        sn.close_friend_of,
        vocab.sub_property_of,
        sn.has_friend,
    ));
    g.insert(Triple::new(sn.follows, vocab.sub_property_of, sn.knows));
    g.insert(Triple::new(sn.has_friend, vocab.domain, sn.person));
    g.insert(Triple::new(sn.has_friend, vocab.range, sn.person));
    g.insert(Triple::new(sn.follows, vocab.domain, sn.person));
    g.insert(Triple::new(sn.follows, vocab.range, sn.influencer));
    g.insert(Triple::new(sn.lives_in, vocab.domain, sn.person));
    g.insert(Triple::new(sn.lives_in, vocab.range, sn.place));
    g.insert(Triple::new(sn.influencer, vocab.sub_class_of, sn.person));
    g.insert(Triple::new(sn.city, vocab.sub_class_of, sn.place));

    let people: Vec<TermId> = (0..cfg.people)
        .map(|i| dict.encode_iri(&format!("{NS_PEOPLE}p{i}")))
        .collect();
    let cities: Vec<TermId> = (0..cfg.cities)
        .map(|i| dict.encode_iri(&format!("{NS_PEOPLE}city{i}")))
        .collect();
    for &c in &cities {
        g.insert(Triple::new(c, vocab.rdf_type, sn.city));
    }

    // ~5% of people are influencers (explicitly typed — follow targets).
    let influencers: Vec<TermId> = people
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.05))
        .collect();
    for &i in &influencers {
        g.insert(Triple::new(i, vocab.rdf_type, sn.influencer));
    }

    for (idx, &p) in people.iter().enumerate() {
        if rng.gen_range(0..100) < cfg.typed_percent {
            g.insert(Triple::new(p, vocab.rdf_type, sn.person));
        }
        g.insert(Triple::new(p, sn.lives_in, cities[idx % cities.len()]));
        for _ in 0..rng.gen_range(1..=cfg.friends_per_person.max(1) * 2) {
            let friend = people[rng.gen_range(0..people.len())];
            // every third friendship is a close one (subproperty chain)
            let prop = if rng.gen_bool(0.33) {
                sn.close_friend_of
            } else {
                sn.has_friend
            };
            g.insert(Triple::new(p, prop, friend));
        }
        if !influencers.is_empty() {
            for _ in 0..rng.gen_range(0..=cfg.follows_per_person.max(1) * 2) {
                let target = influencers[rng.gen_range(0..influencers.len())];
                g.insert(Triple::new(p, sn.follows, target));
            }
        }
    }
    Dataset {
        dict,
        vocab,
        graph: g,
    }
}

/// The query workload S1–S5.
pub fn queries(ds: &mut Dataset) -> Vec<NamedQuery> {
    let prologue = format!("PREFIX sn: <{NS_SN}> PREFIX pp: <{NS_PEOPLE}>\n");
    let mut make = |name: &'static str, description: &'static str, body: &str| NamedQuery {
        name,
        description,
        query: parse_query(&format!("{prologue}{body}"), &mut ds.dict)
            .unwrap_or_else(|e| panic!("social query {name} must parse: {e}")),
    };
    vec![
        make(
            "S1",
            "all persons — mostly implicit via domain/range (the §II-A entailment)",
            "SELECT DISTINCT ?x WHERE { ?x a sn:Person }",
        ),
        make(
            "S2",
            "who knows whom — three subproperties fold into one query",
            "SELECT ?x ?y WHERE { ?x sn:knows ?y }",
        ),
        make(
            "S3",
            "friends-of-friends under the property lattice",
            "SELECT DISTINCT ?x ?z WHERE { ?x sn:hasFriend ?y . ?y sn:hasFriend ?z }",
        ),
        make(
            "S4",
            "influencers known by people of a given city",
            "SELECT DISTINCT ?i WHERE { ?x sn:livesIn pp:city0 . ?x sn:knows ?i . ?i a sn:Influencer }",
        ),
        make(
            "S5",
            "count the persons (aggregate over entailed types)",
            "SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?x a sn:Person }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfs::saturate;
    use sparql::{evaluate, finalize};

    #[test]
    fn deterministic_and_scaled() {
        let a = generate(&SocialConfig::tiny());
        let b = generate(&SocialConfig::tiny());
        assert_eq!(a.graph, b.graph);
        let big = generate(&SocialConfig {
            people: 120,
            ..SocialConfig::tiny()
        });
        assert!(big.graph.len() > a.graph.len());
    }

    #[test]
    fn implicit_typing_dominates() {
        let mut ds = generate(&SocialConfig::tiny());
        let qs = queries(&mut ds);
        let s1 = &qs[0].query;
        let explicit = evaluate(&ds.graph, s1).len();
        let sat = saturate(&ds.graph, &ds.vocab).graph;
        let entailed = evaluate(&sat, s1).len();
        assert!(
            entailed > explicit * 2,
            "most persons are implicit: {explicit} explicit vs {entailed} entailed"
        );
        assert_eq!(
            entailed,
            SocialConfig::tiny().people,
            "everyone is derivably a Person"
        );
    }

    #[test]
    fn subproperty_lattice_folds_into_knows() {
        let mut ds = generate(&SocialConfig::tiny());
        let qs = queries(&mut ds);
        let s2 = &qs[1].query;
        let sat = saturate(&ds.graph, &ds.vocab).graph;
        let knows = evaluate(&sat, s2).len();
        let explicit = evaluate(&ds.graph, s2).len();
        assert_eq!(explicit, 0, "nobody asserts sn:knows directly");
        assert!(
            knows > 100,
            "friendships + follows lift into knows: {knows}"
        );
    }

    #[test]
    fn all_queries_answer_under_reasoning_and_strategies_agree() {
        let mut ds = generate(&SocialConfig::tiny());
        let qs = queries(&mut ds);
        let sat = saturate(&ds.graph, &ds.vocab).graph;
        let schema = rdfs::Schema::extract(&ds.graph, &ds.vocab);
        for nq in &qs {
            let mut q = nq.query.clone();
            q.distinct = true;
            let direct = finalize(evaluate(&sat, &q), &q, &mut ds.dict);
            assert!(!direct.is_empty(), "{}", nq.name);
            if q.aggregate.is_none() {
                let r = reformulation::reformulate(&q, &schema, &ds.vocab).expect("dialect ok");
                let refo = evaluate(&ds.graph, &r.query);
                assert_eq!(refo.as_set(), direct.as_set(), "{}", nq.name);
            }
        }
    }
}
