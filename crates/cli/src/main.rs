//! The `webreason` binary: a thin shell around [`webreason_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match webreason_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
