//! The readiness-driven event loop behind [`Backend::Reactor`](crate::Backend).
//!
//! One reactor thread owns every socket. It multiplexes readiness with
//! `epoll(7)` — declared as raw `extern "C"` shims, keeping the crate
//! dependency-free — falling back to portable `poll(2)` when requested
//! (`ServerConfig::force_poll` or `WEBREASON_FORCE_POLL=1`). Each
//! connection is a [`Connection`](crate::conn::Connection) state machine
//! over a nonblocking socket; the reactor translates readiness events
//! into machine transitions and never performs blocking work itself:
//!
//! * **Query/update evaluation** runs on a small CPU worker pool. The
//!   reactor ships complete requests over an unbounded channel (bounded
//!   in practice by serial dispatch: at most one in-flight request per
//!   connection) and workers push serialized responses into a completion
//!   list, then ring the **wakeup pipe** — the only way another thread
//!   ever interrupts `epoll_wait`.
//! * **Partial writes** park the connection with write interest
//!   registered; the next writability event resumes the drain.
//! * **Idle phases** are reaped by a [`TimerWheel`](crate::wheel::TimerWheel):
//!   deadlines are per *phase* (reading a request, draining a response,
//!   keep-alive idle), so a slowloris sender or a stalled reader is
//!   closed no matter how slowly it trickles progress.
//!
//! Update jobs still flow through the single writer's group-commit queue;
//! the worker (not the reactor) blocks on the writer's reply, and a full
//! queue turns into an immediate 429 because `try_send` never waits.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::conn::Connection;
use crate::http::{mark_close, write_response, Limits};
use crate::lock;
use crate::proto::ErrorResponse;
use crate::wheel::TimerWheel;
use crate::Shared;
use obs::CancelToken;

/// Raw Linux syscall surface. Numbers/layouts match the x86_64 and
/// aarch64 ABIs; `EpollEvent` is packed only on x86_64 (the kernel
/// declares it `__attribute__((packed))` there and aligned elsewhere).
mod sys {
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub const F_SETFL: i32 = 4;
    pub const F_SETFD: i32 = 2;
    pub const O_NONBLOCK: i32 = 0o4000;
    pub const FD_CLOEXEC: i32 = 1;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Poller token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token for the wakeup pipe's read end.
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

/// One readiness event, already translated out of the OS encoding.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
}

/// Readiness multiplexer: epoll on Linux, `poll(2)` as the fallback.
enum Poller {
    Epoll { epfd: i32 },
    Poll { entries: Vec<PollEntry> },
}

struct PollEntry {
    fd: i32,
    token: u64,
    read: bool,
    write: bool,
}

impl Poller {
    fn new(force_poll: bool) -> io::Result<Poller> {
        let force =
            force_poll || std::env::var_os("WEBREASON_FORCE_POLL").is_some_and(|v| v == "1");
        if !force {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Ok(Poller::Epoll { epfd });
            }
            // ENOSYS or exhaustion: fall through to poll(2).
        }
        Ok(Poller::Poll {
            entries: Vec::new(),
        })
    }

    fn add(&mut self, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            Poller::Epoll { epfd } => epoll_op(*epfd, sys::EPOLL_CTL_ADD, fd, token, read, write),
            Poller::Poll { entries } => {
                entries.push(PollEntry {
                    fd,
                    token,
                    read,
                    write,
                });
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            Poller::Epoll { epfd } => epoll_op(*epfd, sys::EPOLL_CTL_MOD, fd, token, read, write),
            Poller::Poll { entries } => {
                if let Some(e) = entries.iter_mut().find(|e| e.fd == fd) {
                    e.token = token;
                    e.read = read;
                    e.write = write;
                }
                Ok(())
            }
        }
    }

    fn remove(&mut self, fd: i32) {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
            }
            Poller::Poll { entries } => entries.retain(|e| e.fd != fd),
        }
    }

    /// Blocks up to `timeout_ms` and appends translated events. EINTR is
    /// retried by returning an empty set (the caller's loop re-waits).
    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        match self {
            Poller::Epoll { epfd } => {
                let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 512];
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    return if e.kind() == ErrorKind::Interrupted {
                        Ok(())
                    } else {
                        Err(e)
                    };
                }
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) struct first.
                    let events = ev.events;
                    let data = ev.data;
                    let err = events & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    out.push(Event {
                        token: data,
                        readable: events & sys::EPOLLIN != 0 || err,
                        writable: events & sys::EPOLLOUT != 0 || err,
                    });
                }
                Ok(())
            }
            Poller::Poll { entries } => {
                let mut fds: Vec<sys::PollFd> = entries
                    .iter()
                    .map(|e| sys::PollFd {
                        fd: e.fd,
                        events: if e.read { sys::POLLIN } else { 0 }
                            | if e.write { sys::POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    return if e.kind() == ErrorKind::Interrupted {
                        Ok(())
                    } else {
                        Err(e)
                    };
                }
                for (e, f) in entries.iter().zip(&fds) {
                    if f.revents == 0 {
                        continue;
                    }
                    let err = f.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                    out.push(Event {
                        token: e.token,
                        readable: f.revents & sys::POLLIN != 0 || err,
                        writable: f.revents & sys::POLLOUT != 0 || err,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Poller::Epoll { epfd } = self {
            unsafe { sys::close(*epfd) };
        }
    }
}

fn epoll_op(epfd: i32, op: i32, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
    let mut ev = sys::EpollEvent {
        events: if read { sys::EPOLLIN } else { 0 } | if write { sys::EPOLLOUT } else { 0 },
        data: token,
    };
    if unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// Read end of the wakeup pipe; owned (and drained) by the reactor.
pub(crate) struct WakeupReader {
    fd: i32,
}

impl WakeupReader {
    /// Consumes pending wakeup bytes so level-triggered polling settles.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break; // EAGAIN / EOF / error: nothing left to consume
            }
        }
    }
}

impl Drop for WakeupReader {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Write end of the wakeup pipe. Cloned (via `Arc`) to every CPU worker
/// and the `Server` handle; the fd closes only when the last clone drops,
/// so a late `notify` can never hit a recycled descriptor.
pub(crate) struct WakeupWriter {
    fd: i32,
}

impl WakeupWriter {
    /// Makes the reactor's next `wait` return promptly. Best-effort: a
    /// full pipe already guarantees a pending wakeup.
    pub(crate) fn notify(&self) {
        let b = [1u8];
        unsafe { sys::write(self.fd, b.as_ptr(), 1) };
    }
}

impl Drop for WakeupWriter {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Creates the nonblocking, cloexec wakeup pipe.
pub(crate) fn wakeup_pair() -> io::Result<(WakeupReader, Arc<WakeupWriter>)> {
    let mut fds = [0i32; 2];
    if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    for fd in fds {
        unsafe {
            sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK);
            sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC);
        }
    }
    Ok((
        WakeupReader { fd: fds[0] },
        Arc::new(WakeupWriter { fd: fds[1] }),
    ))
}

/// A complete request handed to the CPU worker pool.
pub(crate) struct Job {
    pub token: usize,
    pub generation: u64,
    /// Deadline/disconnect token: armed from the request's deadline at
    /// enqueue time, tripped early if the connection dies while the job
    /// waits — a worker picking up a dead job sheds it without evaluating.
    pub cancel: CancelToken,
    /// `Registry::now_us` when the job entered the dispatch queue, for
    /// the queue-delay histogram feeding admission control.
    pub enqueued_us: u64,
    pub req: Box<crate::http::Request>,
}

/// A serialized response coming back from a worker. Stale generations
/// (connection reaped or errored while the worker ran) are dropped.
pub(crate) struct Completion {
    pub token: usize,
    pub generation: u64,
    pub resp: Vec<u8>,
}

/// Everything the reactor thread owns, bundled for the spawn.
pub(crate) struct ReactorParams {
    pub listener: TcpListener,
    pub shared: Arc<Shared>,
    pub limits: Limits,
    pub max_conns: usize,
    pub idle_timeout_ms: u64,
    pub force_poll: bool,
    pub job_tx: Sender<Job>,
    pub completions: Arc<Mutex<Vec<Completion>>>,
    pub wakeup_reader: WakeupReader,
}

/// One live connection slot.
struct Slot {
    conn: Connection,
    stream: TcpStream,
    generation: u64,
    /// Deadline value currently armed in the wheel (dedup guard).
    armed: Option<u64>,
    /// Interest mask last registered with the poller.
    interest: (bool, bool),
    /// Cancel token of the in-flight dispatched request, tripped when the
    /// slot is reaped so the worker stops evaluating for a dead client.
    cancel: CancelToken,
}

/// Index-stable slot arena; generations disambiguate reuse.
struct Slab {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Connection, stream: TcpStream, generation: u64) -> usize {
        self.live += 1;
        let slot = Slot {
            conn,
            stream,
            generation,
            armed: None,
            interest: (false, false),
            cancel: CancelToken::none(),
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    fn get(&mut self, token: usize) -> Option<&mut Slot> {
        self.slots.get_mut(token).and_then(Option::as_mut)
    }

    fn remove(&mut self, token: usize) -> Option<Slot> {
        let s = self.slots.get_mut(token)?.take()?;
        self.free.push(token);
        self.live -= 1;
        Some(s)
    }
}

/// The reactor thread body. Returns after a graceful drain: shutdown
/// flag observed, listener closed (backlog answered with 503), every
/// connection resolved — in-flight requests finish on the worker pool
/// and their responses are flushed with `Connection: close`.
pub(crate) fn reactor_loop(params: ReactorParams) {
    let ReactorParams {
        listener,
        shared,
        limits,
        max_conns,
        idle_timeout_ms,
        force_poll,
        job_tx,
        completions,
        wakeup_reader,
    } = params;
    let reg = obs::global();
    let start = Instant::now();
    let now_ms = |start: &Instant| start.elapsed().as_millis() as u64;

    let mut poller = match Poller::new(force_poll) {
        Ok(p) => p,
        Err(_) => return,
    };
    let listener_fd = listener.as_raw_fd();
    let mut listener = Some(listener);
    let _ = poller.add(listener_fd, TOKEN_LISTENER, true, false);
    let _ = poller.add(wakeup_reader.fd, TOKEN_WAKEUP, true, false);

    let mut slab = Slab::new();
    // Slot generation counters survive slot reuse (indexed like slots).
    let mut generations: Vec<u64> = Vec::new();
    let mut wheel = TimerWheel::new(10, 256, now_ms(&start));
    let mut events: Vec<Event> = Vec::new();
    let mut ready: VecDeque<Job> = VecDeque::new();
    let mut draining = false;

    loop {
        let timeout = if slab.live == 0 && !draining { 500 } else { 20 };
        if poller.wait(&mut events, timeout).is_err() {
            // Poller failure is unrecoverable; bail rather than spin.
            return;
        }
        reg.add("server.reactor.wakeups", 1);
        let now = now_ms(&start);

        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    if let Some(l) = &listener {
                        accept_ready(
                            l,
                            &shared,
                            &limits,
                            max_conns,
                            idle_timeout_ms,
                            now,
                            &mut slab,
                            &mut generations,
                            &mut poller,
                            &mut wheel,
                        );
                    }
                }
                TOKEN_WAKEUP => wakeup_reader.drain(),
                token => {
                    let token = token as usize;
                    let Some(slot) = slab.get(token) else {
                        continue;
                    };
                    if ev.writable {
                        if let Some(req) = slot.conn.on_writable(&mut slot.stream, now) {
                            let cancel = crate::deadline_token(&req, &shared);
                            slot.cancel = cancel.clone();
                            ready.push_back(Job {
                                token,
                                generation: slot.generation,
                                cancel,
                                enqueued_us: reg.now_us(),
                                req,
                            });
                        }
                    }
                    if ev.readable {
                        if let Some(req) = slot.conn.on_readable(&mut slot.stream, now) {
                            let cancel = crate::deadline_token(&req, &shared);
                            slot.cancel = cancel.clone();
                            ready.push_back(Job {
                                token,
                                generation: slot.generation,
                                cancel,
                                enqueued_us: reg.now_us(),
                                req,
                            });
                        }
                    }
                    finish_slot(token, &mut slab, &mut poller, &mut wheel, &shared, reg);
                }
            }
        }

        // Responses computed by the worker pool since the last pass.
        let done: Vec<Completion> = std::mem::take(&mut *lock(&completions));
        for c in done {
            let Some(slot) = slab.get(c.token) else {
                continue;
            };
            if slot.generation != c.generation {
                continue; // connection died while the worker ran
            }
            if let Some(req) = slot
                .conn
                .on_response(c.resp, draining, &mut slot.stream, now)
            {
                let cancel = crate::deadline_token(&req, &shared);
                slot.cancel = cancel.clone();
                ready.push_back(Job {
                    token: c.token,
                    generation: slot.generation,
                    cancel,
                    enqueued_us: reg.now_us(),
                    req,
                });
            }
            finish_slot(c.token, &mut slab, &mut poller, &mut wheel, &shared, reg);
        }

        // Ship complete requests to the CPU pool (after completions, so a
        // pipelined follow-up parsed during `on_response` rides along).
        while let Some(job) = ready.pop_front() {
            if job_tx.send(job).is_err() {
                return; // worker pool is gone; nothing sane left to do
            }
        }

        // Shutdown entry: stop accepting, answer the backlog, resolve
        // idle/partial connections; dispatched ones drain via force_close.
        if shared.shutting_down.load(Ordering::SeqCst) && !draining {
            draining = true;
            if let Some(l) = listener.take() {
                drain_backlog(&l, &shared);
                poller.remove(listener_fd);
                // Dropping the listener here closes the socket: late
                // connects get a refusal instead of parking in a backlog
                // nobody will ever answer.
            }
            for token in 0..slab.slots.len() {
                if let Some(slot) = slab.get(token) {
                    slot.conn.begin_shutdown(&mut slot.stream, now);
                }
                finish_slot(token, &mut slab, &mut poller, &mut wheel, &shared, reg);
            }
        }

        // Reap expired phase deadlines (lazy re-check: the wheel may pop
        // stale or early entries; the connection's live deadline decides).
        for t in wheel.advance(now) {
            let Some(slot) = slab.get(t.token) else {
                continue;
            };
            if slot.generation != t.generation {
                continue;
            }
            slot.armed = None;
            match slot.conn.deadline_ms() {
                Some(d) if d <= now => {
                    reg.add("server.reactor.reaped", 1);
                    drop_slot(t.token, &mut slab, &mut poller, &shared);
                }
                Some(d) => {
                    wheel.insert(t.token, slot.generation, d);
                    slot.armed = Some(d);
                }
                None => {} // dispatched: re-armed when the response lands
            }
        }

        if draining && slab.live == 0 {
            return;
        }
    }
}

/// Accepts until `WouldBlock`. Over-limit connections get a best-effort
/// 503 and close.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    limits: &Limits,
    max_conns: usize,
    idle_timeout_ms: u64,
    now: u64,
    slab: &mut Slab,
    generations: &mut Vec<u64>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    let reg = obs::global();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if slab.live >= max_conns {
                    reg.add("server.reactor.conn_limit_rejects", 1);
                    refuse(
                        stream,
                        503,
                        "Service Unavailable",
                        "overloaded",
                        "connection limit reached",
                        Some(shared.retry_after_secs),
                    );
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                let conn = Connection::new(*limits, idle_timeout_ms, now);
                // Token index is assigned by the slab; generation follows it.
                let token = slab.insert(conn, stream, 0);
                if generations.len() <= token {
                    generations.resize(token + 1, 0);
                }
                generations[token] += 1;
                let generation = generations[token];
                shared.open_conns.fetch_add(1, Ordering::SeqCst);
                let slot = slab.get(token).expect("just inserted");
                slot.generation = generation;
                slot.interest = (true, false);
                if poller.add(fd, token as u64, true, false).is_err() {
                    drop_slot(token, slab, poller, shared);
                    continue;
                }
                reg.add("server.reactor.accepted", 1);
                reg.add("server.http.connections", 1);
                // First sighting of the fresh connection's idle deadline.
                if let Some(d) = slot.conn.deadline_ms() {
                    wheel.insert(token, generation, d);
                    slot.armed = Some(d);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// After the shutdown flag: answer whatever is already in the backlog.
fn drain_backlog(listener: &TcpListener, shared: &Arc<Shared>) {
    while let Ok((stream, _)) = listener.accept() {
        refuse(
            stream,
            503,
            "Service Unavailable",
            "unavailable",
            "server is shutting down",
            Some(shared.retry_after_secs),
        );
    }
}

/// Best-effort one-shot refusal on a connection we will not serve. The
/// body keeps the uniform error shape; `retry_after_secs` mirrors into
/// both the header and `retry_after_ms` so clients can back off.
fn refuse(
    mut stream: TcpStream,
    status: u16,
    reason: &str,
    error: &str,
    msg: &str,
    retry_after_secs: Option<u64>,
) {
    let (body, headers) = match retry_after_secs {
        Some(secs) => (
            ErrorResponse::to_json_retry(error, msg, secs.saturating_mul(1000).max(1)),
            vec![("Retry-After", secs.to_string())],
        ),
        None => (ErrorResponse::to_json(error, msg), Vec::new()),
    };
    let mut resp = write_response(status, reason, "application/json", &headers, &body);
    mark_close(&mut resp);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(100)));
    let _ = stream.write_all(&resp);
}

/// Post-transition bookkeeping for one slot: drop closed connections,
/// sync poller interest, (re-)arm the wheel when the deadline moved.
fn finish_slot(
    token: usize,
    slab: &mut Slab,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
    shared: &Arc<Shared>,
    reg: &obs::Registry,
) {
    let Some(slot) = slab.get(token) else { return };
    if slot.conn.is_closed() {
        drop_slot(token, slab, poller, shared);
        return;
    }
    let want = (slot.conn.wants_read(), slot.conn.wants_write());
    if want != slot.interest {
        let fd = slot.stream.as_raw_fd();
        if poller.modify(fd, token as u64, want.0, want.1).is_err() {
            reg.add("server.reactor.poller_errors", 1);
            drop_slot(token, slab, poller, shared);
            return;
        }
        slot.interest = want;
    }
    match slot.conn.deadline_ms() {
        Some(d) if slot.armed != Some(d) => {
            wheel.insert(token, slot.generation, d);
            slot.armed = Some(d);
        }
        Some(_) => {}
        None => slot.armed = None,
    }
}

/// Removes a slot: poller deregistration, socket close, gauge decrement.
/// Trips the slot's cancel token so a worker still evaluating for this
/// connection stops at its next poll instead of computing into the void.
fn drop_slot(token: usize, slab: &mut Slab, poller: &mut Poller, shared: &Arc<Shared>) {
    if let Some(slot) = slab.remove(token) {
        slot.cancel.cancel();
        poller.remove(slot.stream.as_raw_fd());
        shared.open_conns.fetch_sub(1, Ordering::SeqCst);
        // Socket closes on drop.
    }
}
