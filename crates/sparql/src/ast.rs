//! Query AST: variables, triple patterns, BGPs and union queries.

use rdf_model::{Dictionary, TermId};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::fmt;

/// A query variable, identified by its index in the owning query's
/// variable table. Two occurrences of `?x` in one query share an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub u16);

impl Variable {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A position in a triple pattern: a variable or a constant term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QTerm {
    /// A named variable.
    Var(Variable),
    /// A dictionary-encoded constant.
    Const(TermId),
}

impl QTerm {
    /// The variable, if this position holds one.
    #[inline]
    pub fn as_var(self) -> Option<Variable> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Const(_) => None,
        }
    }

    /// The constant, if this position holds one.
    #[inline]
    pub fn as_const(self) -> Option<TermId> {
        match self {
            QTerm::Const(c) => Some(c),
            QTerm::Var(_) => None,
        }
    }
}

/// One triple pattern `s p o` of a BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriplePattern {
    /// Subject position.
    pub s: QTerm,
    /// Property position.
    pub p: QTerm,
    /// Object position.
    pub o: QTerm,
}

impl TriplePattern {
    /// Builds a pattern from its three positions.
    pub fn new(s: QTerm, p: QTerm, o: QTerm) -> Self {
        TriplePattern { s, p, o }
    }

    /// The variables of this pattern, in s/p/o order, possibly repeated.
    pub fn variables(&self) -> SmallVec<[Variable; 3]> {
        [self.s, self.p, self.o]
            .iter()
            .filter_map(|t| t.as_var())
            .collect()
    }
}

/// A basic graph pattern: a conjunction of triple patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bgp {
    /// The conjuncts.
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    /// Builds a BGP from patterns.
    pub fn new(patterns: Vec<TriplePattern>) -> Self {
        Bgp { patterns }
    }

    /// The set of distinct variables used in this BGP.
    pub fn variables(&self) -> FxHashSet<Variable> {
        self.patterns.iter().flat_map(|p| p.variables()).collect()
    }

    /// A canonical key identifying this BGP up to conjunct order: the
    /// sorted, deduplicated pattern list. Reformulation uses it to avoid
    /// re-deriving the same rewriting.
    pub fn canonical(&self) -> Bgp {
        let mut patterns = self.patterns.clone();
        patterns.sort();
        patterns.dedup();
        Bgp { patterns }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// The variable ordered on (must be projected).
    pub var: Variable,
    /// `DESC(?v)` ordering.
    pub descending: bool,
}

/// SPARQL 1.1 solution modifiers (`ORDER BY`, `LIMIT`, `OFFSET`) — beyond
/// the paper's BGP core, applied after solution enumeration and therefore
/// orthogonal to the reasoning technique (they carry through
/// reformulation unchanged).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// Sort keys, applied in order.
    pub order_by: Vec<OrderKey>,
    /// Maximum number of solutions returned.
    pub limit: Option<usize>,
    /// Solutions skipped before returning.
    pub offset: usize,
}

impl Modifiers {
    /// True when no modifier is set.
    pub fn is_empty(&self) -> bool {
        self.order_by.is_empty() && self.limit.is_none() && self.offset == 0
    }
}

/// A comparison operator in a `FILTER` expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Applies the operator to an ordering result.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CompareOp::Eq, Equal)
                | (CompareOp::Ne, Less | Greater)
                | (CompareOp::Lt, Less)
                | (CompareOp::Le, Less | Equal)
                | (CompareOp::Gt, Greater)
                | (CompareOp::Ge, Greater | Equal)
        )
    }

    /// The SPARQL token.
    pub fn token(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A `FILTER (?v op term)` constraint (SPARQL 1.1, beyond the BGP core).
///
/// Restriction (documented in the parser): every filter variable must be
/// projected, so filters commute with projection and are applied uniformly
/// by `eval::finalize` regardless of the reasoning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Filter {
    /// The left-hand variable.
    pub left: Variable,
    /// The comparison.
    pub op: CompareOp,
    /// The right-hand side: a variable or a constant.
    pub right: QTerm,
}

/// An aggregate SELECT expression (SPARQL 1.1 `COUNT`, the aggregate the
/// paper names in §II-B when contrasting dialect expressiveness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` / `COUNT(DISTINCT *)`: number of (distinct) solutions,
    /// bound to the alias variable name.
    Count {
        /// Count distinct solutions only.
        distinct: bool,
        /// The `AS ?alias` name (without `?`).
        alias: String,
    },
}

/// A SPARQL BGP query, possibly with a union body.
///
/// The original queries of the paper have a single BGP; reformulation
/// produces a union of BGPs (`q_ref`), which this same type represents, so
/// both run through the one evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Variable names, indexed by [`Variable`]; names exclude the leading `?`.
    pub var_names: Vec<String>,
    /// The SELECT list.
    pub projection: Vec<Variable>,
    /// Whether `DISTINCT` was requested (answer-*set* semantics).
    pub distinct: bool,
    /// The union of BGPs; a plain conjunctive query has exactly one.
    pub bgps: Vec<Bgp>,
    /// `FILTER` constraints, applied by `eval::finalize` (conjunctive).
    pub filters: Vec<Filter>,
    /// `FILTER NOT EXISTS { … }` groups (SPARQL 1.1 negation — "SPARQL
    /// 1.1 supports aggregates, negation etc.", §II-B). Each BGP must
    /// have **no** match under the solution's bindings; checked during
    /// evaluation against the same graph the query runs on, which is why
    /// reformulation rejects negated queries (the inner pattern would
    /// probe the unsaturated graph — the "subtle interplay between the
    /// RDF and SPARQL dialects" the paper describes).
    pub not_exists: Vec<Bgp>,
    /// Solution modifiers, applied by `eval::finalize`.
    pub modifiers: Modifiers,
    /// Aggregate SELECT expression, if any (replaces the projection).
    pub aggregate: Option<Aggregate>,
}

impl Query {
    /// Builds a single-BGP query.
    pub fn conjunctive(
        var_names: Vec<String>,
        projection: Vec<Variable>,
        distinct: bool,
        bgp: Bgp,
    ) -> Self {
        Query {
            var_names,
            projection,
            distinct,
            bgps: vec![bgp],
            filters: Vec::new(),
            not_exists: Vec::new(),
            modifiers: Modifiers::default(),
            aggregate: None,
        }
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Variable) -> &str {
        &self.var_names[v.index()]
    }

    /// Total number of triple patterns across the union.
    pub fn pattern_count(&self) -> usize {
        self.bgps.iter().map(|b| b.patterns.len()).sum()
    }

    /// Replaces the body with a union of BGPs (used by reformulation),
    /// keeping projection, variable names, modifiers and aggregate.
    pub fn with_bgps(&self, bgps: Vec<Bgp>) -> Query {
        Query {
            var_names: self.var_names.clone(),
            projection: self.projection.clone(),
            distinct: self.distinct,
            bgps,
            filters: self.filters.clone(),
            not_exists: self.not_exists.clone(),
            modifiers: self.modifiers.clone(),
            aggregate: self.aggregate.clone(),
        }
    }

    /// Serialises the query to SPARQL text. Constants are decoded via
    /// `dict`; unknown ids render as `#<n>` (they cannot occur for queries
    /// built against the same dictionary).
    pub fn to_sparql(&self, dict: &Dictionary) -> String {
        let term = |t: QTerm| -> String {
            match t {
                QTerm::Var(v) => format!("?{}", self.var_name(v)),
                QTerm::Const(id) => dict
                    .decode(id)
                    .map_or_else(|| format!("{id}"), |tm| tm.to_string()),
            }
        };
        let bgp_text = |bgp: &Bgp| -> String {
            let pats: Vec<String> = bgp
                .patterns
                .iter()
                .map(|p| format!("{} {} {}", term(p.s), term(p.p), term(p.o)))
                .collect();
            format!("{{ {} }}", pats.join(" . "))
        };
        let mut out = String::from("SELECT ");
        if self.distinct {
            out.push_str("DISTINCT ");
        }
        match &self.aggregate {
            Some(Aggregate::Count { distinct, alias }) => {
                let inner = if *distinct { "DISTINCT *" } else { "*" };
                out.push_str(&format!("(COUNT({inner}) AS ?{alias})"));
            }
            None if self.projection.is_empty() => out.push('*'),
            None => {
                let names: Vec<String> = self
                    .projection
                    .iter()
                    .map(|&v| format!("?{}", self.var_name(v)))
                    .collect();
                out.push_str(&names.join(" "));
            }
        }
        out.push_str(" WHERE ");
        let mut filter_text: String = self
            .filters
            .iter()
            .map(|f| {
                format!(
                    " FILTER (?{} {} {})",
                    self.var_name(f.left),
                    f.op.token(),
                    term(f.right)
                )
            })
            .collect();
        for neg in &self.not_exists {
            filter_text.push_str(" FILTER NOT EXISTS ");
            filter_text.push_str(&bgp_text(neg));
        }
        if self.bgps.len() == 1 {
            let body = bgp_text(&self.bgps[0]);
            if filter_text.is_empty() {
                out.push_str(&body);
            } else {
                // splice the filters inside the group
                out.push_str(body.strip_suffix(" }").unwrap_or(&body));
                out.push_str(&filter_text);
                out.push_str(" }");
            }
        } else {
            let parts: Vec<String> = self.bgps.iter().map(bgp_text).collect();
            out.push_str("{ ");
            out.push_str(&parts.join(" UNION "));
            out.push_str(&filter_text);
            out.push_str(" }");
        }
        if !self.modifiers.order_by.is_empty() {
            out.push_str(" ORDER BY");
            for key in &self.modifiers.order_by {
                if key.descending {
                    out.push_str(&format!(" DESC(?{})", self.var_name(key.var)));
                } else {
                    out.push_str(&format!(" ?{}", self.var_name(key.var)));
                }
            }
        }
        if let Some(limit) = self.modifiers.limit {
            out.push_str(&format!(" LIMIT {limit}"));
        }
        if self.modifiers.offset > 0 {
            out.push_str(&format!(" OFFSET {}", self.modifiers.offset));
        }
        out
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Term;

    fn v(i: u16) -> QTerm {
        QTerm::Var(Variable(i))
    }

    #[test]
    fn qterm_accessors() {
        let mut d = Dictionary::new();
        let c = d.encode(&Term::iri("http://x"));
        assert_eq!(QTerm::Const(c).as_const(), Some(c));
        assert_eq!(QTerm::Const(c).as_var(), None);
        assert_eq!(v(3).as_var(), Some(Variable(3)));
        assert_eq!(v(3).as_const(), None);
    }

    #[test]
    fn pattern_and_bgp_variables() {
        let mut d = Dictionary::new();
        let p = d.encode(&Term::iri("http://p"));
        let tp = TriplePattern::new(v(0), QTerm::Const(p), v(1));
        assert_eq!(tp.variables().as_slice(), &[Variable(0), Variable(1)]);
        let bgp = Bgp::new(vec![tp, TriplePattern::new(v(1), QTerm::Const(p), v(2))]);
        let vars = bgp.variables();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn canonical_ignores_order_and_duplicates() {
        let mut d = Dictionary::new();
        let p = d.encode(&Term::iri("http://p"));
        let a = TriplePattern::new(v(0), QTerm::Const(p), v(1));
        let b = TriplePattern::new(v(1), QTerm::Const(p), v(2));
        let b1 = Bgp::new(vec![a, b]);
        let b2 = Bgp::new(vec![b, a, a]);
        assert_eq!(b1.canonical(), b2.canonical());
    }

    #[test]
    fn to_sparql_round_trips_shape() {
        let mut d = Dictionary::new();
        let p = d.encode(&Term::iri("http://p"));
        let q = Query::conjunctive(
            vec!["x".into(), "y".into()],
            vec![Variable(0), Variable(1)],
            true,
            Bgp::new(vec![TriplePattern::new(v(0), QTerm::Const(p), v(1))]),
        );
        let text = q.to_sparql(&d);
        assert_eq!(text, "SELECT DISTINCT ?x ?y WHERE { ?x <http://p> ?y }");

        let union = q.with_bgps(vec![
            Bgp::new(vec![TriplePattern::new(v(0), QTerm::Const(p), v(1))]),
            Bgp::new(vec![TriplePattern::new(v(1), QTerm::Const(p), v(0))]),
        ]);
        let text = union.to_sparql(&d);
        assert!(text.contains("UNION"), "{text}");
    }

    #[test]
    fn select_star_renders() {
        let q = Query::conjunctive(vec!["x".into()], vec![], false, Bgp::default());
        assert!(q
            .to_sparql(&Dictionary::new())
            .starts_with("SELECT * WHERE"));
    }
}
