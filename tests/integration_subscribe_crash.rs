//! Crash-equivalence for subscriptions (build with `--features failpoints`).
//!
//! The property: **killing the writer mid-delta-publication — after the
//! journal committed the update but before subscribers saw its batch —
//! loses no data**. A subscriber that had acknowledged epochs up to the
//! crash re-attaches against the recovered store, catches up from its
//! last acked epoch, and must converge to the from-scratch oracle —
//! including the very update whose publication was cut short.
//!
//! Mechanics mirror `integration_crash.rs`: the test re-executes itself
//! filtered to [`subscribe_crash_child_entry`] with `WEBREASON_FAILPOINTS`
//! arming `store.subscribe.publish` (the first instruction of
//! [`SubscriptionHub::publish`]) with `abort@n`. The child journals a
//! fixed update script through a [`DurableStore`], streams it to two
//! subscribers (one `DISTINCT`, one bag) and persists their accumulated
//! state after every acknowledged epoch; the abort kills it with the
//! n-th update journaled but undelivered.

#![cfg(feature = "failpoints")]

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use durability::FsyncPolicy;
use rdf_model::Term;
use sparql::compile_delta;
use webreason_core::{DurableStore, MaintenanceAlgorithm, ReasoningConfig, Store};
use webreason_incremental::{DeltaBatch, HubConfig, NextWake, SubscriptionHub};

const SCHEMA: &str = r#"
    @prefix ex: <http://ex/> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    ex:Cat rdfs:subClassOf ex:Mammal .
"#;
const SET_Q: &str = "PREFIX ex: <http://ex/> SELECT DISTINCT ?x WHERE { ?x a ex:Mammal }";
const BAG_Q: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

/// The update script: one journaled update → one `hub.publish` per row.
///
/// | n | update                  | MAMMALS after |
/// |---|-------------------------|---------------|
/// | 1 | + Tom a Cat             | 1             |
/// | 2 | + Rex a Mammal          | 2             |
/// | 3 | + Ana a Cat             | 3             |
/// | 4 | − Tom a Cat             | 2             |
/// | 5 | + Dog ⊑ Mammal (schema) | 2             |
/// | 6 | + Fido a Dog            | 3             |
///
/// `EXPECTED_MAMMALS[n]` is the distinct answer count with the first `n`
/// updates committed. Update 5 is a schema change: its publication is a
/// full view rebuild, so the abort also covers the rebuild path.
const EXPECTED_MAMMALS: [usize; 7] = [0, 1, 2, 3, 2, 2, 3];
const N_UPDATES: u32 = 6;

fn script_op(n: u32) -> (bool, Term, Term, Term) {
    let a = Term::iri(rdf_model::vocab::RDF_TYPE);
    let sub = Term::iri(rdf_model::vocab::RDFS_SUB_CLASS_OF);
    let ex = |l: &str| Term::iri(format!("http://ex/{l}"));
    match n {
        1 => (true, ex("Tom"), a, ex("Cat")),
        2 => (true, ex("Rex"), a, ex("Mammal")),
        3 => (true, ex("Ana"), a, ex("Cat")),
        4 => (false, ex("Tom"), a, ex("Cat")),
        5 => (true, ex("Dog"), sub, ex("Mammal")),
        6 => (true, ex("Fido"), a, ex("Dog")),
        _ => unreachable!(),
    }
}

/// Client state: last acked epoch plus row → signed count. Rows are
/// joined with `\u{1f}` (unit separator) — safe for N-Triples terms.
type ClientState = (u64, BTreeMap<Vec<String>, i64>);

fn apply_batch(state: &mut BTreeMap<Vec<String>, i64>, batch: &DeltaBatch) {
    if batch.reset {
        state.clear();
    }
    for ev in &batch.events {
        *state.entry(ev.row.clone()).or_insert(0) += ev.delta;
    }
    state.retain(|_, m| *m != 0);
}

/// Persists a client's accumulated state atomically (tmp + rename), as a
/// real reconnecting client would durably track its acked position.
fn persist(dir: &Path, name: &str, state: &ClientState) {
    let mut text = format!("{}\n", state.0);
    for (row, m) in &state.1 {
        text.push_str(&format!("{m}\t{}\n", row.join("\u{1f}")));
    }
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, text).expect("state writes");
    std::fs::rename(&tmp, dir.join(name)).expect("state renames");
}

fn restore(dir: &Path, name: &str) -> ClientState {
    let text = std::fs::read_to_string(dir.join(name)).expect("client state survives the crash");
    let mut lines = text.lines();
    let acked = lines.next().unwrap().parse().expect("acked epoch");
    let mut state = BTreeMap::new();
    for line in lines {
        let (m, row) = line.split_once('\t').expect("count TAB row");
        state.insert(
            row.split('\u{1f}').map(str::to_owned).collect(),
            m.parse().expect("signed count"),
        );
    }
    (acked, state)
}

/// The child workload: journal the script through a durable store while
/// two subscribers stream it, checkpointing client state between epochs.
fn run_workload(dir: &Path) {
    let mut ds = DurableStore::create(
        dir,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        NonZeroUsize::MIN,
        FsyncPolicy::Always,
    )
    .expect("child creates the store");
    ds.set_delta_tracking(true);
    ds.load_turtle(SCHEMA).expect("schema loads");
    ds.publish();
    let _ = ds.take_delta(); // nobody subscribed yet
    let reader = ds.reader();

    let hub = SubscriptionHub::new(HubConfig::default());
    let cancel = obs::CancelToken::none();
    let mut clients: Vec<(u64, &str, ClientState)> = Vec::new();
    for (query, name) in [(SET_Q, "client-set"), (BAG_Q, "client-bag")] {
        let ok = hub
            .subscribe(&reader, query, true, &cancel)
            .expect("registers");
        let mut state = BTreeMap::new();
        apply_batch(&mut state, &ok.initial);
        let client = (ok.epoch, state);
        persist(dir, name, &client);
        clients.push((ok.id, name, client));
    }

    for n in 1..=N_UPDATES {
        let old = reader.snapshot();
        let (insert, s, p, o) = script_op(n);
        if insert {
            ds.insert_terms(&s, &p, &o).expect("journaled insert");
        } else {
            ds.delete_terms(&s, &p, &o).expect("journaled delete");
        }
        let delta = ds.take_delta();
        ds.publish();
        let new = reader.snapshot();
        // The armed abort fires here, with update n committed in the
        // journal but its batch never delivered.
        hub.publish(&old, &new, &delta);

        for (id, name, client) in &mut clients {
            match hub.next_wake(*id, Duration::from_millis(50)) {
                NextWake::Batches(batches) => {
                    for b in &batches {
                        apply_batch(&mut client.1, b);
                        client.0 = client.0.max(b.epoch);
                    }
                }
                NextWake::Idle => {}
                other => panic!("subscriber lost mid-workload: {other:?}"),
            }
            persist(dir, name, client);
        }
    }
    std::fs::write(dir.join("workload-done"), b"done").expect("marker");
}

/// Inert under a normal run; the crash driver arms it via env vars.
#[test]
fn subscribe_crash_child_entry() {
    let Ok(dir) = std::env::var("WEBREASON_CRASH_DIR") else {
        return;
    };
    run_workload(Path::new(&dir));
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("webreason-subcrash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// From-scratch set oracle: the store's own strategy-aware answer path.
fn set_oracle(store: &Store) -> BTreeMap<Vec<String>, i64> {
    let reader = store.reader();
    let snap = reader.snapshot();
    let q = snap.prepare(SET_Q).unwrap();
    let (sols, _) = snap.answer(&q).unwrap();
    let dict = snap.dictionary();
    let mut out = BTreeMap::new();
    for row in sols.as_set() {
        let decoded: Vec<String> = row
            .iter()
            .map(|id| dict.decode(*id).unwrap().to_string())
            .collect();
        out.insert(decoded, 1);
    }
    out
}

/// From-scratch bag oracle: re-derive every multiplicity from zero.
fn bag_oracle(store: &Store) -> BTreeMap<Vec<String>, i64> {
    let reader = store.reader();
    let snap = reader.snapshot();
    let q = snap.prepare(BAG_Q).unwrap();
    let program = compile_delta(&q).expect("delta-compilable");
    let graph = snap.view_graph().expect("saturated view graph");
    let dict = snap.dictionary();
    let mut out: BTreeMap<Vec<String>, i64> = BTreeMap::new();
    program.eval_full(graph, &dict, |row, m| {
        let decoded: Vec<String> = row
            .iter()
            .map(|id| dict.decode(*id).unwrap().to_string())
            .collect();
        *out.entry(decoded).or_insert(0) += m;
    });
    out.retain(|_, m| *m != 0);
    out
}

fn distinct_keys(state: &BTreeMap<Vec<String>, i64>) -> BTreeMap<Vec<String>, i64> {
    state
        .iter()
        .filter(|(_, &m)| m > 0)
        .map(|(k, _)| (k.clone(), 1))
        .collect()
}

/// Kills a child at the n-th `store.subscribe.publish`, recovers the
/// directory, re-attaches both clients from their persisted state, and
/// asserts convergence to the from-scratch oracle.
fn crash_reattach_and_check(hit: u32) {
    let dir = tmpdir(&format!("publish-{hit}"));
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(&exe)
        .args(["--exact", "subscribe_crash_child_entry", "--nocapture"])
        .env("WEBREASON_CRASH_DIR", &dir)
        .env(
            "WEBREASON_FAILPOINTS",
            format!("store.subscribe.publish=abort@{hit}"),
        )
        .output()
        .expect("child spawns");
    assert!(
        !out.status.success(),
        "hit {hit}: child survived\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        !dir.join("workload-done").exists(),
        "hit {hit}: workload finished before the abort fired"
    );

    // Write-ahead order: the update whose publication was killed is in
    // the journal, so recovery must include it.
    let mut rec =
        Store::recover(&dir).unwrap_or_else(|e| panic!("hit {hit}: recovery failed: {e}"));
    rec.set_delta_tracking(true);
    assert_eq!(
        rec.answer_sparql(SET_Q).expect("answers").len(),
        EXPECTED_MAMMALS[hit as usize],
        "hit {hit}: recovered store lost the committed update"
    );
    rec.snapshot();
    let reader = rec.reader();

    // Re-attach both clients: fresh hub (the old one died with the
    // process), re-register, catch up from the last epoch each client
    // durably acked. That epoch predates the recovered log, so catch-up
    // answers with a snapshot-reset batch — applying it over the stale
    // accumulated state must land exactly on the from-scratch oracle.
    let hub = SubscriptionHub::new(HubConfig::default());
    let cancel = obs::CancelToken::none();
    let mut subs: Vec<(u64, &str, ClientState)> = Vec::new();
    for (query, name) in [(SET_Q, "client-set"), (BAG_Q, "client-bag")] {
        let (acked, mut state) = restore(&dir, name);
        let ok = hub
            .subscribe(&reader, query, true, &cancel)
            .expect("re-registers");
        let cu = hub.catch_up(ok.id, acked).expect("catch-up");
        assert!(
            cu.terminal.is_none(),
            "hit {hit}: stream ended at re-attach"
        );
        let mut new_acked = acked;
        for b in &cu.batches {
            apply_batch(&mut state, b);
            new_acked = new_acked.max(b.epoch);
        }
        let oracle = if name == "client-set" {
            assert_eq!(
                distinct_keys(&state),
                set_oracle(&rec),
                "hit {hit}: {name} diverged after catch-up"
            );
            set_oracle(&rec)
        } else {
            assert_eq!(
                state,
                bag_oracle(&rec),
                "hit {hit}: {name} diverged after catch-up"
            );
            bag_oracle(&rec)
        };
        let _ = oracle;
        subs.push((ok.id, name, (new_acked, state)));
    }

    // Convergence continues: one more update on the recovered store
    // streams normally to the re-attached subscribers.
    let old = reader.snapshot();
    rec.insert_terms(
        &Term::iri("http://ex/Post"),
        &Term::iri(rdf_model::vocab::RDF_TYPE),
        &Term::iri("http://ex/Cat"),
    );
    let delta = rec.take_delta();
    let new = rec.snapshot();
    hub.publish(&old, &new, &delta);
    for (id, name, client) in &mut subs {
        match hub.next_wake(*id, Duration::from_millis(50)) {
            NextWake::Batches(batches) => {
                for b in &batches {
                    apply_batch(&mut client.1, b);
                }
            }
            NextWake::Idle => {}
            other => panic!("hit {hit}: {name} lost post-recovery: {other:?}"),
        }
        if *name == "client-set" {
            assert_eq!(distinct_keys(&client.1), set_oracle(&rec));
        } else {
            assert_eq!(client.1, bag_oracle(&rec));
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill mid-publication at every update of the script — including the
/// schema-change rebuild (hit 5) and the post-delete epoch (hit 4).
#[test]
fn killed_mid_delta_publication_reattaches_to_the_oracle() {
    for hit in 1..=N_UPDATES {
        crash_reattach_and_check(hit);
    }
}
