//! Conjunctive-query containment, minimisation and union pruning.
//!
//! "Reformulated queries are often syntactically more complex than the
//! original, thus their evaluation may be costly" (§II-B) — and
//! "efficiently evaluating large, complex reformulated RDF queries" is one
//! of the paper's open problems (§II-D). This module applies the classical
//! CQ-containment toolbox to shrink `q_ref` before evaluation:
//!
//! * [`homomorphism`] — decides `answers(to) ⊆ answers(from)` by searching
//!   a homomorphism `from → to` that fixes the answer variables
//!   (Chandra–Merlin);
//! * [`minimize`] — replaces a BGP by its *core*: atoms that fold into the
//!   rest (typically carrying only fresh existential variables) are
//!   removed;
//! * [`prune_subsumed`] — drops union branches whose answers are already
//!   produced by a more general branch.
//!
//! All three preserve answer-set semantics, which the reformulation
//! contract (`q_ref(G) = q(G∞)`) is property-tested under.

use rustc_hash::FxHashSet;
use sparql::{Bgp, QTerm, TriplePattern, Variable};

/// A partial variable mapping for the backtracking search.
#[derive(Default)]
struct Mapping {
    pairs: Vec<(Variable, QTerm)>,
}

impl Mapping {
    fn get(&self, v: Variable) -> Option<QTerm> {
        self.pairs
            .iter()
            .find(|(from, _)| *from == v)
            .map(|(_, to)| *to)
    }

    /// Tries to extend the mapping with `v ↦ target`; returns whether it
    /// was newly added (for backtracking).
    fn bind(&mut self, v: Variable, target: QTerm, fixed: &FxHashSet<Variable>) -> Option<bool> {
        if fixed.contains(&v) {
            // Answer variables must map to themselves.
            return if target == QTerm::Var(v) {
                Some(false)
            } else {
                None
            };
        }
        match self.get(v) {
            Some(existing) => (existing == target).then_some(false),
            None => {
                self.pairs.push((v, target));
                Some(true)
            }
        }
    }

    fn unbind(&mut self, v: Variable) {
        self.pairs.retain(|(from, _)| *from != v);
    }
}

/// Tries to map one position of an atom. Returns `Some(newly_bound)` on
/// success.
fn match_term(
    from: QTerm,
    to: QTerm,
    mapping: &mut Mapping,
    fixed: &FxHashSet<Variable>,
) -> Option<Option<Variable>> {
    match from {
        QTerm::Const(c) => (to == QTerm::Const(c)).then_some(None),
        QTerm::Var(v) => mapping.bind(v, to, fixed).map(|new| new.then_some(v)),
    }
}

fn match_atoms(
    from: &TriplePattern,
    to: &TriplePattern,
    mapping: &mut Mapping,
    fixed: &FxHashSet<Variable>,
) -> Option<Vec<Variable>> {
    let mut bound = Vec::new();
    for (f, t) in [(from.s, to.s), (from.p, to.p), (from.o, to.o)] {
        match match_term(f, t, mapping, fixed) {
            Some(Some(v)) => bound.push(v),
            Some(None) => {}
            None => {
                for v in bound {
                    mapping.unbind(v);
                }
                return None;
            }
        }
    }
    Some(bound)
}

fn search(
    from_atoms: &[TriplePattern],
    to: &Bgp,
    idx: usize,
    mapping: &mut Mapping,
    fixed: &FxHashSet<Variable>,
) -> bool {
    let Some(atom) = from_atoms.get(idx) else {
        return true;
    };
    for target in &to.patterns {
        if let Some(bound) = match_atoms(atom, target, mapping, fixed) {
            if search(from_atoms, to, idx + 1, mapping, fixed) {
                return true;
            }
            for v in bound {
                mapping.unbind(v);
            }
        }
    }
    false
}

/// True if there is a homomorphism `from → to` fixing the variables in
/// `fixed` — i.e. every answer of `to` is an answer of `from`
/// (`answers(to) ⊆ answers(from)` under set semantics).
pub fn homomorphism(from: &Bgp, to: &Bgp, fixed: &FxHashSet<Variable>) -> bool {
    let mut mapping = Mapping::default();
    search(&from.patterns, to, 0, &mut mapping, fixed)
}

/// Replaces `bgp` by an equivalent core: repeatedly drops any atom whose
/// removal leaves an equivalent query (the remainder must map
/// homomorphically onto itself with the atom restored — equivalently, the
/// full BGP must fold into the remainder).
pub fn minimize(bgp: &Bgp, fixed: &FxHashSet<Variable>) -> Bgp {
    let mut atoms = bgp.patterns.clone();
    atoms.sort();
    atoms.dedup();
    loop {
        let mut changed = false;
        for i in 0..atoms.len() {
            if atoms.len() == 1 {
                break;
            }
            let mut candidate = atoms.clone();
            candidate.remove(i);
            let candidate = Bgp {
                patterns: candidate,
            };
            // candidate ⊆ full always (fewer atoms). full ⊆ candidate iff
            // hom full → candidate. Then they are equivalent.
            if homomorphism(
                &Bgp {
                    patterns: atoms.clone(),
                },
                &candidate,
                fixed,
            ) {
                atoms = candidate.patterns;
                changed = true;
                break;
            }
        }
        if !changed {
            return Bgp { patterns: atoms };
        }
    }
}

/// Removes union branches subsumed by another branch: branch `b` is
/// dropped when some other kept branch `a` satisfies `answers(b) ⊆
/// answers(a)` (homomorphism `a → b`). Returns the number removed.
pub fn prune_subsumed(branches: &mut Vec<Bgp>, fixed: &FxHashSet<Variable>) -> usize {
    let before = branches.len();
    let mut kept: Vec<Bgp> = Vec::with_capacity(branches.len());
    // Consider more-general (smaller) branches first so they absorb the rest.
    branches.sort_by_key(|b| b.patterns.len());
    'outer: for b in branches.drain(..) {
        for a in &kept {
            if homomorphism(a, &b, fixed) {
                continue 'outer; // b's answers ⊆ a's
            }
        }
        kept.push(b);
    }
    *branches = kept;
    branches.sort();
    before - branches.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dictionary, TermId};

    struct Fx {
        dict: Dictionary,
    }

    impl Fx {
        fn new() -> Self {
            Fx {
                dict: Dictionary::new(),
            }
        }
        fn c(&mut self, n: &str) -> QTerm {
            QTerm::Const(self.dict.encode_iri(&format!("http://ex/{n}")))
        }
    }

    fn v(i: u16) -> QTerm {
        QTerm::Var(Variable(i))
    }

    fn fixed(vars: &[u16]) -> FxHashSet<Variable> {
        vars.iter().map(|&i| Variable(i)).collect()
    }

    #[test]
    fn identical_bgps_are_mutually_contained() {
        let mut f = Fx::new();
        let p = f.c("p");
        let b = Bgp::new(vec![TriplePattern::new(v(0), p, v(1))]);
        assert!(homomorphism(&b, &b, &fixed(&[0, 1])));
    }

    #[test]
    fn general_contains_specific() {
        let mut f = Fx::new();
        let p = f.c("p");
        let a = f.c("a");
        // from: ?x p ?y(existential)   to: ?x p a   — hom maps y→a
        let general = Bgp::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let specific = Bgp::new(vec![TriplePattern::new(v(0), p, a)]);
        assert!(homomorphism(&general, &specific, &fixed(&[0])));
        assert!(
            !homomorphism(&specific, &general, &fixed(&[0])),
            "constants don't generalise"
        );
    }

    #[test]
    fn answer_variables_must_be_fixed() {
        let mut f = Fx::new();
        let p = f.c("p");
        let a = f.c("a");
        let general = Bgp::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let specific = Bgp::new(vec![TriplePattern::new(v(0), p, a)]);
        // If ?y is an answer variable it cannot be mapped to the constant.
        assert!(!homomorphism(&general, &specific, &fixed(&[0, 1])));
    }

    #[test]
    fn distinct_constants_block_containment() {
        let mut f = Fx::new();
        let (ty, cat, mammal) = (f.c("type"), f.c("Cat"), f.c("Mammal"));
        let b1 = Bgp::new(vec![TriplePattern::new(v(0), ty, mammal)]);
        let b2 = Bgp::new(vec![TriplePattern::new(v(0), ty, cat)]);
        assert!(!homomorphism(&b1, &b2, &fixed(&[0])));
        assert!(!homomorphism(&b2, &b1, &fixed(&[0])));
        let mut branches = vec![b1, b2];
        assert_eq!(prune_subsumed(&mut branches, &fixed(&[0])), 0);
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn minimize_folds_redundant_existentials() {
        let mut f = Fx::new();
        let p = f.c("p");
        // ?x p ?y(answer) ∧ ?x p ?z(fresh) — the second atom folds onto the first.
        let b = Bgp::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(0), p, v(2)),
        ]);
        let core = minimize(&b, &fixed(&[0, 1]));
        assert_eq!(core.patterns.len(), 1);
        assert_eq!(core.patterns[0], TriplePattern::new(v(0), p, v(1)));
    }

    #[test]
    fn minimize_keeps_joined_atoms() {
        let mut f = Fx::new();
        let p = f.c("p");
        let q = f.c("q");
        // a genuine 2-hop join cannot shrink
        let b = Bgp::new(vec![
            TriplePattern::new(v(0), p, v(2)),
            TriplePattern::new(v(2), q, v(1)),
        ]);
        assert_eq!(minimize(&b, &fixed(&[0, 1])).patterns.len(), 2);
    }

    #[test]
    fn minimize_handles_chains_of_fresh_vars() {
        let mut f = Fx::new();
        let p = f.c("p");
        // ?x p ?f1 ∧ ?f1 p ?f2 — all existential beyond ?x: this is a real
        // 2-path constraint and must NOT fold to 1 atom (no hom from the
        // 2-atom query into the 1-atom one maps both atoms consistently…
        // actually ?f1↦?f1, both atoms need (x p f1) and (f1 p f2): hom to
        // {x p f1} requires f1↦f1 and f1↦x simultaneously — blocked unless
        // a self-loop pattern exists).
        let b = Bgp::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), p, v(2)),
        ]);
        assert_eq!(minimize(&b, &fixed(&[0])).patterns.len(), 2);
    }

    #[test]
    fn prune_removes_specialisations() {
        let mut f = Fx::new();
        let p = f.c("p");
        let sub = f.c("sub");
        let general = Bgp::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let special = Bgp::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(0), sub, v(2)),
        ]);
        let mut branches = vec![special.clone(), general.clone()];
        let removed = prune_subsumed(&mut branches, &fixed(&[0, 1]));
        assert_eq!(removed, 1);
        assert_eq!(branches, vec![general]);
    }

    #[test]
    fn self_join_patterns() {
        let mut f = Fx::new();
        let p = f.c("p");
        // ?x p ?x is NOT contained in ?x p ?y(existential)? It is: y↦x.
        let loop_q = Bgp::new(vec![TriplePattern::new(v(0), p, v(0))]);
        let edge_q = Bgp::new(vec![TriplePattern::new(v(0), p, v(1))]);
        assert!(homomorphism(&edge_q, &loop_q, &fixed(&[0])));
        assert!(
            !homomorphism(&loop_q, &edge_q, &fixed(&[0])),
            "loop is stricter"
        );
    }

    // The TermId import is used by Fx through Dictionary.
    #[allow(dead_code)]
    fn _t(_: TermId) {}
}
