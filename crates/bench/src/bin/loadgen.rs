//! `loadgen` — seeded mixed read/write load generator over real sockets.
//!
//! Boots the embedded HTTP server on a scratch journaled store and drives
//! it with N closed-loop clients on persistent keep-alive connections,
//! each flipping a seeded coin per request between a SPARQL read and an
//! update script. Reports throughput and p50/p95/p99 latency per mode and
//! proves the group-commit claim with observability counters: one fsync
//! and one publish per drained group, not per script.
//!
//! By default the workload runs twice and the report carries the write
//! throughput (applied ops/s) speedup between the legs:
//!
//! * **per-op-fsync baseline** — group commit off and one op per update
//!   request, i.e. one journal record, one fsync and one snapshot publish
//!   per op: exactly what the pre-group-commit server did for every op of
//!   a script;
//! * **group commit** — `--ops-per-update` ops per script (one atomic
//!   record each), concurrent scripts drained per writer wakeup, one
//!   fsync + one publish per drained group.
//!
//! Results land in `bench_results/table_loadgen.json`.
//!
//! ```text
//! loadgen [--clients N] [--write-ratio F] [--duration-secs S]
//!         [--ops-per-update N] [--fsync always|never]
//!         [--group-commit on|off|both] [--threads N] [--queue N]
//!         [--seed N] [--strict]
//!         [--subscribers N] [--subscribe-triples T] [--subscribe-updates U]
//! ```
//!
//! `--strict` exits non-zero when any response is neither 200 nor 429 —
//! the CI smoke gate.

use bench::{emit_json, render_table};
use durability::FsyncPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfs::incremental::MaintenanceAlgorithm;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webreason_core::{DurableStore, ReasoningConfig};
use webreason_server::{Backend, Server, ServerConfig};

const QUERY: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

#[derive(Debug, Clone)]
struct Args {
    clients: usize,
    write_ratio: f64,
    duration_secs: f64,
    ops_per_update: usize,
    fsync: FsyncPolicy,
    /// Store reasoning strategy. `None` (default) isolates the commit
    /// protocol — every microsecond of maintenance dilutes the fsync
    /// amortization being measured; `counting` adds incremental
    /// maintenance per op for an end-to-end mixed workload.
    reasoning: ReasoningConfig,
    /// `[false, true]` = both modes, baseline first.
    modes: Vec<bool>,
    threads: usize,
    queue: usize,
    seed: u64,
    strict: bool,
    backend: Backend,
    /// Run the connection-scaling sweep (threaded@8 vs reactor@8 vs
    /// reactor@`--clients`) into `table_cserve.json` instead of the
    /// group-commit comparison.
    conn_sweep: bool,
    /// Run the chaos leg (disk-fault windows + slow-client stalls) into
    /// `table_chaos.json`. Needs `--features failpoints`.
    chaos: bool,
    chaos_windows: usize,
    chaos_window_ms: u64,
    /// Run the subscription leg (`--subscribers N`) into
    /// `table_subscribe.json`: N live `POST /subscribe` streams over a
    /// LUBM-style store, asserting zero lost deltas and measuring delta
    /// propagation vs full re-evaluation.
    subscribers: usize,
    subscribe_triples: usize,
    subscribe_updates: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--clients N] [--write-ratio F] [--duration-secs S]\n\
         \x20              [--ops-per-update N] [--fsync always|never]\n\
         \x20              [--reasoning none|counting]\n\
         \x20              [--group-commit on|off|both] [--threads N] [--queue N]\n\
         \x20              [--seed N] [--strict] [--conn-sweep]\n\
         \x20              [--chaos] [--chaos-windows N] [--chaos-window-ms MS]\n\
         \x20              [--subscribers N] [--subscribe-triples T] [--subscribe-updates U]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        write_ratio: 0.5,
        duration_secs: 3.0,
        ops_per_update: 4,
        fsync: FsyncPolicy::Always,
        reasoning: ReasoningConfig::None,
        modes: vec![false, true],
        threads: 0, // 0 = one worker per client
        queue: 256,
        seed: 42,
        strict: false,
        backend: Backend::Reactor,
        conn_sweep: false,
        chaos: false,
        chaos_windows: 2,
        chaos_window_ms: 2000,
        subscribers: 0,
        subscribe_triples: 100_000,
        subscribe_updates: 50,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--strict" {
            args.strict = true;
            continue;
        }
        if flag == "--conn-sweep" {
            args.conn_sweep = true;
            continue;
        }
        if flag == "--chaos" {
            args.chaos = true;
            continue;
        }
        let Some(value) = it.next() else { usage() };
        let ok = match flag.as_str() {
            "--clients" => value.parse().map(|v| args.clients = v).is_ok(),
            "--write-ratio" => value
                .parse()
                .ok()
                .filter(|v| (0.0..=1.0).contains(v))
                .map(|v| args.write_ratio = v)
                .is_some(),
            "--duration-secs" => value
                .parse()
                .ok()
                .filter(|v| *v > 0.0)
                .map(|v| args.duration_secs = v)
                .is_some(),
            "--ops-per-update" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.ops_per_update = v)
                .is_some(),
            "--fsync" => FsyncPolicy::parse(value).map(|v| args.fsync = v).is_some(),
            "--reasoning" => match value.as_str() {
                "none" => {
                    args.reasoning = ReasoningConfig::None;
                    true
                }
                "counting" => {
                    args.reasoning = ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting);
                    true
                }
                _ => false,
            },
            "--group-commit" => match value.as_str() {
                "on" => {
                    args.modes = vec![true];
                    true
                }
                "off" => {
                    args.modes = vec![false];
                    true
                }
                "both" => {
                    args.modes = vec![false, true];
                    true
                }
                _ => false,
            },
            "--threads" => value.parse().map(|v| args.threads = v).is_ok(),
            "--backend" => match value.as_str() {
                "reactor" => {
                    args.backend = Backend::Reactor;
                    true
                }
                "threaded" => {
                    args.backend = Backend::Threaded;
                    true
                }
                _ => false,
            },
            "--queue" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.queue = v)
                .is_some(),
            "--seed" => value.parse().map(|v| args.seed = v).is_ok(),
            "--chaos-windows" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.chaos_windows = v)
                .is_some(),
            "--chaos-window-ms" => value
                .parse()
                .ok()
                .filter(|v| *v >= 100)
                .map(|v| args.chaos_window_ms = v)
                .is_some(),
            "--subscribers" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.subscribers = v)
                .is_some(),
            "--subscribe-triples" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1000)
                .map(|v| args.subscribe_triples = v)
                .is_some(),
            "--subscribe-updates" => value
                .parse()
                .ok()
                .filter(|v| *v >= 1)
                .map(|v| args.subscribe_updates = v)
                .is_some(),
            _ => false,
        };
        if !ok {
            eprintln!("loadgen: bad flag {flag} {value}");
            usage();
        }
    }
    if args.clients == 0 {
        usage();
    }
    args
}

/// One request over a persistent connection: write, then read exactly one
/// `Content-Length`-framed response. Returns the status code.
///
/// Chunked reads are safe on this closed loop: the server sends exactly
/// one response per request and the client only writes the next request
/// after consuming the current response, so there is never a next
/// response to over-read into.
fn roundtrip(stream: &mut TcpStream, raw: &[u8], buf: &mut Vec<u8>) -> std::io::Result<u16> {
    stream.write_all(raw)?;
    buf.clear();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 16 * 1024 {
            return Err(std::io::Error::other("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("peer closed mid-response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let text = String::from_utf8_lossy(&buf[..head_len]);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("no status line"))?;
    let len: usize = text
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_owned)
        })
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| std::io::Error::other("no content-length"))?;
    while buf.len() < head_len + len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("peer closed mid-body"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    Ok(status)
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[derive(Default)]
struct ClientTally {
    reads_ok: u64,
    writes_ok: u64,
    rejected_429: u64,
    errors: u64,
    read_us: Vec<u64>,
    write_us: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Serialize)]
struct ModeRow {
    mode: &'static str,
    backend: &'static str,
    group_commit: bool,
    clients: usize,
    write_ratio: f64,
    ops_per_update: usize,
    fsync: &'static str,
    elapsed_secs: f64,
    reads: u64,
    reads_per_s: f64,
    writes_applied: u64,
    writes_per_s: f64,
    ops_applied: u64,
    write_ops_per_s: f64,
    rejected_429: u64,
    errors: u64,
    read_p50_us: u64,
    read_p95_us: u64,
    read_p99_us: u64,
    write_p50_us: u64,
    write_p95_us: u64,
    write_p99_us: u64,
    // Counter proof of the commit protocol, deltas over this run.
    fsyncs: u64,
    groups: u64,
    publishes: u64,
    mean_group_size: f64,
    /// `webreason_server_open_connections` scraped mid-run (sweep legs).
    open_connections_mid: u64,
    reactor_accepted: u64,
    reactor_reaped: u64,
    fsyncs_per_write: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    rows: Vec<ModeRow>,
    /// `write_ops_per_s(group commit) / write_ops_per_s(per-op-fsync)`,
    /// present when both legs ran.
    write_speedup: Option<f64>,
}

/// Snapshot of the group-size histogram (count, sum) — the registry is
/// process-global, so per-run numbers are deltas between snapshots.
fn group_size_totals() -> (u64, u64) {
    obs::global()
        .snapshot()
        .histogram("server.update.group_size")
        .map_or((0, 0), |h| (h.count, h.sum))
}

/// Connects with retries: a 1000-client storm can transiently overflow
/// the accept backlog.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                let _ = s.set_nodelay(true);
                return s;
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("connect failed after retries: {last:?}");
}

/// Scrapes `/metrics` and returns the open-connections gauge.
fn scrape_open_connections(addr: SocketAddr) -> u64 {
    let mut stream = connect_with_retry(addr);
    let raw = b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
    let mut buf = Vec::new();
    if stream.write_all(raw).is_err() || stream.read_to_end(&mut buf).is_err() {
        return 0;
    }
    let text = String::from_utf8_lossy(&buf);
    text.lines()
        .find_map(|l| l.strip_prefix("webreason_server_open_connections "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn run_mode(args: &Args, group_commit: bool) -> ModeRow {
    run_leg(
        args,
        LegSpec {
            label: if group_commit {
                "group-commit"
            } else {
                "per-op-fsync"
            },
            group_commit,
            backend: args.backend,
            clients: args.clients,
            threads: if args.threads == 0 {
                args.clients
            } else {
                args.threads
            },
            scrape_mid: false,
        },
    )
}

/// One sweep/mode leg: backend, client count and worker count pinned.
#[derive(Clone, Copy)]
struct LegSpec {
    label: &'static str,
    group_commit: bool,
    backend: Backend,
    clients: usize,
    threads: usize,
    scrape_mid: bool,
}

fn run_leg(args: &Args, spec: LegSpec) -> ModeRow {
    let mode = spec.label;
    let group_commit = spec.group_commit;
    // The baseline leg pins one op per request: one record, one fsync,
    // one publish per op — the pre-group-commit write path.
    let ops_per_update = if group_commit { args.ops_per_update } else { 1 };
    let dir = std::env::temp_dir().join(format!("webreason-loadgen-{mode}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DurableStore::create(&dir, args.reasoning, NonZeroUsize::MIN, args.fsync)
        .expect("store creates");
    store
        .load_turtle(
            "@prefix ex: <http://ex/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Cat rdfs:subClassOf ex:Mammal .\n\
             ex:Tom a ex:Cat .\n",
        )
        .expect("seed loads");
    let server = Server::start(
        store,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: spec.threads,
            update_queue: args.queue,
            checkpoint_every: 0, // keep the fsync ledger to commits only
            group_commit,
            backend: spec.backend,
            max_conns: 4096.max(spec.clients + 64),
            ..Default::default()
        },
    )
    .expect("server boots");
    let addr: SocketAddr = server.local_addr();

    let reg = obs::global();
    let fsyncs0 = reg.counter_value("durability.journal.fsyncs");
    let groups0 = reg.counter_value("server.update.groups");
    let publishes0 = reg.counter_value("server.update.publishes");
    let (gs_count0, gs_sum0) = group_size_totals();
    let accepted0 = reg.counter_value("server.reactor.accepted");
    let reaped0 = reg.counter_value("server.reactor.reaped");

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Duration::from_secs_f64(args.duration_secs);
    let started = Instant::now();
    let handles: Vec<_> = (0..spec.clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let args = args.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(c as u64));
                let mut stream = connect_with_retry(addr);
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout sets");
                let _ = stream.set_nodelay(true);
                let mut tally = ClientTally::default();
                let mut head = Vec::with_capacity(256);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let write = rng.gen_bool(args.write_ratio);
                    let raw = if write {
                        let mut body = String::new();
                        for j in 0..ops_per_update {
                            body.push_str(&format!(
                                "insert <http://ex/w{c}-{n}-{j}> \
                                 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                                 <http://ex/Cat> .\n"
                            ));
                        }
                        post("/update", &body)
                    } else {
                        post("/query", QUERY)
                    };
                    n += 1;
                    let t = Instant::now();
                    match roundtrip(&mut stream, &raw, &mut head) {
                        Ok(200) => {
                            let us = t.elapsed().as_micros() as u64;
                            if write {
                                tally.writes_ok += 1;
                                tally.write_us.push(us);
                            } else {
                                tally.reads_ok += 1;
                                tally.read_us.push(us);
                            }
                        }
                        Ok(429) => {
                            tally.rejected_429 += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Ok(_) => tally.errors += 1,
                        Err(_) => {
                            tally.errors += 1;
                            break; // connection is gone; stop this client
                        }
                    }
                }
                tally
            })
        })
        .collect();
    // Mid-run gauge evidence: with every client connected and working,
    // the server should report them all as open.
    let open_connections_mid = if spec.scrape_mid {
        std::thread::sleep(deadline / 2);
        let open = scrape_open_connections(addr);
        std::thread::sleep(deadline / 2);
        open
    } else {
        std::thread::sleep(deadline);
        0
    };
    stop.store(true, Ordering::Relaxed);
    let mut total = ClientTally::default();
    for h in handles {
        let t = h.join().expect("client thread");
        total.reads_ok += t.reads_ok;
        total.writes_ok += t.writes_ok;
        total.rejected_429 += t.rejected_429;
        total.errors += t.errors;
        total.read_us.extend(t.read_us);
        total.write_us.extend(t.write_us);
    }
    let elapsed = started.elapsed().as_secs_f64();

    let fsyncs = reg.counter_value("durability.journal.fsyncs") - fsyncs0;
    let groups = reg.counter_value("server.update.groups") - groups0;
    let publishes = reg.counter_value("server.update.publishes") - publishes0;
    let (gs_count, gs_sum) = group_size_totals();
    let mean_group_size = if gs_count > gs_count0 {
        (gs_sum - gs_sum0) as f64 / (gs_count - gs_count0) as f64
    } else {
        0.0
    };

    drop(server.shutdown());
    let _ = std::fs::remove_dir_all(&dir);

    total.read_us.sort_unstable();
    total.write_us.sort_unstable();
    let ops_applied = total.writes_ok * ops_per_update as u64;
    ModeRow {
        mode,
        backend: match spec.backend {
            Backend::Reactor => "reactor",
            Backend::Threaded => "threaded",
        },
        group_commit,
        clients: spec.clients,
        write_ratio: args.write_ratio,
        ops_per_update,
        fsync: match args.fsync {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        },
        elapsed_secs: elapsed,
        reads: total.reads_ok,
        reads_per_s: total.reads_ok as f64 / elapsed,
        writes_applied: total.writes_ok,
        writes_per_s: total.writes_ok as f64 / elapsed,
        ops_applied,
        write_ops_per_s: ops_applied as f64 / elapsed,
        rejected_429: total.rejected_429,
        errors: total.errors,
        read_p50_us: percentile(&total.read_us, 0.50),
        read_p95_us: percentile(&total.read_us, 0.95),
        read_p99_us: percentile(&total.read_us, 0.99),
        write_p50_us: percentile(&total.write_us, 0.50),
        write_p95_us: percentile(&total.write_us, 0.95),
        write_p99_us: percentile(&total.write_us, 0.99),
        fsyncs,
        groups,
        publishes,
        mean_group_size,
        open_connections_mid,
        reactor_accepted: reg.counter_value("server.reactor.accepted") - accepted0,
        reactor_reaped: reg.counter_value("server.reactor.reaped") - reaped0,
        fsyncs_per_write: if total.writes_ok > 0 {
            fsyncs as f64 / total.writes_ok as f64
        } else {
            0.0
        },
    }
}

#[derive(Serialize)]
struct SweepReport {
    seed: u64,
    rows: Vec<ModeRow>,
    /// `reads_per_s(reactor@8) / reads_per_s(threaded@8)` — the reactor
    /// must not regress low-concurrency read throughput.
    read_throughput_ratio: Option<f64>,
}

/// The connection-scaling sweep: the threaded baseline and the reactor at
/// matched low concurrency, then the reactor alone at `--clients` (the
/// threaded backend would need one OS thread per connection there).
fn run_conn_sweep(args: &Args) -> ! {
    let big = args.clients.max(64);
    let workers = if args.threads == 0 { 8 } else { args.threads };
    println!(
        "== loadgen conn sweep: {big} keep-alive clients on the big leg, write ratio {:.2}, \
         {:.1}s per leg, seed {} ==",
        args.write_ratio, args.duration_secs, args.seed
    );
    let legs = [
        LegSpec {
            label: "threaded-8",
            group_commit: true,
            backend: Backend::Threaded,
            clients: 8,
            threads: 8.max(workers),
            scrape_mid: false,
        },
        LegSpec {
            label: "reactor-8",
            group_commit: true,
            backend: Backend::Reactor,
            clients: 8,
            threads: workers,
            scrape_mid: false,
        },
        LegSpec {
            label: "reactor-high",
            group_commit: true,
            backend: Backend::Reactor,
            clients: big,
            threads: workers,
            scrape_mid: true,
        },
    ];
    let rows: Vec<ModeRow> = legs.iter().map(|&l| run_leg(args, l)).collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_owned(),
                r.backend.to_owned(),
                r.clients.to_string(),
                format!("{:.0}", r.reads_per_s),
                format!("{:.0}", r.writes_per_s),
                r.read_p50_us.to_string(),
                r.read_p95_us.to_string(),
                r.read_p99_us.to_string(),
                r.open_connections_mid.to_string(),
                r.reactor_accepted.to_string(),
                r.reactor_reaped.to_string(),
                r.rejected_429.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "leg",
                "backend",
                "clients",
                "reads/s",
                "writes/s",
                "r p50 (µs)",
                "r p95 (µs)",
                "r p99 (µs)",
                "open@mid",
                "accepted",
                "reaped",
                "429s",
                "errors",
            ],
            &table
        )
    );

    let read_throughput_ratio = match rows.as_slice() {
        [threaded, reactor, ..] if threaded.reads_per_s > 0.0 => {
            Some(reactor.reads_per_s / threaded.reads_per_s)
        }
        _ => None,
    };
    if let Some(r) = read_throughput_ratio {
        println!("read throughput, reactor vs threaded at 8 clients: {r:.2}x");
    }

    let errors: u64 = rows.iter().map(|r| r.errors).sum();
    let report = SweepReport {
        seed: args.seed,
        rows,
        read_throughput_ratio,
    };
    let ok = emit_json("table_cserve", &report);
    if args.strict && errors > 0 {
        eprintln!("loadgen: --strict and {errors} non-200/429 responses");
        std::process::exit(1);
    }
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    if args.subscribers > 0 {
        subscribe::run(&args);
    }
    if args.chaos {
        chaos::run(&args);
    }
    if args.conn_sweep {
        run_conn_sweep(&args);
    }
    println!(
        "== loadgen: {} clients, write ratio {:.2}, {:.1}s per mode, fsync {:?}, seed {} ==",
        args.clients, args.write_ratio, args.duration_secs, args.fsync, args.seed
    );

    let rows: Vec<ModeRow> = args.modes.iter().map(|&gc| run_mode(&args, gc)).collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_owned(),
                r.ops_per_update.to_string(),
                format!("{:.0}", r.write_ops_per_s),
                format!("{:.0}", r.writes_per_s),
                format!("{:.0}", r.reads_per_s),
                r.write_p50_us.to_string(),
                r.write_p95_us.to_string(),
                r.write_p99_us.to_string(),
                r.fsyncs.to_string(),
                r.groups.to_string(),
                format!("{:.1}", r.mean_group_size),
                r.rejected_429.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "ops/req",
                "write ops/s",
                "scripts/s",
                "reads/s",
                "w p50 (µs)",
                "w p95 (µs)",
                "w p99 (µs)",
                "fsyncs",
                "groups",
                "mean group",
                "429s",
                "errors",
            ],
            &table
        )
    );

    let write_speedup = match rows.as_slice() {
        [off, on] if off.write_ops_per_s > 0.0 => Some(on.write_ops_per_s / off.write_ops_per_s),
        _ => None,
    };
    if let Some(s) = write_speedup {
        println!("write throughput speedup (group commit vs per-op fsync): {s:.1}x");
    }

    let errors: u64 = rows.iter().map(|r| r.errors).sum();
    let report = Report {
        seed: args.seed,
        rows,
        write_speedup,
    };
    let ok = emit_json("table_loadgen", &report);
    if args.strict && errors > 0 {
        eprintln!("loadgen: --strict and {errors} non-200/429 responses");
        std::process::exit(1);
    }
    if !ok {
        std::process::exit(1);
    }
}

/// The subscription leg (`--subscribers N`): N live `POST /subscribe`
/// streams over a LUBM-style store (universities, professors, students —
/// `--subscribe-triples` base triples under Counting saturation), driven
/// by `--subscribe-updates` single-triple updates that each change the
/// subscribed view by exactly one row.
///
/// Asserted (and `--strict`-gated): **zero lost deltas** — every
/// subscriber receives exactly one batch per update and its accumulated
/// state converges to the final from-scratch answer.
///
/// Measured: per-update **delta propagation** (update acked → batch on
/// the wire) vs **full re-evaluation** (`POST /query` of the same SPARQL)
/// p50/p95, and their ratio — the O(|Δ|)-vs-O(|G|) claim the incremental
/// views exist for. Results land in `bench_results/table_subscribe.json`.
mod subscribe {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    const PERSON_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/Person> }";

    /// LUBM-flavoured fixture: a Person class tree over graduate students
    /// and full professors plus advisor edges, sized to ~`triples`.
    fn fixture_ttl(triples: usize) -> String {
        let mut ttl = String::from(
            "@prefix ex: <http://ex/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:FullProfessor rdfs:subClassOf ex:Professor .\n\
             ex:Professor rdfs:subClassOf ex:Person .\n\
             ex:GraduateStudent rdfs:subClassOf ex:Student .\n\
             ex:Student rdfs:subClassOf ex:Person .\n",
        );
        let profs = 1000.min(triples / 10);
        for p in 0..profs {
            ttl.push_str(&format!("ex:prof{p} a ex:FullProfessor .\n"));
        }
        let students = (triples.saturating_sub(profs + 4)) / 2;
        for i in 0..students {
            ttl.push_str(&format!(
                "ex:s{i} a ex:GraduateStudent .\nex:s{i} ex:advisor ex:prof{} .\n",
                i % profs.max(1)
            ));
        }
        ttl
    }

    /// `"key":<digits>` extractor — enough for our own wire format.
    fn json_u64(text: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = text.find(&pat)? + pat.len();
        let digits: String = text[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }

    /// Applies a batch frame's events to `state`. Rows here are single
    /// IRIs (`["<http://ex/s1>"]`) — no JSON string escapes to handle.
    fn apply_events(state: &mut HashMap<String, i64>, frame: &str, reset: bool) {
        if reset {
            state.clear();
        }
        let mut rest = frame;
        while let Some(at) = rest.find("{\"row\":[\"") {
            let tail = &rest[at + 9..];
            let Some(end) = tail.find("\"]") else { break };
            let row = tail[..end].to_owned();
            let after = &tail[end..];
            let delta: i64 = after
                .find("\"delta\":")
                .and_then(|d| {
                    let s: String = after[d + 8..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || *c == '-')
                        .collect();
                    s.parse().ok()
                })
                .unwrap_or(0);
            let m = state.entry(row.clone()).or_insert(0);
            *m += delta;
            if *m == 0 {
                state.remove(&row);
            }
            rest = &rest[at + 9 + end..];
        }
    }

    /// Incremental chunked-transfer frame reader over a blocking socket.
    struct FrameReader {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    enum Frame {
        Data(String),
        End,
    }

    impl FrameReader {
        /// Consumes the response head, asserting a 200 chunked stream.
        fn read_head(&mut self) {
            loop {
                if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    let head = String::from_utf8_lossy(&self.buf[..pos]).to_string();
                    assert!(
                        head.starts_with("HTTP/1.1 200"),
                        "subscribe refused: {head}"
                    );
                    self.buf.drain(..pos + 4);
                    return;
                }
                self.fill();
            }
        }

        fn fill(&mut self) {
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("subscribe stream closed mid-frame"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("subscribe stream read error: {e}"),
            }
        }

        /// Next chunked frame, or None on a (timeout-bounded) quiet wire.
        fn next_frame(&mut self, patience: Duration) -> Option<Frame> {
            let start = Instant::now();
            loop {
                if let Some(line_end) = self.buf.windows(2).position(|w| w == b"\r\n") {
                    let size_hex = String::from_utf8_lossy(&self.buf[..line_end]).to_string();
                    let size = usize::from_str_radix(size_hex.trim(), 16)
                        .unwrap_or_else(|_| panic!("bad chunk size line {size_hex:?}"));
                    if size == 0 {
                        return Some(Frame::End);
                    }
                    if self.buf.len() >= line_end + 2 + size + 2 {
                        let payload =
                            String::from_utf8_lossy(&self.buf[line_end + 2..line_end + 2 + size])
                                .to_string();
                        self.buf.drain(..line_end + 2 + size + 2);
                        return Some(Frame::Data(payload));
                    }
                }
                if start.elapsed() > patience {
                    return None;
                }
                self.fill();
            }
        }
    }

    /// What one subscriber has seen, shared with the measuring writer.
    #[derive(Default)]
    struct SubState {
        /// Epoch → wall-clock arrival of its batch frame.
        arrivals: HashMap<u64, Instant>,
        /// Accumulated row → signed count state.
        state: HashMap<String, i64>,
        batches: u64,
        terminal: Option<String>,
    }

    #[derive(Serialize)]
    struct SubscribeReport {
        seed: u64,
        subscribers: usize,
        base_triples: usize,
        view_rows: usize,
        updates: usize,
        /// Per-update cost of the `server.subscribe.publish` span (µs):
        /// the O(|Δ|) dataflow that refreshes every registered view and
        /// fans the batch out. This is what each subscriber would
        /// otherwise pay as a full re-evaluation.
        delta_p50_us: u64,
        delta_p95_us: u64,
        /// `POST /query` of the same SPARQL at full size (µs).
        full_p50_us: u64,
        full_p95_us: u64,
        /// full_p50 / delta_p50 — the re-evaluation cost the delta
        /// dataflow avoids on every update.
        speedup_p50: f64,
        /// Update acked → batch on subscriber 0's wire (µs): how stale a
        /// live stream is relative to a client that re-polls (which pays
        /// `full_*` on top).
        propagate_p50_us: u64,
        propagate_p95_us: u64,
        lost_deltas: u64,
        diverged_subscribers: u64,
        update_p50_us: u64,
        update_p95_us: u64,
    }

    pub fn run(args: &Args) -> ! {
        let n_subs = args.subscribers;
        let updates = args.subscribe_updates;
        println!(
            "== loadgen subscribe: {n_subs} live streams over ~{} LUBM-style triples, \
             {updates} updates, seed {} ==",
            args.subscribe_triples, args.seed
        );

        let dir =
            std::env::temp_dir().join(format!("webreason-loadgen-sub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DurableStore::create(
            &dir,
            ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
            NonZeroUsize::MIN,
            args.fsync,
        )
        .expect("store creates");
        let (base_triples, _) = store
            .load_turtle(&fixture_ttl(args.subscribe_triples))
            .expect("fixture loads");
        let server = Server::start(
            store,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: n_subs + 4,
                update_queue: args.queue,
                checkpoint_every: 0,
                group_commit: true,
                backend: Backend::Threaded, // live streams, one worker each
                max_conns: 4096,
                max_subscriptions: n_subs + 1,
                ..Default::default()
            },
        )
        .expect("server boots");
        let addr: SocketAddr = server.local_addr();

        // Register every subscriber and park a reader thread on each
        // stream. The threaded backend keeps the stream open for as long
        // as the subscription lives.
        let stop = Arc::new(AtomicBool::new(false));
        let states: Vec<Arc<Mutex<SubState>>> = (0..n_subs)
            .map(|_| Arc::new(Mutex::new(SubState::default())))
            .collect();
        let sub_handles: Vec<_> = states
            .iter()
            .map(|st| {
                let st = Arc::clone(st);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut stream = connect_with_retry(addr);
                    stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .expect("timeout sets");
                    stream
                        .write_all(&post("/subscribe", PERSON_QUERY))
                        .expect("subscribe sends");
                    let mut rd = FrameReader {
                        stream,
                        buf: Vec::new(),
                    };
                    rd.read_head();
                    let header = loop {
                        if let Some(Frame::Data(f)) = rd.next_frame(Duration::from_secs(30)) {
                            break f;
                        }
                    };
                    assert!(header.contains("\"vars\""), "no registration receipt");
                    // Initial materialization: a reset batch.
                    let initial = loop {
                        if let Some(Frame::Data(f)) = rd.next_frame(Duration::from_secs(30)) {
                            break f;
                        }
                    };
                    apply_events(&mut st.lock().unwrap().state, &initial, true);
                    while !stop.load(Ordering::Relaxed) {
                        match rd.next_frame(Duration::from_millis(100)) {
                            Some(Frame::Data(f)) => {
                                let mut s = st.lock().unwrap();
                                if let Some(t) = f.find("\"terminal\"").map(|_| f.clone()) {
                                    s.terminal = Some(t);
                                    break;
                                }
                                let epoch = json_u64(&f, "epoch").expect("batch epoch");
                                s.arrivals.insert(epoch, Instant::now());
                                s.batches += 1;
                                apply_events(&mut s.state, &f, f.contains("\"reset\":true"));
                            }
                            Some(Frame::End) => break,
                            None => {}
                        }
                    }
                })
            })
            .collect();

        // Wait until every stream has its initial state before measuring.
        for st in &states {
            while st.lock().unwrap().state.is_empty() {
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        // The measuring writer: each update flips exactly one Person row,
        // then we time (a) acked → batch arrival on subscriber 0 and
        // (b) a from-scratch POST /query of the same view.
        let mut writer = connect_with_retry(addr);
        let mut prober = connect_with_retry(addr);
        let mut head = Vec::with_capacity(64 * 1024);
        let reg = obs::global();
        let mut delta_us: Vec<u64> = Vec::new();
        let mut propagate_us: Vec<u64> = Vec::new();
        let mut full_us: Vec<u64> = Vec::new();
        let mut update_us: Vec<u64> = Vec::new();
        let mut lost_deltas = 0u64;
        let mut span_total = reg.snapshot().span_total_us("server.subscribe.publish");
        for u in 0..updates {
            let (op, subj) = if u % 2 == 0 {
                ("insert", format!("http://ex/new{u}"))
            } else {
                ("delete", format!("http://ex/new{}", u - 1))
            };
            let body = format!(
                "{op} <{subj}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                 <http://ex/GraduateStudent> .\n"
            );
            let t0 = Instant::now();
            let status =
                roundtrip(&mut writer, &post("/update", &body), &mut head).expect("update lands");
            assert_eq!(status, 200, "update {u} refused");
            let acked = Instant::now();
            update_us.push(t0.elapsed().as_micros() as u64);
            let epoch = json_u64(&String::from_utf8_lossy(&head), "epoch").expect("update epoch");

            // Every subscriber must see this epoch's batch; subscriber 0
            // times the propagation.
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut arrived = vec![false; n_subs];
            while Instant::now() < deadline && arrived.iter().any(|a| !a) {
                for (i, st) in states.iter().enumerate() {
                    if !arrived[i] {
                        if let Some(at) = st.lock().unwrap().arrivals.get(&epoch) {
                            arrived[i] = true;
                            if i == 0 {
                                propagate_us
                                    .push(at.saturating_duration_since(acked).as_micros() as u64);
                            }
                        }
                    }
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            lost_deltas += arrived.iter().filter(|a| !**a).count() as u64;

            // Updates are serial, so the span's growth over this update
            // is exactly this publication's view-maintenance cost.
            let total = reg.snapshot().span_total_us("server.subscribe.publish");
            delta_us.push(total - span_total);
            span_total = total;

            let t1 = Instant::now();
            let status = roundtrip(&mut prober, &post("/query", PERSON_QUERY), &mut head)
                .expect("full re-evaluation");
            assert_eq!(status, 200);
            full_us.push(t1.elapsed().as_micros() as u64);
        }

        // From-scratch final answer → convergence check per subscriber.
        let status =
            roundtrip(&mut prober, &post("/query", PERSON_QUERY), &mut head).expect("final answer");
        assert_eq!(status, 200);
        let final_text = String::from_utf8_lossy(&head).to_string();
        let body = &final_text[final_text.find("\r\n\r\n").map(|p| p + 4).unwrap_or(0)..];
        let mut oracle: Vec<&str> = body
            .split('"')
            .filter(|t| t.starts_with("<http://ex/"))
            .collect();
        oracle.sort_unstable();
        oracle.dedup();

        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for h in sub_handles {
            h.join().expect("subscriber joins");
        }
        let mut diverged = 0u64;
        for (i, st) in states.iter().enumerate() {
            let s = st.lock().unwrap();
            if let Some(t) = &s.terminal {
                eprintln!("subscriber {i} terminated early: {t}");
                diverged += 1;
                continue;
            }
            let mut got: Vec<&str> = s
                .state
                .iter()
                .filter(|(_, &m)| m > 0)
                .map(|(k, _)| k.as_str())
                .collect();
            got.sort_unstable();
            if got != oracle {
                eprintln!(
                    "subscriber {i} diverged: {} rows vs oracle {}",
                    got.len(),
                    oracle.len()
                );
                diverged += 1;
            }
        }
        drop(server.shutdown());
        let _ = std::fs::remove_dir_all(&dir);

        delta_us.sort_unstable();
        propagate_us.sort_unstable();
        full_us.sort_unstable();
        update_us.sort_unstable();
        let report = SubscribeReport {
            seed: args.seed,
            subscribers: n_subs,
            base_triples,
            view_rows: oracle.len(),
            updates,
            delta_p50_us: percentile(&delta_us, 0.50),
            delta_p95_us: percentile(&delta_us, 0.95),
            full_p50_us: percentile(&full_us, 0.50),
            full_p95_us: percentile(&full_us, 0.95),
            speedup_p50: if percentile(&delta_us, 0.50) > 0 {
                percentile(&full_us, 0.50) as f64 / percentile(&delta_us, 0.50) as f64
            } else {
                f64::INFINITY
            },
            propagate_p50_us: percentile(&propagate_us, 0.50),
            propagate_p95_us: percentile(&propagate_us, 0.95),
            lost_deltas,
            diverged_subscribers: diverged,
            update_p50_us: percentile(&update_us, 0.50),
            update_p95_us: percentile(&update_us, 0.95),
        };
        println!(
            "{}",
            render_table(
                &[
                    "subs",
                    "triples",
                    "view rows",
                    "updates",
                    "Δ p50 (µs)",
                    "Δ p95 (µs)",
                    "full p50 (µs)",
                    "full p95 (µs)",
                    "speedup",
                    "lost",
                    "diverged",
                ],
                &[vec![
                    report.subscribers.to_string(),
                    report.base_triples.to_string(),
                    report.view_rows.to_string(),
                    report.updates.to_string(),
                    report.delta_p50_us.to_string(),
                    report.delta_p95_us.to_string(),
                    report.full_p50_us.to_string(),
                    report.full_p95_us.to_string(),
                    format!("{:.1}x", report.speedup_p50),
                    report.lost_deltas.to_string(),
                    report.diverged_subscribers.to_string(),
                ]]
            )
        );

        let ok = emit_json("table_subscribe", &report);
        if args.strict && (report.lost_deltas > 0 || report.diverged_subscribers > 0) {
            eprintln!(
                "loadgen: --strict and {} lost deltas / {} diverged subscribers",
                report.lost_deltas, report.diverged_subscribers
            );
            std::process::exit(1);
        }
        std::process::exit(if ok { 0 } else { 1 });
    }
}

/// The chaos leg (`--chaos`): mixed load with injected disk-fault windows
/// and a slow-client stall, asserting the graceful-degradation SLOs:
///
/// * **reads never fail** — not one read error, in or out of a fault
///   window, and reads keep flowing *during* every window;
/// * **zero lost acked writes** — every 200'd update is present in the
///   recovered store; every 5xx'd update is absent;
/// * **degraded entry/exit counters match the windows** — the server
///   enters read-only mode exactly once per window and auto-recovers
///   exactly once per window;
/// * **deadlines hold under load** — a deadline-capped wide union
///   returns 504 within deadline + 50 ms while concurrent queries are
///   unaffected (asserted only when the uncapped run is slow enough for
///   the cap to bite);
/// * **slow clients are reaped** — a stalled half-request is closed by
///   the idle reaper instead of pinning a connection.
///
/// Results land in `bench_results/table_chaos.json`; `--strict` exits
/// non-zero when any SLO fails.
mod chaos {
    #[cfg(not(feature = "failpoints"))]
    pub fn run(_args: &super::Args) -> ! {
        eprintln!(
            "loadgen: --chaos needs the fault-injection sites compiled in;\n\
             rerun with: cargo run -p bench --bin loadgen --features failpoints -- --chaos"
        );
        std::process::exit(2);
    }

    #[cfg(feature = "failpoints")]
    pub fn run(args: &super::Args) -> ! {
        imp::run(args)
    }

    #[cfg(feature = "failpoints")]
    mod imp {
        use super::super::*;
        use serde::Serialize;
        use std::collections::HashSet;
        use std::sync::atomic::AtomicU64;
        use webreason_failpoints::configure;

        const WIDE_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/Thing> }";
        const CHEAP_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/C0> }";
        const WRITE_CLASS_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/C1> }";

        /// 362 subclasses of `ex:Thing` with `per` instances each: the
        /// wide query reformulates into a 363-branch union.
        fn fixture_ttl(per: usize) -> String {
            let mut ttl = String::from(
                "@prefix ex: <http://ex/> .\n\
                 @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n",
            );
            for c in 0..362 {
                ttl.push_str(&format!("ex:C{c} rdfs:subClassOf ex:Thing .\n"));
                for i in 0..per {
                    ttl.push_str(&format!("ex:i{c}x{i} a ex:C{c} .\n"));
                }
            }
            ttl
        }

        fn post_with_deadline(path: &str, body: &str, deadline_ms: u64) -> Vec<u8> {
            format!(
                "POST {path} HTTP/1.1\r\nHost: loadgen\r\n\
                 X-Webreason-Deadline-Ms: {deadline_ms}\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        }

        /// One `Connection: close` GET, returning the status code.
        fn get_status(addr: SocketAddr, path: &str) -> std::io::Result<u16> {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            stream.write_all(
                format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )?;
            let mut buf = Vec::new();
            stream.read_to_end(&mut buf)?;
            String::from_utf8_lossy(&buf)
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| std::io::Error::other("no status line"))
        }

        fn wait_ready(addr: SocketAddr, budget: Duration) -> bool {
            let start = Instant::now();
            while start.elapsed() < budget {
                if matches!(get_status(addr, "/ready"), Ok(200)) {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            false
        }

        #[derive(Default)]
        struct WriterTally {
            /// Subjects the server acked with 200 — must all survive.
            acked: Vec<String>,
            /// Subjects refused with 5xx — must all be absent.
            refused: Vec<String>,
            rejected_429: u64,
            ambiguous: u64,
        }

        #[derive(Serialize)]
        struct DeadlineProbe {
            uncapped_ms: u64,
            deadline_ms: u64,
            /// Whether the cap was slow enough to assert on (uncapped
            /// > 2x deadline); when false the probe is informational.
            enforced: bool,
            status: u16,
            elapsed_ms: u64,
        }

        #[derive(Serialize)]
        struct ChaosReport {
            seed: u64,
            windows: usize,
            window_ms: u64,
            readers: usize,
            writers: usize,
            reads_ok: u64,
            read_errors: u64,
            /// Successful reads counted *inside* each fault window.
            reads_during_windows: Vec<u64>,
            writes_acked: u64,
            writes_refused_5xx: u64,
            writes_rejected_429: u64,
            writes_ambiguous: u64,
            degraded_entered: u64,
            degraded_exited: u64,
            recovered_within_budget: bool,
            /// Acked subjects missing from the recovered store (SLO: 0).
            lost_acked_writes: u64,
            /// 5xx'd subjects present in the recovered store (SLO: 0).
            phantom_refused_writes: u64,
            live_rows: u64,
            recovered_rows: u64,
            deadline: DeadlineProbe,
            slow_client_reaped: bool,
            slo_failures: Vec<String>,
        }

        pub fn run(args: &Args) -> ! {
            configure("");
            let windows = args.chaos_windows;
            let window = Duration::from_millis(args.chaos_window_ms);
            let readers = args.clients.saturating_sub(2).max(2);
            let writers = 2usize;
            println!(
                "== loadgen chaos: {readers} readers + {writers} writers, {windows} x \
                 {}ms ENOSPC windows, seed {} ==",
                args.chaos_window_ms, args.seed
            );

            let dir = std::env::temp_dir()
                .join(format!("webreason-loadgen-chaos-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = DurableStore::create(
                &dir,
                ReasoningConfig::Reformulation,
                NonZeroUsize::MIN,
                FsyncPolicy::Always,
            )
            .expect("store creates");
            // 200 instances per class: wide enough that the uncapped
            // 363-branch union takes tens of milliseconds even in release
            // builds, so the deadline probe genuinely bites.
            store.load_turtle(&fixture_ttl(200)).expect("fixture loads");
            let server = Server::start(
                store,
                ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    threads: 4,
                    update_queue: args.queue,
                    checkpoint_every: 0,
                    group_commit: true,
                    backend: Backend::Reactor,
                    idle_timeout: Duration::from_millis(1000),
                    ..Default::default()
                },
            )
            .expect("server boots");
            let addr: SocketAddr = server.local_addr();

            let reg = obs::global();
            let entered0 = reg.counter_value("server.degraded.entered");
            let exited0 = reg.counter_value("server.degraded.exited");

            // Baseline for the deadline probe: the uncapped wide union.
            let mut probe_conn = connect_with_retry(addr);
            let mut head = Vec::new();
            let t = Instant::now();
            let status = roundtrip(&mut probe_conn, &post("/query", WIDE_QUERY), &mut head)
                .expect("uncapped wide query");
            assert_eq!(status, 200, "uncapped wide query must answer");
            let uncapped_ms = t.elapsed().as_millis() as u64;

            let stop = Arc::new(AtomicBool::new(false));
            let reads_ok = Arc::new(AtomicU64::new(0));
            let read_errors = Arc::new(AtomicU64::new(0));
            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let stop = Arc::clone(&stop);
                    let reads_ok = Arc::clone(&reads_ok);
                    let read_errors = Arc::clone(&read_errors);
                    std::thread::spawn(move || {
                        let mut stream = connect_with_retry(addr);
                        let mut head = Vec::with_capacity(256);
                        while !stop.load(Ordering::Relaxed) {
                            match roundtrip(&mut stream, &post("/query", CHEAP_QUERY), &mut head) {
                                Ok(200) => {
                                    reads_ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(_) => {
                                    read_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    read_errors.fetch_add(1, Ordering::Relaxed);
                                    stream = connect_with_retry(addr);
                                }
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                })
                .collect();
            let writer_handles: Vec<_> = (0..writers)
                .map(|c| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut stream = connect_with_retry(addr);
                        let mut head = Vec::with_capacity(256);
                        let mut tally = WriterTally::default();
                        let mut n = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let subject = format!("http://ex/w{c}-{n}");
                            n += 1;
                            let body = format!(
                                "insert <{subject}> \
                                 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                                 <http://ex/C1> .\n"
                            );
                            match roundtrip(&mut stream, &post("/update", &body), &mut head) {
                                Ok(200) => tally.acked.push(subject),
                                Ok(429) => {
                                    tally.rejected_429 += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Ok(s) if s >= 500 => tally.refused.push(subject),
                                Ok(_) => tally.ambiguous += 1,
                                Err(_) => {
                                    // The reply was lost mid-flight: the
                                    // write's fate is unknown — exclude it
                                    // from both membership sets.
                                    tally.ambiguous += 1;
                                    stream = connect_with_retry(addr);
                                }
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        tally
                    })
                })
                .collect();

            // Warmup, then the fault windows.
            std::thread::sleep(Duration::from_millis(500));
            let mut reads_during_windows = Vec::with_capacity(windows);
            let mut recovered_within_budget = true;
            let mut slow_client: Option<std::thread::JoinHandle<bool>> = None;
            for w in 0..windows {
                let before = reads_ok.load(Ordering::Relaxed);
                configure("store.journal.append=err(ENOSPC)");
                if w == 0 {
                    // A slow client stalls mid-request during the first
                    // window: the idle reaper must close it.
                    slow_client = Some(std::thread::spawn(move || {
                        let mut stream = connect_with_retry(addr);
                        if stream.write_all(b"POST /update HTTP/1.1\r\n").is_err() {
                            return false;
                        }
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(8)));
                        let mut buf = [0u8; 64];
                        // EOF or reset = reaped; a timeout means the stall
                        // pinned the connection for 8s.
                        !matches!(
                            stream.read(&mut buf),
                            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut
                        )
                    }));
                }
                std::thread::sleep(window);
                configure("");
                reads_during_windows.push(reads_ok.load(Ordering::Relaxed) - before);
                // The disk healed: the probe supervisor must exit degraded
                // mode on its own before the next window.
                if !wait_ready(addr, Duration::from_secs(10)) {
                    recovered_within_budget = false;
                }
                std::thread::sleep(Duration::from_millis(500));
            }

            // Deadline probe against the healed server, under load. The
            // original probe connection idled through the fault windows
            // and was reaped — that's the reaper doing its job; reconnect.
            // Best of three attempts: a prompt 504 proves cancellation is
            // enforced inside evaluation; a single descheduled attempt on
            // an oversubscribed box is scheduler noise, not a server SLO.
            let mut probe_conn = connect_with_retry(addr);
            let deadline_ms = (uncapped_ms / 4).max(5);
            let mut best: Option<(u16, u64)> = None;
            for _ in 0..3 {
                let t = Instant::now();
                let status = roundtrip(
                    &mut probe_conn,
                    &post_with_deadline("/query", WIDE_QUERY, deadline_ms),
                    &mut head,
                )
                .expect("capped wide query");
                let elapsed = t.elapsed().as_millis() as u64;
                if best.is_none_or(|(_, b)| elapsed < b) {
                    best = Some((status, elapsed));
                }
                if status == 504 && elapsed <= deadline_ms + 50 {
                    break;
                }
            }
            let (status, elapsed_ms) = best.expect("three probe attempts");
            let capped = DeadlineProbe {
                uncapped_ms,
                deadline_ms,
                enforced: uncapped_ms > deadline_ms * 2,
                status,
                elapsed_ms,
            };

            stop.store(true, Ordering::Relaxed);
            for h in reader_handles {
                h.join().expect("reader joins");
            }
            let mut tally = WriterTally::default();
            for h in writer_handles {
                let t = h.join().expect("writer joins");
                tally.acked.extend(t.acked);
                tally.refused.extend(t.refused);
                tally.rejected_429 += t.rejected_429;
                tally.ambiguous += t.ambiguous;
            }
            let slow_client_reaped = slow_client
                .map(|h| h.join().expect("slow client joins"))
                .unwrap_or(true);

            // A sentinel write proves the healed server still commits,
            // then the live row count pins the pre-shutdown state.
            let status = roundtrip(
                &mut probe_conn,
                &post(
                    "/update",
                    "insert <http://ex/sentinel> \
                     <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/C1> .",
                ),
                &mut head,
            )
            .expect("sentinel write");
            assert_eq!(status, 200, "post-chaos write must land");
            tally.acked.push("http://ex/sentinel".to_owned());
            let status = roundtrip(
                &mut probe_conn,
                &post("/query", WRITE_CLASS_QUERY),
                &mut head,
            )
            .expect("live row count");
            assert_eq!(status, 200);
            let live_rows = {
                let text = String::from_utf8_lossy(&head);
                let body = &text[text.find("\r\n\r\n").map(|p| p + 4).unwrap_or(0)..];
                body.matches("http://ex/").count() as u64
            };

            let degraded_entered = reg.counter_value("server.degraded.entered") - entered0;
            let degraded_exited = reg.counter_value("server.degraded.exited") - exited0;
            drop(server.shutdown());

            // Recovery comparison: the journal must rebuild exactly the
            // acked state — no lost acked writes, no phantom refused ones.
            let rec = webreason_core::Store::recover(&dir).expect("recovers");
            let recovered_rows = rec
                .answer_sparql(WRITE_CLASS_QUERY)
                .expect("recovered store answers")
                .len() as u64;
            let export = rec.export_ntriples();
            let subjects: HashSet<&str> = export
                .lines()
                .filter_map(|l| l.split_whitespace().next())
                .collect();
            let lost_acked_writes = tally
                .acked
                .iter()
                .filter(|s| !subjects.contains(format!("<{s}>").as_str()))
                .count() as u64;
            let phantom_refused_writes = tally
                .refused
                .iter()
                .filter(|s| subjects.contains(format!("<{s}>").as_str()))
                .count() as u64;
            let _ = std::fs::remove_dir_all(&dir);

            let mut slo_failures: Vec<String> = Vec::new();
            let errors = read_errors.load(Ordering::Relaxed);
            if errors > 0 {
                slo_failures.push(format!("{errors} read errors (must be 0)"));
            }
            for (w, &n) in reads_during_windows.iter().enumerate() {
                if n == 0 {
                    slo_failures.push(format!("no reads flowed during window {w}"));
                }
            }
            if lost_acked_writes > 0 {
                slo_failures.push(format!("{lost_acked_writes} acked writes lost"));
            }
            if phantom_refused_writes > 0 {
                slo_failures.push(format!(
                    "{phantom_refused_writes} refused writes present after recovery"
                ));
            }
            if degraded_entered != windows as u64 || degraded_exited != windows as u64 {
                slo_failures.push(format!(
                    "degraded entered/exited {degraded_entered}/{degraded_exited}, \
                     expected {windows}/{windows}"
                ));
            }
            if !recovered_within_budget {
                slo_failures.push("degraded mode did not clear within 10s of heal".to_owned());
            }
            if live_rows != recovered_rows {
                slo_failures.push(format!(
                    "live rows {live_rows} != recovered rows {recovered_rows}"
                ));
            }
            if !slow_client_reaped {
                slo_failures.push("slow client was not reaped".to_owned());
            }
            if capped.enforced {
                if capped.status != 504 {
                    slo_failures.push(format!(
                        "deadline-capped query returned {} (expected 504)",
                        capped.status
                    ));
                } else if capped.elapsed_ms > capped.deadline_ms + 50 {
                    slo_failures.push(format!(
                        "504 took {}ms against a {}ms deadline (+50ms budget)",
                        capped.elapsed_ms, capped.deadline_ms
                    ));
                }
            }

            let report = ChaosReport {
                seed: args.seed,
                windows,
                window_ms: args.chaos_window_ms,
                readers,
                writers,
                reads_ok: reads_ok.load(Ordering::Relaxed),
                read_errors: errors,
                reads_during_windows,
                writes_acked: tally.acked.len() as u64,
                writes_refused_5xx: tally.refused.len() as u64,
                writes_rejected_429: tally.rejected_429,
                writes_ambiguous: tally.ambiguous,
                degraded_entered,
                degraded_exited,
                recovered_within_budget,
                lost_acked_writes,
                phantom_refused_writes,
                live_rows,
                recovered_rows,
                deadline: capped,
                slow_client_reaped,
                slo_failures: slo_failures.clone(),
            };
            let table = vec![vec![
                report.reads_ok.to_string(),
                report.read_errors.to_string(),
                report.writes_acked.to_string(),
                report.writes_refused_5xx.to_string(),
                format!("{degraded_entered}/{degraded_exited}"),
                report.lost_acked_writes.to_string(),
                format!("{}/{}", report.deadline.status, report.deadline.elapsed_ms),
                report.slow_client_reaped.to_string(),
            ]];
            println!(
                "{}",
                render_table(
                    &[
                        "reads ok",
                        "read errs",
                        "acked",
                        "5xx",
                        "degraded in/out",
                        "lost acked",
                        "504 probe (st/ms)",
                        "reaped",
                    ],
                    &table
                )
            );
            for f in &slo_failures {
                eprintln!("chaos SLO FAILED: {f}");
            }
            if slo_failures.is_empty() {
                println!("all chaos SLOs held");
            }

            let ok = emit_json("table_chaos", &report);
            if args.strict && !slo_failures.is_empty() {
                std::process::exit(1);
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
    }
}
