//! A practical Turtle subset parser.
//!
//! Supported: `@prefix` / `PREFIX` directives, full IRIs, prefixed names,
//! the `a` keyword, predicate lists (`;`), object lists (`,`), quoted
//! literals with escapes / language tags / datatypes, numeric and boolean
//! shorthand, labelled blank nodes and `#` comments. Anonymous blank nodes
//! `[...]`, collections `(...)`, `@base` and triple-quoted strings are
//! rejected with explicit errors — the workload fixtures and examples of
//! this reproduction do not need them.

use crate::error::ParseError;
use rdf_model::{vocab, Dictionary, Graph, Literal, Term, Triple};
use rustc_hash::FxHashMap;

struct Parser<'a> {
    rest: &'a str,
    line: usize,
    prefixes: FxHashMap<String, String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            rest: input,
            line: 1,
            prefixes: FxHashMap::default(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, msg)
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        if c == '\n' {
            self.line += 1;
        }
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(self.err(format!("expected '{c}', found {got:?}"))),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        // ':' counts as a name character: `a:x` is a prefixed name, not the
        // keyword `a` followed by `:x`.
        if self
            .rest
            .get(..kw.len())
            .is_some_and(|head| head.eq_ignore_ascii_case(kw))
            && !self.rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':')
        {
            for _ in 0..kw.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn iri_ref(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(out),
                Some(c) if c == ' ' || c == '\n' || c == '"' => {
                    return Err(self.err(format!("character {c:?} not allowed in IRI")));
                }
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    /// A prefixed-name or bare local part: reads up to a delimiter, resolves
    /// the prefix. `prefix:` with empty local part is allowed.
    fn pname(&mut self) -> Result<String, ParseError> {
        let end = self
            .rest
            .find(|c: char| {
                c.is_whitespace() || matches!(c, ';' | ',' | '#' | '"' | '<' | ')' | ']')
            })
            .unwrap_or(self.rest.len());
        let mut token = &self.rest[..end];
        // A trailing '.' ends the statement unless it is inside the local name
        // (we keep dots followed by more name characters, per Turtle PN_LOCAL).
        while token.ends_with('.') {
            token = &token[..token.len() - 1];
        }
        if token.is_empty() {
            return Err(self.err("expected a prefixed name"));
        }
        let Some(colon) = token.find(':') else {
            return Err(self.err(format!("'{token}' is not a prefixed name (missing ':')")));
        };
        let (prefix, local) = (&token[..colon], &token[colon + 1..]);
        let Some(ns) = self.prefixes.get(prefix) else {
            return Err(self.err(format!("unknown prefix '{prefix}:'")));
        };
        let iri = format!("{ns}{local}");
        self.rest = &self.rest[token.len()..];
        Ok(iri)
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        if self.rest.starts_with("\"\"") {
            return Err(self.err("triple-quoted strings are outside the supported Turtle subset"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('f') => out.push('\u{c}'),
                    Some('"') => out.push('"'),
                    Some('\'') => out.push('\''),
                    Some('\\') => out.push('\\'),
                    Some('u') => out.push(self.hex_char(4)?),
                    Some('U') => out.push(self.hex_char(8)?),
                    other => return Err(self.err(format!("invalid string escape {other:?}"))),
                },
                Some('\n') => return Err(self.err("newline in single-quoted string")),
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    fn hex_char(&mut self, n: usize) -> Result<char, ParseError> {
        if self.rest.len() < n || !self.rest.is_char_boundary(n) {
            return Err(self.err("truncated unicode escape"));
        }
        let (hex, rest) = self.rest.split_at(n);
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex in unicode escape"))?;
        self.rest = rest;
        char::from_u32(code).ok_or_else(|| self.err("escape is not a scalar value"))
    }

    fn numeric_literal(&mut self) -> Result<Term, ParseError> {
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E')))
            .unwrap_or(self.rest.len());
        let mut token = &self.rest[..end];
        // A final '.' not followed by a digit terminates the statement.
        if token.ends_with('.') {
            token = &token[..token.len() - 1];
        }
        if token.is_empty() {
            return Err(self.err("expected a numeric literal"));
        }
        let dt = if token.contains(['e', 'E']) {
            token
                .parse::<f64>()
                .map_err(|_| self.err(format!("invalid double literal '{token}'")))?;
            vocab::XSD_DOUBLE
        } else if token.contains('.') {
            token
                .parse::<f64>()
                .map_err(|_| self.err(format!("invalid decimal literal '{token}'")))?;
            vocab::XSD_DECIMAL
        } else {
            token
                .parse::<i128>()
                .map_err(|_| self.err(format!("invalid integer literal '{token}'")))?;
            vocab::XSD_INTEGER
        };
        self.rest = &self.rest[token.len()..];
        Ok(Term::Literal(Literal::typed(token, dt)))
    }

    /// Parses a term in subject/object position.
    fn term(&mut self, allow_literal: bool) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.iri_ref()?.into())),
            Some('[') => {
                Err(self
                    .err("anonymous blank nodes '[...]' are outside the supported Turtle subset"))
            }
            Some('(') => {
                Err(self.err("collections '(...)' are outside the supported Turtle subset"))
            }
            Some('_') if self.rest.starts_with("_:") => {
                self.bump();
                self.bump();
                let end = self
                    .rest
                    .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
                    .unwrap_or(self.rest.len());
                if end == 0 {
                    return Err(self.err("empty blank node label"));
                }
                let label = self.rest[..end].to_owned();
                self.rest = &self.rest[end..];
                Ok(Term::blank(label))
            }
            Some('"') if allow_literal => {
                let lexical = self.string_literal()?;
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let end = self
                            .rest
                            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                            .unwrap_or(self.rest.len());
                        if end == 0 {
                            return Err(self.err("empty language tag"));
                        }
                        let tag = self.rest[..end].to_owned();
                        self.rest = &self.rest[end..];
                        Ok(Term::Literal(Literal::lang(lexical, &tag)))
                    }
                    Some('^') => {
                        self.bump();
                        self.expect('^')?;
                        let dt = if self.peek() == Some('<') {
                            self.iri_ref()?
                        } else {
                            self.pname()?
                        };
                        Ok(Term::Literal(Literal::typed(lexical, dt)))
                    }
                    _ => Ok(Term::Literal(Literal::plain(lexical))),
                }
            }
            Some(c) if allow_literal && (c.is_ascii_digit() || c == '+' || c == '-') => {
                self.numeric_literal()
            }
            Some(_) if allow_literal && self.eat_keyword("true") => {
                Ok(Term::Literal(Literal::typed("true", vocab::XSD_BOOLEAN)))
            }
            Some(_) if allow_literal && self.eat_keyword("false") => {
                Ok(Term::Literal(Literal::typed("false", vocab::XSD_BOOLEAN)))
            }
            Some('"') => Err(self.err("literal not allowed here")),
            Some(_) => Ok(Term::Iri(self.pname()?.into())),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Parses the predicate position: `a` or an IRI / prefixed name.
    fn predicate(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        if self.eat_keyword("a") {
            return Ok(Term::iri(vocab::RDF_TYPE));
        }
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.iri_ref()?.into())),
            Some(_) => Ok(Term::Iri(self.pname()?.into())),
            None => Err(self.err("unexpected end of input in predicate position")),
        }
    }

    fn directive(&mut self) -> Result<bool, ParseError> {
        self.skip_ws();
        let at_style = if self.rest.starts_with("@prefix") {
            for _ in 0.."@prefix".len() {
                self.bump();
            }
            true
        } else if self
            .rest
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("PREFIX"))
        {
            for _ in 0..6 {
                self.bump();
            }
            false
        } else if self.rest.starts_with("@base")
            || self
                .rest
                .get(..4)
                .is_some_and(|h| h.eq_ignore_ascii_case("BASE"))
        {
            return Err(self.err("@base is outside the supported Turtle subset; use absolute IRIs"));
        } else {
            return Ok(false);
        };
        self.skip_ws();
        let end = self
            .rest
            .find(':')
            .ok_or_else(|| self.err("expected 'prefix:' in @prefix directive"))?;
        let prefix = self.rest[..end].trim().to_owned();
        if prefix.contains(char::is_whitespace) {
            return Err(self.err("malformed prefix name"));
        }
        self.rest = &self.rest[end + 1..];
        self.skip_ws();
        let ns = self.iri_ref()?;
        self.prefixes.insert(prefix, ns);
        if at_style {
            self.skip_ws();
            self.expect('.')?;
        } else {
            // SPARQL-style PREFIX takes no dot; tolerate one for robustness.
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
            }
        }
        Ok(true)
    }
}

/// Parses a Turtle document (see module docs for the supported subset),
/// interning terms into `dict` and inserting encoded triples into `graph`.
/// Returns the number of triples parsed.
pub fn parse_turtle(
    input: &str,
    dict: &mut Dictionary,
    graph: &mut Graph,
) -> Result<usize, ParseError> {
    let mut p = Parser::new(input);
    let mut count = 0;
    loop {
        p.skip_ws();
        if p.rest.is_empty() {
            return Ok(count);
        }
        if p.directive()? {
            continue;
        }
        // triples: subject predicateObjectList '.'
        let subject = p.term(false)?;
        let s_id = dict.encode(&subject);
        loop {
            let pred = p.predicate()?;
            if !pred.is_iri() {
                return Err(p.err("property must be an IRI"));
            }
            let p_id = dict.encode(&pred);
            loop {
                let object = p.term(true)?;
                graph.insert(Triple::new(s_id, p_id, dict.encode(&object)));
                count += 1;
                p.skip_ws();
                if p.peek() == Some(',') {
                    p.bump();
                } else {
                    break;
                }
            }
            p.skip_ws();
            match p.peek() {
                Some(';') => {
                    p.bump();
                    p.skip_ws();
                    // Tolerate a dangling ';' before '.' as real Turtle does.
                    if p.peek() == Some('.') {
                        p.bump();
                        break;
                    }
                }
                Some('.') => {
                    p.bump();
                    break;
                }
                other => return Err(p.err(format!("expected ';' or '.', found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Pattern;

    fn parse(input: &str) -> Result<(Dictionary, Graph), ParseError> {
        let mut d = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(input, &mut d, &mut g)?;
        Ok((d, g))
    }

    #[test]
    fn prefixes_and_qnames() {
        let (d, g) = parse(
            "@prefix ex: <http://example.org/> .\n\
             ex:Anne ex:hasFriend ex:Marie .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        assert!(d.get_iri_id("http://example.org/Anne").is_some());
        assert!(d.get_iri_id("http://example.org/hasFriend").is_some());
    }

    #[test]
    fn sparql_style_prefix() {
        let (_, g) = parse(
            "PREFIX ex: <http://example.org/>\n\
             ex:a ex:p ex:b .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn prefix_named_a_is_not_the_type_keyword() {
        // regression: `a:p` is a prefixed name, not keyword `a` + `:p`
        let (d, g) = parse("@prefix a: <http://a.example/> .\na:r1 a:locatedIn a:paris .").unwrap();
        assert_eq!(g.len(), 1);
        assert!(d.get_iri_id("http://a.example/locatedIn").is_some());
        assert!(d.get_iri_id(vocab::RDF_TYPE).is_none());
    }

    #[test]
    fn a_keyword_expands_to_rdf_type() {
        let (d, g) = parse(
            "@prefix ex: <http://ex/> .\n\
             ex:Anne a ex:Person .",
        )
        .unwrap();
        let ty = d.get_iri_id(vocab::RDF_TYPE).unwrap();
        assert_eq!(g.count(&Pattern::new(None, Some(ty), None)), 1);
    }

    #[test]
    fn predicate_and_object_lists() {
        let (d, g) = parse(
            "@prefix ex: <http://ex/> .\n\
             ex:a ex:p ex:b , ex:c ; ex:q ex:d ; a ex:T .",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        let a = d.get_iri_id("http://ex/a").unwrap();
        assert_eq!(g.count(&Pattern::new(Some(a), None, None)), 4);
    }

    #[test]
    fn numeric_and_boolean_literals() {
        let (d, g) = parse(
            "@prefix ex: <http://ex/> .\n\
             ex:a ex:int 42 ; ex:neg -7 ; ex:dec 3.14 ; ex:dbl 1.0e3 ; ex:t true ; ex:f false .",
        )
        .unwrap();
        assert_eq!(g.len(), 6);
        assert!(d
            .get_id(&Term::Literal(Literal::typed("42", vocab::XSD_INTEGER)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("-7", vocab::XSD_INTEGER)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("3.14", vocab::XSD_DECIMAL)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("1.0e3", vocab::XSD_DOUBLE)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("true", vocab::XSD_BOOLEAN)))
            .is_some());
    }

    #[test]
    fn string_literals_with_lang_and_datatype() {
        let (d, _) = parse(
            "@prefix ex: <http://ex/> .\n\
             @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:a ex:p \"plain\" ; ex:q \"hi\"@en ; ex:r \"5\"^^xsd:integer ; ex:s \"x\"^^<http://dt> .",
        )
        .unwrap();
        assert!(d.get_id(&Term::literal("plain")).is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::lang("hi", "en")))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("5", vocab::XSD_INTEGER)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("x", "http://dt")))
            .is_some());
    }

    #[test]
    fn blank_node_labels() {
        let (d, g) = parse("@prefix ex: <http://ex/> .\n_:x ex:p _:y .").unwrap();
        assert!(d.get_id(&Term::blank("x")).is_some());
        assert!(d.get_id(&Term::blank("y")).is_some());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_anywhere() {
        let (_, g) =
            parse("# header\n@prefix ex: <http://ex/> . # ns\nex:a ex:p ex:b . # done").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn multiline_statements() {
        let (_, g) =
            parse("@prefix ex: <http://ex/> .\nex:a\n  ex:p ex:b ;\n  ex:q ex:c ,\n        ex:d .")
                .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse("ex:a ex:p ex:b .").unwrap_err();
        assert!(err.message.contains("unknown prefix"), "{err}");
    }

    #[test]
    fn unsupported_constructs_are_rejected_clearly() {
        for (src, needle) in [
            (
                "@prefix ex: <http://ex/> .\nex:a ex:p [ ex:q ex:b ] .",
                "anonymous blank nodes",
            ),
            (
                "@prefix ex: <http://ex/> .\nex:a ex:p ( ex:b ) .",
                "collections",
            ),
            ("@base <http://ex/> .", "@base"),
            (
                "@prefix ex: <http://ex/> .\nex:a ex:p \"\"\"triple\"\"\" .",
                "triple-quoted",
            ),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.message.contains(needle), "want {needle:?} in {err}");
        }
    }

    #[test]
    fn error_line_numbers_track_newlines() {
        let err = parse("@prefix ex: <http://ex/> .\n\n\nex:a ex:p ??? .").unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let (_, g) = parse("@prefix ex: <http://ex/> .\nex:a ex:p ex:b ; .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn dangling_statement_is_error() {
        assert!(parse("@prefix ex: <http://ex/> .\nex:a ex:p ex:b").is_err());
        assert!(parse("@prefix ex: <http://ex/> .\nex:a ex:p .").is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The Turtle parser never panics, whatever bytes arrive.
            #[test]
            fn parser_total_on_arbitrary_input(input in "\\PC{0,200}") {
                let mut d = Dictionary::new();
                let mut g = Graph::new();
                let _ = parse_turtle(&input, &mut d, &mut g);
            }

            /// …including inputs seeded with Turtle punctuation.
            #[test]
            fn parser_total_on_turtle_like_input(
                body in "[@a-z:<>\"';,.() \\n]{0,120}",
            ) {
                let mut d = Dictionary::new();
                let mut g = Graph::new();
                let _ = parse_turtle(&format!("@prefix ex: <http://ex/> .\n{body}"), &mut d, &mut g);
            }
        }
    }

    #[test]
    fn figure1_statements_from_the_paper() {
        // The running example of §II-A: domain typing entails Anne's type.
        let (d, g) = parse(
            "@prefix : <http://example.org/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             :hasFriend rdfs:domain :Person .\n\
             :Anne :hasFriend :Marie .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        let dom = d.get_iri_id(vocab::RDFS_DOMAIN).unwrap();
        assert_eq!(g.count(&Pattern::new(None, Some(dom), None)), 1);
    }
}
