//! Socket-level integration suite: a real `TcpStream` client against a
//! real ephemeral-port server, covering the round-trips, the 4xx
//! robustness contract, queue backpressure, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig};
use webreason_server::{Backend, Server, ServerConfig};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(name: &str, config: ServerConfig) -> Server {
    boot_reasoning(
        name,
        config,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
    )
}

fn boot_reasoning(name: &str, config: ServerConfig, reasoning: ReasoningConfig) -> Server {
    let store = DurableStore::create(
        tmpdir(name),
        reasoning,
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("store creates");
    Server::start(store, config).expect("server boots")
}

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        ..Default::default()
    }
}

/// Sends raw bytes, reads to EOF, returns (status, whole response text).
fn raw_round_trip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    stream.write_all(raw).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, raw.as_bytes())
}

fn post_with_strategy(addr: SocketAddr, body: &str, strategy: &str) -> (u16, String) {
    let raw = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         X-Webreason-Strategy: {strategy}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

/// Reads exactly one response off a keep-alive connection (head, then
/// `Content-Length` bytes of body) without waiting for EOF.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut tmp).expect("response head reads");
        assert!(n > 0, "EOF before a full response head: {buf:?}");
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let clen: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().expect("content-length parses"))
        })
        .unwrap_or(0);
    while buf.len() < head_end + clen {
        let n = stream.read(&mut tmp).expect("response body reads");
        assert!(n > 0, "EOF mid-body");
        buf.extend_from_slice(&tmp[..n]);
    }
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    (
        status,
        String::from_utf8_lossy(&buf[..head_end + clen]).to_string(),
    )
}

/// Pulls one counter/gauge value out of a `/metrics` scrape.
fn metric_value(addr: SocketAddr, name: &str) -> u64 {
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    text.lines()
        .find_map(|l| {
            let v = l.strip_prefix(name)?;
            if !v.starts_with(' ') {
                return None; // a longer metric name sharing this prefix
            }
            Some(v.trim().parse().expect("metric parses"))
        })
        .unwrap_or_else(|| panic!("{name} missing from scrape"))
}

const COUNT_MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

#[test]
fn query_update_metrics_round_trip() {
    let server = boot("round-trip", ephemeral());
    let addr = server.local_addr();

    let (status, text) = get(addr, "/health");
    assert_eq!(status, 200, "{text}");

    // Empty store answers empty.
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Schema + instance through /update: entailment shows in /query.
    let (status, text) = post(
        addr,
        "/update",
        "# zoo\n\
         insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .\n\
         insert <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"accepted\":2"), "{text}");

    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("<http://ex/Tom>"), "entailed answer: {text}");

    // Delete retracts the entailment.
    let (status, text) = post(
        addr,
        "/update",
        "delete <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200);
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Metrics reflect the traffic and stay machine-readable.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let body = text.split("\r\n\r\n").nth(1).expect("metrics body");
    obs::lint_prometheus_text(body).expect("prometheus output lints");
    assert!(
        body.contains("webreason_server_query_requests_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_applied_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_queue_capacity"),
        "{body}"
    );

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 1, "schema triple remains");
}

#[test]
fn strategy_header_selects_interval_and_rejects_unservable_names() {
    let server = boot_reasoning("strategy-header", ephemeral(), ReasoningConfig::Interval);
    let addr = server.local_addr();

    let (status, text) = post(
        addr,
        "/update",
        "insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .\n\
         insert <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");

    // The store's own configuration answers through interval rewriting.
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("<http://ex/Tom>"), "{text}");
    assert!(text.contains("\"range_scans\""), "interval stats: {text}");

    // Explicit per-query overrides: every rewriting strategy answers
    // identically on the same snapshot.
    for strategy in ["interval", "reformulation", "backward-chaining"] {
        let (status, text) = post_with_strategy(addr, COUNT_MAMMALS, strategy);
        assert_eq!(status, 200, "{strategy}: {text}");
        assert!(text.contains("<http://ex/Tom>"), "{strategy}: {text}");
    }

    // Saturation needs a materialised G∞ this configuration never builds,
    // and unknown names are refused outright — both as a clean 400.
    for strategy in ["saturation", "bogus"] {
        let (status, text) = post_with_strategy(addr, COUNT_MAMMALS, strategy);
        assert_eq!(status, 400, "{strategy}: {text}");
        assert!(text.contains("bad_strategy"), "{strategy}: {text}");
    }
    assert!(metric_value(addr, "webreason_server_query_bad_strategy_total") >= 2);

    server.shutdown();
}

#[test]
fn malformed_inputs_get_4xx_without_killing_workers() {
    let server = boot("malformed", ephemeral());
    let addr = server.local_addr();

    // Garbage request line.
    let (status, _) = raw_round_trip(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // Smuggling attempt: both framings at once.
    let (status, _) = raw_round_trip(
        addr,
        b"POST /update HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 400);
    // Unknown path / wrong method.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/query");
    assert_eq!(status, 405);
    // Malformed SPARQL and malformed update script.
    let (status, text) = post(addr, "/query", "SELECT WHERE garbage {{{");
    assert_eq!(status, 400, "{text}");
    let (status, text) = post(addr, "/update", "upsert <a> <b> <c> .");
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("line 1"), "{text}");

    // After all of that the workers still serve.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");

    drop(server.shutdown());
}

#[test]
fn oversized_bodies_are_rejected_not_buffered() {
    let mut config = ephemeral();
    config.limits.max_body_bytes = 256;
    let server = boot("oversized", config);
    let addr = server.local_addr();

    let big = "x".repeat(1024);
    let (status, _) = post(addr, "/query", &big);
    assert_eq!(status, 413);

    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200, "server survives oversized bodies");
    drop(server.shutdown());
}

#[test]
fn full_update_queue_backpressures_with_429() {
    let mut config = ephemeral();
    config.threads = 4;
    config.update_queue = 1;
    config.retry_after_secs = 7;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("backpressure", config);
    let addr = server.local_addr();

    let insert = |i: usize| format!("insert <http://ex/s{i}> <http://ex/p> <http://ex/o> .\n");
    // A occupies the writer (sleeping in the delay hook); B fills the
    // one-slot queue. Both run on their own threads because they block
    // until applied.
    let a = {
        let body = insert(0);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));
    let b = {
        let body = insert(1);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));

    // C finds the queue full: 429 + Retry-After, immediately.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("Retry-After: 7"), "{text}");

    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "{text}");
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 200, "{text}");

    // Queue drained: the retried update now lands.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 200, "{text}");

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 3, "A, B and the retried C");
}

#[test]
fn graceful_shutdown_serves_parsed_requests_and_503s_partial_ones() {
    let mut config = ephemeral();
    config.threads = 2;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("shutdown", config);
    let addr = server.local_addr();

    // P parks one worker on a forever-incomplete request.
    let mut partial = TcpStream::connect(addr).expect("connects");
    partial
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    partial
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-prefix")
        .expect("partial writes");
    std::thread::sleep(Duration::from_millis(50));

    // A's update is in flight: the other worker blocks on the writer.
    let a = std::thread::spawn(move || {
        post(
            addr,
            "/update",
            "insert <http://ex/s> <http://ex/p> <http://ex/o> .\n",
        )
    });
    std::thread::sleep(Duration::from_millis(100));

    // B's query is fully received but still waiting for a free worker.
    let b = std::thread::spawn(move || post(addr, "/query", COUNT_MAMMALS));
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown begins while A is mid-apply, B is received-but-undispatched
    // and P is incomplete.
    let shut = std::thread::spawn(move || server.shutdown());

    // In-flight work completes: A's journaled update is acknowledged.
    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "in-flight update drains: {text}");
    // B's request was fully received before the flag — the drain contract
    // says *serve* it, not 503 it.
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 200, "fully-received request is served: {text}");
    assert!(text.contains("Connection: close"), "{text}");
    // The half-request can never complete: clean 503 + explicit close.
    let mut text = String::new();
    partial.read_to_string(&mut text).expect("partial reads");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    let store = shut.join().expect("shutdown returns");
    assert_eq!(store.stats().base_triples, 1, "A's triple survived");
}

#[test]
fn http10_closes_by_default_and_keep_alive_opts_in() {
    let server = boot("http10", ephemeral());
    let addr = server.local_addr();

    // A 1.0 request without a Connection header must close after the
    // response (the client would otherwise hang waiting for EOF) and say
    // so explicitly.
    let (status, text) = raw_round_trip(addr, b"GET /health HTTP/1.0\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert_eq!(text.matches("HTTP/1.1 200").count(), 1, "{text}");

    // Explicit keep-alive persists: two 1.0 requests on one connection,
    // the second falling back to the close-by-default.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let keep = "GET /health HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
    let last = "GET /health HTTP/1.0\r\nHost: t\r\n\r\n";
    stream
        .write_all(format!("{keep}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");

    drop(server.shutdown());
}

#[test]
fn invalid_script_line_rejects_the_whole_batch_atomically() {
    let server = boot("atomic", ephemeral());
    let addr = server.local_addr();
    let dir = std::env::temp_dir().join(format!("webreason-server-atomic-{}", std::process::id()));
    let reader = server.reader();

    // Pre-state: one acknowledged triple.
    let (status, _) = post(
        addr,
        "/update",
        "insert <http://ex/pre> <http://ex/p> <http://ex/o> .\n",
    );
    assert_eq!(status, 200);
    let journal_before =
        std::fs::read(dir.join(webreason_core::durable::JOURNAL_FILE)).expect("journal reads");
    let epoch_before = reader.snapshot().epoch();

    // A script whose third line cannot decode: 400, and the valid prefix
    // must NOT apply — the batch is atomic.
    let (status, text) = post(
        addr,
        "/update",
        "insert <http://ex/part1> <http://ex/p> <http://ex/o> .\n\
         insert <http://ex/part2> <http://ex/p> <http://ex/o> .\n\
         frobnicate <http://ex/part3> <http://ex/p> <http://ex/o> .\n",
    );
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("line 3"), "{text}");

    // No state change anywhere: the journal is bit-identical, no new
    // epoch was ever published, and a reader sees none of the script.
    let journal_after =
        std::fs::read(dir.join(webreason_core::durable::JOURNAL_FILE)).expect("journal reads");
    assert_eq!(journal_before, journal_after, "journal untouched");
    assert_eq!(reader.snapshot().epoch(), epoch_before, "no publish");
    let q = "PREFIX ex: <http://ex/> SELECT ?o WHERE { ex:part1 ex:p ?o }";
    let (sols, _, _) = reader.answer_sparql(q).expect("query answers");
    assert_eq!(sols.len(), 0, "rejected script is invisible to readers");

    // Recovery of the journal equals the pre-request state.
    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 1, "only the pre-state triple");
    let rec = webreason_core::Store::recover(&dir).expect("recovers");
    assert_eq!(rec.export_ntriples(), store.store().export_ntriples());
}

#[test]
fn keep_alive_and_pipelining_serve_multiple_requests_per_connection() {
    let server = boot("keepalive", ephemeral());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    // Two pipelined health checks, then a closing one.
    let one = "GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let last = "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream
        .write_all(format!("{one}{one}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 3, "{text}");

    drop(server.shutdown());
}

// --- reactor robustness -------------------------------------------------

#[test]
fn slowloris_headers_are_reaped_without_stalling_others() {
    let mut config = ephemeral();
    config.idle_timeout = Duration::from_millis(300);
    let server = boot("slowloris", config);
    let addr = server.local_addr();

    // The attacker trickles header bytes forever, one at a time, never
    // sending the blank line. The read-phase deadline is armed at the
    // first byte and must NOT slide on progress — so this connection dies
    // ~300ms in, however diligently it drips.
    let attacker = std::thread::spawn(move || {
        let mut slow = TcpStream::connect(addr).expect("connects");
        let doc = b"GET /health HTTP/1.1\r\nX-Slow: aaaaaaaa\r\n";
        for i in 0..200 {
            if slow.write_all(&[doc[i % doc.len()]]).is_err() {
                return true; // reaped: the server reset us
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        false
    });

    // Meanwhile everyone else is served normally.
    for _ in 0..4 {
        let (status, text) = get(addr, "/health");
        assert_eq!(status, 200, "victim starved by a slowloris: {text}");
        std::thread::sleep(Duration::from_millis(50));
    }

    assert!(
        attacker.join().expect("attacker thread"),
        "slowloris connection was never reaped"
    );
    assert!(
        metric_value(addr, "webreason_server_reactor_reaped_total") >= 1,
        "reap not visible in metrics"
    );
    drop(server.shutdown());
}

/// Caps a socket's kernel receive buffer so a stalled reader's window
/// stays small and the server genuinely blocks on the write.
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let sz: i32 = 16 * 1024;
    let rc = unsafe { setsockopt(stream.as_raw_fd(), SOL_SOCKET, SO_RCVBUF, &sz, 4) };
    assert_eq!(rc, 0, "SO_RCVBUF sets");
}

#[test]
fn stalled_reader_of_a_large_response_is_reaped() {
    let mut config = ephemeral();
    config.idle_timeout = Duration::from_millis(400);
    let server = boot("stalled-reader", config);
    let addr = server.local_addr();

    // Stage a response far larger than any socket buffering: 400 triples
    // sharing one object make a 400×400 self-join (~160k rows, ~11MB) —
    // the server must park in the write phase waiting for a reader that
    // never comes back.
    let mut script = String::new();
    for i in 0..400 {
        script.push_str(&format!(
            "insert <http://ex/s{i}> <http://ex/p> <http://ex/hub> .\n"
        ));
    }
    let (status, text) = post(addr, "/update", &script);
    assert_eq!(status, 200, "{text}");

    let mut stalled = TcpStream::connect(addr).expect("connects");
    shrink_rcvbuf(&stalled);
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let q = "SELECT ?a ?b WHERE { ?a <http://ex/p> ?h . ?b <http://ex/p> ?h }";
    stalled
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            )
            .as_bytes(),
        )
        .expect("query writes");

    // ...and then never reads. The write-phase deadline is armed when the
    // response starts flowing and holds while the reader stalls. Wait for
    // this server's own gauge to confirm the reap: once the stalled
    // connection dies, the only open connection is the scrape itself.
    let t0 = Instant::now();
    loop {
        let open = metric_value(addr, "webreason_server_open_connections");
        if open <= 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "stalled reader never reaped ({open} connections still open)"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Other clients were never blocked behind the stalled writer.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);

    // Drain whatever made it through: the connection must be dead
    // mid-response, short of the advertised Content-Length.
    let mut buf = Vec::new();
    let _ = stalled.read_to_end(&mut buf); // reset mid-read is also fine
    let text = String::from_utf8_lossy(&buf);
    let head_end = text.find("\r\n\r\n").map(|i| i + 4).unwrap_or(buf.len());
    let clen: usize = text
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().unwrap())
        })
        .expect("response head made it into the buffers");
    assert!(
        buf.len() < head_end + clen,
        "read {} of {} body bytes — the stalled reader was never reaped",
        buf.len() - head_end,
        clen
    );
    drop(server.shutdown());
}

#[test]
fn connection_limit_refuses_excess_with_503() {
    let mut config = ephemeral();
    config.max_conns = 2;
    let server = boot("conn-limit", config);
    let addr = server.local_addr();

    // Two keep-alive connections occupy the table...
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).expect("connects");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("request writes");
        let (status, _) = read_one_response(&mut s);
        assert_eq!(status, 200);
        held.push(s);
    }

    // ...so the third is refused at accept with an explicit 503.
    let mut third = TcpStream::connect(addr).expect("connects");
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let mut text = String::new();
    third.read_to_string(&mut text).expect("refusal reads");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("connection limit"), "{text}");

    // Releasing a slot readmits new clients.
    drop(held.pop());
    let mut ok = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        let mut s = TcpStream::connect(addr).expect("connects");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("request writes");
        let mut text = String::new();
        s.read_to_string(&mut text).expect("response reads");
        if text.starts_with("HTTP/1.1 200") {
            ok = true;
            break;
        }
    }
    assert!(ok, "freed slot never readmitted a client");
    drop(server.shutdown());
}

#[test]
fn reactor_answers_429_immediately_while_the_writer_is_busy() {
    let mut config = ephemeral();
    config.threads = 4;
    config.update_queue = 1;
    config.retry_after_secs = 3;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("reactor-429", config);
    let addr = server.local_addr();

    let insert = |i: usize| format!("insert <http://ex/r{i}> <http://ex/p> <http://ex/o> .\n");
    let a = {
        let body = insert(0);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));
    let b = {
        let body = insert(1);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));

    // The writer is parked in its 400ms delay hook and the queue is full.
    // The reactor must answer 429 from a CPU worker without ever touching
    // the writer — i.e. well inside the writer's delay.
    let t0 = Instant::now();
    let (status, text) = post(addr, "/update", &insert(2));
    let elapsed = t0.elapsed();
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("Retry-After: 3"), "{text}");
    assert!(
        elapsed < Duration::from_millis(300),
        "429 took {elapsed:?} — the reactor path blocked behind the writer"
    );

    let (status, _) = a.join().expect("client A");
    assert_eq!(status, 200);
    let (status, _) = b.join().expect("client B");
    assert_eq!(status, 200);
    drop(server.shutdown());
}

#[test]
fn shutdown_closes_idle_keep_alive_connections_promptly() {
    let server = boot("shutdown-idle", ephemeral());
    let addr = server.local_addr();

    let mut idle = TcpStream::connect(addr).expect("connects");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    idle.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request writes");
    let (status, _) = read_one_response(&mut idle);
    assert_eq!(status, 200);

    // An idle keep-alive connection owes the server nothing; shutdown
    // must not wait out the idle timeout (10s here) to drain it.
    let t0 = Instant::now();
    drop(server.shutdown());
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "shutdown hung {:?} on an idle connection",
        t0.elapsed()
    );
    let mut rest = String::new();
    idle.read_to_string(&mut rest).expect("EOF reads");
    assert!(rest.is_empty(), "unexpected bytes after shutdown: {rest}");
}

// --- backend parity -----------------------------------------------------

#[test]
fn threaded_backend_still_serves_round_trips() {
    let mut config = ephemeral();
    config.backend = Backend::Threaded;
    let server = boot("threaded-parity", config);
    let addr = server.local_addr();

    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    let (status, text) = post(
        addr,
        "/update",
        "insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .\n\
         insert <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("<http://ex/Tom>"), "{text}");

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 2);
}

#[test]
fn poll_fallback_serves_round_trips() {
    let mut config = ephemeral();
    config.force_poll = true;
    let server = boot("poll-fallback", config);
    let addr = server.local_addr();

    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);

    // Keep-alive pipelining works identically under poll(2).
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let one = "GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let last = "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream
        .write_all(format!("{one}{one}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 3, "{text}");

    drop(server.shutdown());
}
