//! Parallel saturation — the paper's §II-D open issue ("efficiently
//! maintaining RDF graph saturation, especially in a distributed setting";
//! "As memory sizes grow larger, in-memory RDF reasoning is also
//! attracting interest"), in the style of its ref. \[29\] (Motik et al.,
//! *Parallel materialisation of datalog programs in centralised,
//! main-memory RDF systems*).
//!
//! The schema-closure-specialised saturation of [`crate::saturate`] is
//! embarrassingly parallel in its instance pass: once the (small) schema
//! is closed, each base triple's consequence set is independent. The
//! parallel engine therefore:
//!
//! 1. extracts and closes the schema (serial — the schema is tiny);
//! 2. partitions the base instance triples across worker threads, each
//!    deriving consequences into a thread-local buffer against the shared
//!    read-only closed schema;
//! 3. merges the buffers into the output graph (serial — insertion into
//!    the shared indexes is the contended step a lock-free store would
//!    parallelise further; the split lets the benchmark report the
//!    derive/merge ratio).

use crate::saturation::{derive_instance_consequences, SaturationResult, SaturationStats};
use crate::schema::Schema;
use rdf_model::{Graph, Triple, Vocab};
use rustc_hash::{FxHashMap, FxHashSet};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Computes `G∞` with `threads` worker threads for the derive phase.
///
/// Produces exactly the same graph as [`crate::saturate`] (asserted by the
/// test suite). Each worker deduplicates its derivations locally before the
/// serial merge. `stats.rule_firings` records, besides the derivation
/// counts (`"parallel-derived"`, `"parallel-new"`), the wall-clock of the
/// two phases in microseconds (`"derive-us"`, `"merge-us"`) — the
/// derive/merge split is the Amdahl bound a lock-free index (the paper's
/// ref. \[29\]) would attack, and the A-PAR experiment reports it.
pub fn saturate_parallel(g: &Graph, vocab: &Vocab, threads: NonZeroUsize) -> SaturationResult {
    let threads = threads.get();
    let schema = Schema::extract(g, vocab);

    let mut out = g.clone();
    for t in schema.closed_triples(vocab) {
        out.insert(t);
    }

    // Partition the base triples across workers; each deduplicates locally.
    let derive_start = Instant::now();
    let base: Vec<Triple> = g.iter().collect();
    let chunk = base.len().div_ceil(threads.max(1)).max(1);
    let buffers: Vec<FxHashSet<Triple>> = std::thread::scope(|scope| {
        let schema = &schema;
        let handles: Vec<_> = base
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut local = FxHashSet::with_capacity_and_hasher(
                        part.len() * 2,
                        Default::default(),
                    );
                    for t in part {
                        derive_instance_consequences(t, vocab, schema, |_, c| {
                            local.insert(c);
                        });
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });
    let derive_us = derive_start.elapsed().as_micros() as u64;

    let merge_start = Instant::now();
    let mut derived_raw = 0u64;
    let mut inferred = 0u64;
    for buffer in buffers {
        derived_raw += buffer.len() as u64;
        for c in buffer {
            if out.insert(c) {
                inferred += 1;
            }
        }
    }
    let merge_us = merge_start.elapsed().as_micros() as u64;

    let mut rule_firings: FxHashMap<&'static str, u64> = FxHashMap::default();
    rule_firings.insert("parallel-derived", derived_raw);
    rule_firings.insert("parallel-new", inferred);
    rule_firings.insert("derive-us", derive_us);
    rule_firings.insert("merge-us", merge_us);
    let stats = SaturationStats {
        input_triples: g.len(),
        output_triples: out.len(),
        inferred: out.len() - g.len(),
        passes: 1,
        rule_firings,
    };
    SaturationResult { graph: out, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturate;
    use rdf_model::{Dictionary, TermId};

    fn fixture() -> (Graph, Vocab) {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        let mut id = |n: String| dict.encode_iri(&format!("http://ex/{n}"));
        let mut g = Graph::new();
        // a 4-level class chain, 2 property chains with domains/ranges
        let classes: Vec<TermId> = (0..6).map(|i| id(format!("C{i}"))).collect();
        for w in classes.windows(2) {
            g.insert(Triple::new(w[0], vocab.sub_class_of, w[1]));
        }
        let props: Vec<TermId> = (0..4).map(|i| id(format!("p{i}"))).collect();
        g.insert(Triple::new(props[0], vocab.sub_property_of, props[1]));
        g.insert(Triple::new(props[1], vocab.domain, classes[1]));
        g.insert(Triple::new(props[2], vocab.range, classes[2]));
        for i in 0..200 {
            let s = id(format!("n{i}"));
            let o = id(format!("n{}", (i * 7) % 200));
            g.insert(Triple::new(s, props[i % 4], o));
            if i % 3 == 0 {
                g.insert(Triple::new(s, vocab.rdf_type, classes[i % 3]));
            }
        }
        (g, vocab)
    }

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let (g, vocab) = fixture();
        let sequential = saturate(&g, &vocab);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(threads).unwrap());
            assert_eq!(par.graph, sequential.graph, "{threads} threads");
            assert_eq!(par.stats.inferred, sequential.stats.inferred);
        }
    }

    #[test]
    fn empty_graph() {
        let mut d = Dictionary::new();
        let vocab = Vocab::intern(&mut d);
        let par = saturate_parallel(&Graph::new(), &vocab, NonZeroUsize::new(4).unwrap());
        assert!(par.graph.is_empty());
    }

    #[test]
    fn more_threads_than_triples() {
        let mut d = Dictionary::new();
        let vocab = Vocab::intern(&mut d);
        let a = d.encode_iri("http://ex/a");
        let b = d.encode_iri("http://ex/b");
        let mut g = Graph::new();
        g.insert(Triple::new(a, vocab.sub_class_of, b));
        let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(64).unwrap());
        assert_eq!(par.graph, saturate(&g, &vocab).graph);
    }

    #[test]
    fn stats_record_raw_derivations() {
        let (g, vocab) = fixture();
        let par = saturate_parallel(&g, &vocab, NonZeroUsize::new(2).unwrap());
        let raw = par.stats.rule_firings["parallel-derived"];
        let new = par.stats.rule_firings["parallel-new"];
        assert!(raw >= new, "raw {raw} >= deduped {new}");
        // inferred = instance derivations + schema-closure triples
        assert!(par.stats.inferred >= new as usize);
        assert_eq!(par.stats.inferred, par.graph.len() - g.len());
    }
}
