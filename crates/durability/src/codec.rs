//! The compact binary codec shared by journal records and checkpoints.
//!
//! Primitives are little-endian and length-prefixed; no padding, no
//! self-description. [`Term`]s serialise as a tag byte plus their string
//! parts, [`Triple`]s as three `u32` dictionary ids. Decoding is strict:
//! any out-of-bounds length, unknown tag or trailing garbage is a
//! [`CodecError`] — corrupt bytes must never panic or silently decode.

use rdf_model::{Literal, Term, TermId, Triple};
use std::fmt;

/// A structural decoding failure (after the checksum already passed, this
/// means a logic error or deliberate tampering; before it, torn bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset within the buffer being decoded.
    pub offset: usize,
    /// What was being decoded when the bytes ran out or made no sense.
    pub what: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for CodecError {}

/// Appends primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a term: tag byte + string parts.
    pub fn term(&mut self, t: &Term) {
        match t {
            Term::Iri(iri) => {
                self.u8(0);
                self.str(iri);
            }
            Term::BlankNode(label) => {
                self.u8(1);
                self.str(label);
            }
            Term::Literal(lit) => match (lit.language(), lit.datatype()) {
                (None, None) => {
                    self.u8(2);
                    self.str(lit.lexical());
                }
                (Some(tag), _) => {
                    self.u8(3);
                    self.str(lit.lexical());
                    self.str(tag);
                }
                (None, Some(dt)) => {
                    self.u8(4);
                    self.str(lit.lexical());
                    self.str(dt);
                }
            },
        }
    }

    /// Writes a triple as three dictionary-id indexes.
    pub fn triple(&mut self, t: &Triple) {
        self.u32(t.s.index() as u32);
        self.u32(t.p.index() as u32);
        self.u32(t.o.index() as u32);
    }
}

/// Reads primitives back out of a byte buffer, tracking its offset.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, what: &'static str) -> CodecError {
        CodecError {
            offset: self.pos,
            what,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err(what))?;
        if end > self.buf.len() {
            return Err(self.err(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| self.err(what))
    }

    /// Reads a term.
    pub fn term(&mut self) -> Result<Term, CodecError> {
        match self.u8("term tag")? {
            0 => Ok(Term::Iri(self.str("iri")?.into())),
            1 => Ok(Term::BlankNode(self.str("blank label")?.into())),
            2 => Ok(Term::Literal(Literal::plain(self.str("literal")?))),
            3 => {
                let lexical = self.str("literal")?.to_owned();
                let tag = self.str("language tag")?;
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            }
            4 => {
                let lexical = self.str("literal")?.to_owned();
                let dt = self.str("datatype")?.to_owned();
                Ok(Term::Literal(Literal::typed(lexical, dt)))
            }
            _ => Err(self.err("term tag")),
        }
    }

    /// Reads a triple of dictionary-id indexes.
    pub fn triple(&mut self) -> Result<Triple, CodecError> {
        let s = self.u32("triple subject")?;
        let p = self.u32("triple property")?;
        let o = self.u32("triple object")?;
        Ok(Triple::new(
            TermId::from_index(s as usize),
            TermId::from_index(p as usize),
            TermId::from_index(o as usize),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_round_trip() {
        let terms = [
            Term::iri("http://ex/a"),
            Term::blank("b0"),
            Term::literal("plain"),
            Term::Literal(Literal::lang("chat", "FR")),
            Term::Literal(Literal::typed(
                "1",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
        ];
        let mut enc = Encoder::new();
        for t in &terms {
            enc.term(t);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for t in &terms {
            assert_eq!(&dec.term().unwrap(), t);
        }
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncation_and_bad_tags_error_cleanly() {
        let mut enc = Encoder::new();
        enc.term(&Term::iri("http://ex/long-enough-to-truncate"));
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(dec.term().is_err(), "cut at {cut}");
        }
        let mut dec = Decoder::new(&[9u8, 0, 0, 0, 0]);
        assert!(dec.term().is_err(), "unknown tag");
        // a length prefix pointing past the end of the buffer
        let mut dec = Decoder::new(&[0u8, 0xFF, 0xFF, 0xFF, 0xFF, b'x']);
        assert!(dec.term().is_err(), "oversized length");
    }
}
