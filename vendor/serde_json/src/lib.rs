//! Vendored minimal `serde_json` (the container has no network access to
//! crates.io). Serialization only — the workspace never deserialises JSON.
//! Rides on the vendored `serde::Serialize` trait, which writes compact
//! JSON directly; pretty-printing reformats that compact output.

use std::fmt;

/// Serialization error. The vendored writer is infallible, so this is only
/// here to keep `to_string(..) -> Result<..>` signatures source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent, like
/// upstream serde_json's default pretty formatter).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Reformats compact JSON with newlines and two-space indentation.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_round_trip_shapes() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1, 2]);
        m.insert("b".to_string(), vec![]);
        assert_eq!(to_string(&m).unwrap(), r#"{"a":[1,2],"b":[]}"#);
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let mut m = BTreeMap::new();
        m.insert("k{1}".to_string(), "v,\":".to_string());
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"k{1}\": \"v,\\\":\"\n}");
    }
}
