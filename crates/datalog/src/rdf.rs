//! The RDF → Datalog translation (§II-D).
//!
//! An RDF graph becomes a single ternary relation `t(s, p, o)`; the RDFS
//! entailment rules become Datalog rules over it, with the RDFS built-in
//! property ids appearing as constants. Saturation is then the engine's
//! generic fix-point — no RDF-specific code in the hot loop, which is
//! exactly the trade-off (generality vs. specialisation) experiment
//! A-DATALOG quantifies against `rdfs::saturate`.

use crate::engine::{fixpoint, Atom, Database, DlTerm, FixpointStats, Program, Rule};
use rdf_model::{Graph, Triple, Vocab};

/// The predicate symbol of the triple relation `t(s, p, o)`.
pub const TRIPLE: u32 = 0;

fn t(args: [DlTerm; 3]) -> Atom {
    Atom::new(TRIPLE, args)
}

/// The RDFS entailment rules as a Datalog program (Fig. 2 rules plus the
/// schema-closure rules, as in `rdfs::rules`).
pub fn rdfs_program(vocab: &Vocab) -> Program {
    use DlTerm::{Const, Var};
    let ty = Const(vocab.rdf_type);
    let sc = Const(vocab.sub_class_of);
    let sp = Const(vocab.sub_property_of);
    let dom = Const(vocab.domain);
    let rng = Const(vocab.range);
    // Variables: 0 = s, 1 = o, 2 = p/c1, 3 = c/p2, 4 = c3/p3
    let rules = vec![
        // rdfs2: t(S, type, C) :- t(P, domain, C), t(S, P, O).
        Rule {
            head: t([Var(0), ty, Var(3)]),
            body: vec![t([Var(2), dom, Var(3)]), t([Var(0), Var(2), Var(1)])],
        },
        // rdfs3: t(O, type, C) :- t(P, range, C), t(S, P, O).
        Rule {
            head: t([Var(1), ty, Var(3)]),
            body: vec![t([Var(2), rng, Var(3)]), t([Var(0), Var(2), Var(1)])],
        },
        // rdfs5: t(P1, sp, P3) :- t(P1, sp, P2), t(P2, sp, P3).
        Rule {
            head: t([Var(2), sp, Var(4)]),
            body: vec![t([Var(2), sp, Var(3)]), t([Var(3), sp, Var(4)])],
        },
        // rdfs7: t(S, P2, O) :- t(P1, sp, P2), t(S, P1, O).
        Rule {
            head: t([Var(0), Var(3), Var(1)]),
            body: vec![t([Var(2), sp, Var(3)]), t([Var(0), Var(2), Var(1)])],
        },
        // rdfs9: t(S, type, C2) :- t(C1, sc, C2), t(S, type, C1).
        Rule {
            head: t([Var(0), ty, Var(3)]),
            body: vec![t([Var(2), sc, Var(3)]), t([Var(0), ty, Var(2)])],
        },
        // rdfs11: t(C1, sc, C3) :- t(C1, sc, C2), t(C2, sc, C3).
        Rule {
            head: t([Var(2), sc, Var(4)]),
            body: vec![t([Var(2), sc, Var(3)]), t([Var(3), sc, Var(4)])],
        },
        // ext-dom-sp: t(P, domain, C) :- t(P, sp, P2), t(P2, domain, C).
        Rule {
            head: t([Var(2), dom, Var(4)]),
            body: vec![t([Var(2), sp, Var(3)]), t([Var(3), dom, Var(4)])],
        },
        // ext-rng-sp
        Rule {
            head: t([Var(2), rng, Var(4)]),
            body: vec![t([Var(2), sp, Var(3)]), t([Var(3), rng, Var(4)])],
        },
        // ext-dom-sc: t(P, domain, C2) :- t(P, domain, C1), t(C1, sc, C2).
        Rule {
            head: t([Var(2), dom, Var(4)]),
            body: vec![t([Var(2), dom, Var(3)]), t([Var(3), sc, Var(4)])],
        },
        // ext-rng-sc
        Rule {
            head: t([Var(2), rng, Var(4)]),
            body: vec![t([Var(2), rng, Var(3)]), t([Var(3), sc, Var(4)])],
        },
    ];
    Program::new(rules)
}

/// Loads a graph into a fresh Datalog database (the `t` relation).
pub fn load_graph(g: &Graph) -> Database {
    let mut db = Database::new();
    for tr in g.iter() {
        db.insert(TRIPLE, [tr.s, tr.p, tr.o]);
    }
    db
}

/// Reads the `t` relation back into a [`Graph`].
pub fn read_graph(db: &Database) -> Graph {
    db.rows(TRIPLE)
        .map(|row| Triple::new(row[0], row[1], row[2]))
        .collect()
}

/// Saturates `g` by translation to Datalog: load, fix-point, read back.
/// Returns the saturated graph and the engine's statistics.
pub fn saturate_via_datalog(g: &Graph, vocab: &Vocab) -> (Graph, FixpointStats) {
    let mut db = load_graph(g);
    let program = rdfs_program(vocab);
    let stats = fixpoint(&mut db, &program);
    (read_graph(&db), stats)
}

/// Translates an encoded BGP (triples of `Option<TermId>` with `None`
/// marking a distinct variable slot is *not* expressive enough for joins),
/// so instead this helper answers one SPARQL-style BGP given as atoms over
/// variable indexes — used by the equivalence tests.
pub fn bgp_atoms(patterns: &[[DlTerm; 3]]) -> Vec<Atom> {
    patterns.iter().map(|&args| t(args)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::query;
    use rdf_model::{Dictionary, TermId};
    use rdfs::{saturate, saturate_naive};

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) {
            self.g.insert(Triple::new(s, p, o));
        }
    }

    #[test]
    fn program_is_range_restricted() {
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        assert!(rdfs_program(&v).validate().is_ok());
        assert_eq!(rdfs_program(&v).rules.len(), 10);
    }

    #[test]
    fn datalog_saturation_matches_specialised_engine() {
        let mut f = Fx::new();
        let (teaches, worksfor, prof, person, bob, uni) = (
            f.id("teaches"),
            f.id("worksFor"),
            f.id("Professor"),
            f.id("Person"),
            f.id("bob"),
            f.id("uni"),
        );
        let v = f.vocab;
        f.add(teaches, v.sub_property_of, worksfor);
        f.add(worksfor, v.domain, prof);
        f.add(prof, v.sub_class_of, person);
        f.add(bob, teaches, uni);

        let (dl, stats) = saturate_via_datalog(&f.g, &v);
        let fast = saturate(&f.g, &v).graph;
        assert_eq!(dl, fast);
        assert!(stats.derived > 0);
        assert!(dl.contains(&Triple::new(bob, v.rdf_type, person)));
    }

    #[test]
    fn round_trip_graph_loading() {
        let mut f = Fx::new();
        let (a, p, b) = (f.id("a"), f.id("p"), f.id("b"));
        f.add(a, p, b);
        f.add(b, p, a);
        let db = load_graph(&f.g);
        assert_eq!(db.predicate_len(TRIPLE), 2);
        assert_eq!(read_graph(&db), f.g);
    }

    #[test]
    fn query_over_saturated_database() {
        use DlTerm::{Const, Var};
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("tom"));
        let v = f.vocab;
        f.add(cat, v.sub_class_of, mammal);
        f.add(tom, v.rdf_type, cat);
        let mut db = load_graph(&f.g);
        fixpoint(&mut db, &rdfs_program(&v));
        // SELECT ?x WHERE { ?x rdf:type Mammal }
        let atoms = bgp_atoms(&[[Var(0), Const(v.rdf_type), Const(mammal)]]);
        let rows = query(&db, &atoms, &[0]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.iter().next().unwrap()[0], tom);
    }

    #[test]
    fn empty_graph() {
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        let (g, stats) = saturate_via_datalog(&Graph::new(), &v);
        assert!(g.is_empty());
        assert_eq!(stats.derived, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// (subclass, subproperty, domain, range, facts, typings) pairs.
        type GraphParts = (
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8)>,
            Vec<(u8, u8, u8)>,
            Vec<(u8, u8)>,
        );

        fn arb_parts() -> impl Strategy<Value = GraphParts> {
            (
                proptest::collection::vec((0u8..6, 0u8..6), 0..8),
                proptest::collection::vec((0u8..5, 0u8..5), 0..6),
                proptest::collection::vec((0u8..5, 0u8..6), 0..5),
                proptest::collection::vec((0u8..5, 0u8..6), 0..5),
                proptest::collection::vec((0u8..8, 0u8..5, 0u8..8), 0..16),
                proptest::collection::vec((0u8..8, 0u8..6), 0..8),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// The Datalog translation computes the same `G∞` as both the
            /// specialised and the naive native engines.
            #[test]
            fn translation_is_equivalent(parts in arb_parts()) {
                let mut dict = Dictionary::new();
                let vocab = Vocab::intern(&mut dict);
                let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
                let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
                let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
                let mut g = Graph::new();
                for &(a, b) in &parts.0 {
                    let tr = Triple::new(class(&mut dict, a), vocab.sub_class_of, class(&mut dict, b));
                    g.insert(tr);
                }
                for &(a, b) in &parts.1 {
                    let tr = Triple::new(prop(&mut dict, a), vocab.sub_property_of, prop(&mut dict, b));
                    g.insert(tr);
                }
                for &(p, c) in &parts.2 {
                    let tr = Triple::new(prop(&mut dict, p), vocab.domain, class(&mut dict, c));
                    g.insert(tr);
                }
                for &(p, c) in &parts.3 {
                    let tr = Triple::new(prop(&mut dict, p), vocab.range, class(&mut dict, c));
                    g.insert(tr);
                }
                for &(s, p, o) in &parts.4 {
                    let tr = Triple::new(node(&mut dict, s), prop(&mut dict, p), node(&mut dict, o));
                    g.insert(tr);
                }
                for &(s, c) in &parts.5 {
                    let tr = Triple::new(node(&mut dict, s), vocab.rdf_type, class(&mut dict, c));
                    g.insert(tr);
                }
                let (dl, _) = saturate_via_datalog(&g, &vocab);
                let fast = saturate(&g, &vocab).graph;
                let naive = saturate_naive(&g, &vocab).graph;
                prop_assert_eq!(&dl, &fast);
                prop_assert_eq!(&dl, &naive);
            }
        }
    }
}
