//! # federation — integrating independently-authored RDF endpoints
//!
//! The paper's §I motivates reformulation with exactly this scenario:
//! "typical Semantic Web scenarios involve integrating data from several
//! RDF repositories, also called 'RDF endpoints'. Since such repositories
//! are often authored independently, they have their own sets of semantic
//! constraints (or schemas, in short); computing prior to query answering
//! all the consequences of facts from any endpoint and constraints from
//! any (other) endpoint is not feasible."
//!
//! [`Federation`] is a mediator over such endpoints. Each endpoint owns
//! its triples (facts *and* constraints); the mediator keeps a merged
//! explicit index as a cache but **never materialises a global
//! saturation**. Query answering reformulates against the union of all
//! endpoint schemas and evaluates over the merged explicit triples —
//! so constraints from one endpoint apply to facts from another, and
//! endpoints can join, leave or be replaced with no saturation to
//! maintain. A deliberately naive saturating mediator
//! ([`Federation::answer_via_saturation`]) is provided as the comparison
//! arm of experiment A-FED: it re-saturates the merged graph whenever any
//! endpoint changed.
//!
//! ```
//! use federation::Federation;
//!
//! let mut fed = Federation::new();
//! // Endpoint A publishes facts with its own vocabulary…
//! let a = fed.add_endpoint("endpointA");
//! fed.load_turtle(a, r#"
//!     @prefix a: <http://a.example/> .
//!     a:r1 a:locatedIn a:paris .
//! "#).unwrap();
//! // …endpoint B publishes constraints over A's vocabulary.
//! let b = fed.add_endpoint("endpointB");
//! fed.load_turtle(b, r#"
//!     @prefix a: <http://a.example/> .
//!     @prefix b: <http://b.example/> .
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     a:locatedIn rdfs:range b:Place .
//! "#).unwrap();
//! let sols = fed.answer_sparql(
//!     "PREFIX b: <http://b.example/> SELECT ?x WHERE { ?x a b:Place }"
//! ).unwrap();
//! assert_eq!(sols.len(), 1); // paris, typed across endpoints
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rdf_io::ParseError;
use rdf_model::{Dictionary, Graph, Triple, Vocab};
use rdfs::{saturate, Schema};
use reformulation::{reformulate, ReformulationError};
use sparql::{evaluate, finalize, parse_query, Query, QueryParseError, Solutions};
use std::fmt;

/// A stable handle to an endpoint of the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(usize);

/// Errors surfaced by federation operations.
#[derive(Debug)]
pub enum FederationError {
    /// RDF data failed to parse.
    Data(ParseError),
    /// The SPARQL text failed to parse.
    Query(QueryParseError),
    /// The query is outside the reformulation dialect.
    Reformulation(ReformulationError),
    /// The endpoint id does not name a live endpoint.
    UnknownEndpoint(EndpointId),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::Data(e) => write!(f, "{e}"),
            FederationError::Query(e) => write!(f, "{e}"),
            FederationError::Reformulation(e) => write!(f, "{e}"),
            FederationError::UnknownEndpoint(id) => write!(f, "unknown endpoint #{}", id.0),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<ParseError> for FederationError {
    fn from(e: ParseError) -> Self {
        FederationError::Data(e)
    }
}
impl From<QueryParseError> for FederationError {
    fn from(e: QueryParseError) -> Self {
        FederationError::Query(e)
    }
}
impl From<ReformulationError> for FederationError {
    fn from(e: ReformulationError) -> Self {
        FederationError::Reformulation(e)
    }
}

struct Endpoint {
    name: String,
    graph: Graph,
}

/// A mediator over independently-authored RDF endpoints.
pub struct Federation {
    dict: Dictionary,
    vocab: Vocab,
    endpoints: Vec<Option<Endpoint>>,
    /// Merged explicit triples (multi-set aware: a triple stays while any
    /// endpoint asserts it). Rebuilt lazily after membership changes.
    merged: Option<Graph>,
    schema: Option<Schema>,
    /// The naive comparison arm's cached saturation of the merged graph.
    saturated: Option<Graph>,
}

impl Default for Federation {
    fn default() -> Self {
        Self::new()
    }
}

impl Federation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        Federation {
            dict,
            vocab,
            endpoints: Vec::new(),
            merged: None,
            schema: None,
            saturated: None,
        }
    }

    /// Registers a new (empty) endpoint.
    pub fn add_endpoint(&mut self, name: &str) -> EndpointId {
        let id = EndpointId(self.endpoints.len());
        self.endpoints.push(Some(Endpoint {
            name: name.to_owned(),
            graph: Graph::new(),
        }));
        id
    }

    /// Removes an endpoint and all its triples. Returns false if the id
    /// was already gone. Nothing else needs maintenance — the point of the
    /// reformulation-based mediator.
    pub fn remove_endpoint(&mut self, id: EndpointId) -> bool {
        match self.endpoints.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.invalidate();
                true
            }
            _ => false,
        }
    }

    /// Loads Turtle into an endpoint. Returns the number of triples in the
    /// document.
    pub fn load_turtle(&mut self, id: EndpointId, text: &str) -> Result<usize, FederationError> {
        let endpoint = self
            .endpoints
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(FederationError::UnknownEndpoint(id))?;
        let n = rdf_io::parse_turtle(text, &mut self.dict, &mut endpoint.graph)?;
        self.invalidate();
        Ok(n)
    }

    /// Loads N-Triples into an endpoint.
    pub fn load_ntriples(&mut self, id: EndpointId, text: &str) -> Result<usize, FederationError> {
        let endpoint = self
            .endpoints
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(FederationError::UnknownEndpoint(id))?;
        let n = rdf_io::parse_ntriples(text, &mut self.dict, &mut endpoint.graph)?;
        self.invalidate();
        Ok(n)
    }

    /// Inserts one triple into an endpoint.
    pub fn insert(&mut self, id: EndpointId, t: Triple) -> Result<bool, FederationError> {
        let endpoint = self
            .endpoints
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(FederationError::UnknownEndpoint(id))?;
        let changed = endpoint.graph.insert(t);
        if changed {
            self.invalidate();
        }
        Ok(changed)
    }

    fn invalidate(&mut self) {
        self.merged = None;
        self.schema = None;
        self.saturated = None;
    }

    /// Names of the live endpoints.
    pub fn endpoint_names(&self) -> Vec<&str> {
        self.endpoints
            .iter()
            .flatten()
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Number of live endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.iter().flatten().count()
    }

    /// True when no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mediator's dictionary (shared across endpoints).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn merged(&mut self) -> &Graph {
        if self.merged.is_none() {
            let mut g = Graph::new();
            for e in self.endpoints.iter().flatten() {
                for t in e.graph.iter() {
                    g.insert(t);
                }
            }
            self.merged = Some(g);
        }
        self.merged.as_ref().expect("just built")
    }

    /// Total explicit triples across endpoints (duplicates merged).
    pub fn triple_count(&mut self) -> usize {
        self.merged().len()
    }

    /// Parses a query against the federation's dictionary.
    pub fn prepare(&mut self, sparql: &str) -> Result<Query, FederationError> {
        Ok(parse_query(sparql, &mut self.dict)?)
    }

    /// Answers `q` by reformulation against the union of all endpoint
    /// schemas, evaluated over the merged explicit triples — constraints
    /// from any endpoint apply to facts from any other, with no global
    /// saturation ever materialised.
    pub fn answer(&mut self, q: &Query) -> Result<Solutions, FederationError> {
        if self.schema.is_none() {
            let vocab = self.vocab;
            let schema = Schema::extract(self.merged(), &vocab);
            self.schema = Some(schema);
        }
        let r = reformulate(q, self.schema.as_ref().expect("just built"), &self.vocab)?;
        let sols = evaluate(self.merged(), &r.query);
        Ok(finalize(sols, q, &mut self.dict))
    }

    /// Parses and answers in one call.
    pub fn answer_sparql(&mut self, sparql: &str) -> Result<Solutions, FederationError> {
        let q = self.prepare(sparql)?;
        self.answer(&q)
    }

    /// The naive saturating mediator (A-FED comparison arm): maintains a
    /// saturation of the merged graph, recomputed from scratch whenever
    /// any endpoint changed — "computing prior to query answering all the
    /// consequences of facts from any endpoint and constraints from any
    /// (other) endpoint" (§I).
    pub fn answer_via_saturation(&mut self, q: &Query) -> Result<Solutions, FederationError> {
        if self.saturated.is_none() {
            let vocab = self.vocab;
            let merged = self.merged().clone();
            self.saturated = Some(saturate(&merged, &vocab).graph);
        }
        let sols = evaluate(self.saturated.as_ref().expect("just built"), q);
        Ok(finalize(sols, q, &mut self.dict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §II-A example, split across two endpoints: the fact
    /// lives in one, the constraint in the other.
    #[test]
    fn cross_endpoint_entailment() {
        let mut fed = Federation::new();
        let facts = fed.add_endpoint("facts");
        fed.load_turtle(
            facts,
            "@prefix ex: <http://example.org/> .\nex:Anne ex:hasFriend ex:Marie .",
        )
        .unwrap();
        let ontology = fed.add_endpoint("ontology");
        fed.load_turtle(
            ontology,
            "@prefix ex: <http://example.org/> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:hasFriend rdfs:domain ex:Person .",
        )
        .unwrap();
        let q = "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Person }";
        let sols = fed.answer_sparql(q).unwrap();
        assert_eq!(
            sols.to_strings(fed.dictionary()),
            vec!["?x=<http://example.org/Anne>"]
        );
    }

    #[test]
    fn reformulation_and_saturation_mediators_agree() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        fed.load_turtle(
            a,
            "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Cat rdfs:subClassOf ex:Mammal .\nex:tom a ex:Cat .",
        )
        .unwrap();
        let b = fed.add_endpoint("b");
        fed.load_turtle(
            b,
            "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Dog rdfs:subClassOf ex:Mammal .\nex:rex a ex:Dog .",
        )
        .unwrap();
        let mut q = fed
            .prepare("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }")
            .unwrap();
        q.distinct = true;
        let refo = fed.answer(&q).unwrap().as_set();
        let sat = fed.answer_via_saturation(&q).unwrap().as_set();
        assert_eq!(refo, sat);
        assert_eq!(refo.len(), 2);
    }

    #[test]
    fn endpoint_removal_retracts_facts_and_constraints() {
        let mut fed = Federation::new();
        let facts = fed.add_endpoint("facts");
        fed.load_turtle(
            facts,
            "@prefix ex: <http://ex/> .\nex:anne ex:hasFriend ex:marie .",
        )
        .unwrap();
        let ontology = fed.add_endpoint("ontology");
        fed.load_turtle(
            ontology,
            "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:hasFriend rdfs:domain ex:Person .",
        )
        .unwrap();
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }";
        assert_eq!(fed.answer_sparql(q).unwrap().len(), 1);
        // The ontology endpoint leaves: its constraint goes with it.
        assert!(fed.remove_endpoint(ontology));
        assert_eq!(fed.answer_sparql(q).unwrap().len(), 0);
        assert_eq!(fed.len(), 1);
        assert!(!fed.remove_endpoint(ontology), "double removal");
        // Facts are still there.
        let q = "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:hasFriend ?y }";
        assert_eq!(fed.answer_sparql(q).unwrap().len(), 1);
    }

    #[test]
    fn duplicate_assertions_across_endpoints_survive_one_removal() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        let b = fed.add_endpoint("b");
        let data = "@prefix ex: <http://ex/> .\nex:x ex:p ex:y .";
        fed.load_turtle(a, data).unwrap();
        fed.load_turtle(b, data).unwrap();
        assert_eq!(fed.triple_count(), 1, "merged view dedups");
        fed.remove_endpoint(a);
        assert_eq!(fed.triple_count(), 1, "still asserted by b");
        fed.remove_endpoint(b);
        assert_eq!(fed.triple_count(), 0);
    }

    #[test]
    fn out_of_dialect_query_errors_cleanly() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        fed.load_turtle(a, "@prefix ex: <http://ex/> .\nex:x ex:p ex:y .")
            .unwrap();
        let err = fed
            .answer_sparql("SELECT ?p WHERE { <http://ex/x> ?p <http://ex/y> }")
            .unwrap_err();
        assert!(matches!(err, FederationError::Reformulation(_)), "{err}");
        // …and parse errors surface too
        let err = fed.answer_sparql("SELECT WHERE").unwrap_err();
        assert!(matches!(err, FederationError::Query(_)));
    }

    #[test]
    fn modifiers_apply_at_the_mediator() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        fed.load_turtle(
            a,
            "@prefix ex: <http://ex/> .\nex:a ex:age 30 . ex:b ex:age 10 . ex:c ex:age 20 .",
        )
        .unwrap();
        let sols = fed
            .answer_sparql(
                "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?a > 15) } \
                 ORDER BY DESC(?a) LIMIT 1",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.to_strings(fed.dictionary())[0]
                .split_whitespace()
                .next(),
            Some("?x=<http://ex/a>")
        );
    }

    #[test]
    fn unknown_endpoint_errors() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        fed.remove_endpoint(a);
        assert!(matches!(
            fed.load_turtle(a, "x"),
            Err(FederationError::UnknownEndpoint(_))
        ));
        let mut d = Dictionary::new();
        let v = Vocab::intern(&mut d);
        let t = Triple::new(v.rdf_type, v.rdf_type, v.rdf_type);
        assert!(matches!(
            fed.insert(a, t),
            Err(FederationError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn incremental_inserts_invalidate_caches() {
        let mut fed = Federation::new();
        let a = fed.add_endpoint("a");
        fed.load_turtle(
            a,
            "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Cat rdfs:subClassOf ex:Mammal .",
        )
        .unwrap();
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";
        assert_eq!(fed.answer_sparql(q).unwrap().len(), 0);
        let tom = {
            let mut dict = fed.dict.clone();
            let t = Triple::new(
                dict.encode_iri("http://ex/tom"),
                fed.vocab.rdf_type,
                dict.get_iri_id("http://ex/Cat").unwrap(),
            );
            fed.dict = dict;
            t
        };
        assert!(fed.insert(a, tom).unwrap());
        assert_eq!(fed.answer_sparql(q).unwrap().len(), 1, "reformulation path");
        let mut q2 = fed.prepare(q).unwrap();
        q2.distinct = true;
        assert_eq!(
            fed.answer_via_saturation(&q2).unwrap().len(),
            1,
            "saturation path"
        );
    }

    #[test]
    fn many_endpoints_with_distinct_schemas() {
        // Five departments each publish their own subclass of a shared
        // Employee class; a type query over the shared class spans all.
        let mut fed = Federation::new();
        for i in 0..5 {
            let e = fed.add_endpoint(&format!("dept{i}"));
            fed.load_turtle(
                e,
                &format!(
                    "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
                     ex:Role{i} rdfs:subClassOf ex:Employee .\n\
                     ex:worker{i} a ex:Role{i} ."
                ),
            )
            .unwrap();
        }
        let sols = fed
            .answer_sparql("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Employee }")
            .unwrap();
        assert_eq!(sols.len(), 5);
        assert_eq!(fed.endpoint_names().len(), 5);
    }
}
