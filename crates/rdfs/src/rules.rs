//! Immediate entailment rules (`⊢ᵢ_RDF`, Fig. 2 of the paper).
//!
//! Each rule has exactly two premises; [`consequences_of`] enumerates every
//! rule instance in which a given triple fills *either* premise while the
//! other premise is drawn from a graph. This "delta-aware" formulation is
//! the single primitive from which the naive fix-point, semi-naive
//! saturation, insertion deltas and DRed over-deletion are all built.
//!
//! The first four rules are the instance-entailment rules the paper shows
//! in Fig. 2; the remaining six close the schema itself (rdfs5/rdfs11
//! transitivity plus domain/range propagation, as in the database fragment
//! of ref. \[12\]). Schema-level rules do not change which instance triples
//! are entailed, but make the schema part of `G∞` explicit.
//!
//! **Fragment assumption**: the four RDFS constraint properties and
//! `rdf:type` are *built-ins* — they do not themselves appear as subjects
//! or objects of constraints (no `rdfs:domain rdfs:subClassOf …`). This is
//! the well-formedness restriction of the paper's RDF fragment (§II-B,
//! "These RDF fragments impose restrictions on triples").

use rdf_model::{Graph, Triple, Vocab};

/// The entailment rules implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `p rdfs:domain c ∧ s p o ⊢ s rdf:type c` (Fig. 2).
    Rdfs2,
    /// `p rdfs:range c ∧ s p o ⊢ o rdf:type c` (Fig. 2).
    Rdfs3,
    /// `p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:subPropertyOf p3 ⊢ p1 rdfs:subPropertyOf p3`.
    Rdfs5,
    /// `p1 rdfs:subPropertyOf p2 ∧ s p1 o ⊢ s p2 o` (Fig. 2).
    Rdfs7,
    /// `c1 rdfs:subClassOf c2 ∧ s rdf:type c1 ⊢ s rdf:type c2` (Fig. 2).
    Rdfs9,
    /// `c1 rdfs:subClassOf c2 ∧ c2 rdfs:subClassOf c3 ⊢ c1 rdfs:subClassOf c3`.
    Rdfs11,
    /// `p rdfs:subPropertyOf p' ∧ p' rdfs:domain c ⊢ p rdfs:domain c`.
    ExtDomainSubProperty,
    /// `p rdfs:subPropertyOf p' ∧ p' rdfs:range c ⊢ p rdfs:range c`.
    ExtRangeSubProperty,
    /// `p rdfs:domain c ∧ c rdfs:subClassOf c' ⊢ p rdfs:domain c'`.
    ExtDomainSubClass,
    /// `p rdfs:range c ∧ c rdfs:subClassOf c' ⊢ p rdfs:range c'`.
    ExtRangeSubClass,
}

impl Rule {
    /// Every rule, in presentation order (Fig. 2 rules first).
    pub const ALL: [Rule; 10] = [
        Rule::Rdfs2,
        Rule::Rdfs3,
        Rule::Rdfs7,
        Rule::Rdfs9,
        Rule::Rdfs5,
        Rule::Rdfs11,
        Rule::ExtDomainSubProperty,
        Rule::ExtRangeSubProperty,
        Rule::ExtDomainSubClass,
        Rule::ExtRangeSubClass,
    ];

    /// The rule's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Rdfs2 => "rdfs2",
            Rule::Rdfs3 => "rdfs3",
            Rule::Rdfs5 => "rdfs5",
            Rule::Rdfs7 => "rdfs7",
            Rule::Rdfs9 => "rdfs9",
            Rule::Rdfs11 => "rdfs11",
            Rule::ExtDomainSubProperty => "ext-dom-sp",
            Rule::ExtRangeSubProperty => "ext-rng-sp",
            Rule::ExtDomainSubClass => "ext-dom-sc",
            Rule::ExtRangeSubClass => "ext-rng-sc",
        }
    }

    /// Human-readable statement of the rule, as in Fig. 2.
    pub fn statement(self) -> &'static str {
        match self {
            Rule::Rdfs2 => "p rdfs:domain c ∧ s p o ⊢ s rdf:type c",
            Rule::Rdfs3 => "p rdfs:range c ∧ s p o ⊢ o rdf:type c",
            Rule::Rdfs5 => {
                "p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:subPropertyOf p3 ⊢ p1 rdfs:subPropertyOf p3"
            }
            Rule::Rdfs7 => "p1 rdfs:subPropertyOf p2 ∧ s p1 o ⊢ s p2 o",
            Rule::Rdfs9 => "c1 rdfs:subClassOf c2 ∧ s rdf:type c1 ⊢ s rdf:type c2",
            Rule::Rdfs11 => "c1 rdfs:subClassOf c2 ∧ c2 rdfs:subClassOf c3 ⊢ c1 rdfs:subClassOf c3",
            Rule::ExtDomainSubProperty => {
                "p rdfs:subPropertyOf p' ∧ p' rdfs:domain c ⊢ p rdfs:domain c"
            }
            Rule::ExtRangeSubProperty => {
                "p rdfs:subPropertyOf p' ∧ p' rdfs:range c ⊢ p rdfs:range c"
            }
            Rule::ExtDomainSubClass => "p rdfs:domain c ∧ c rdfs:subClassOf c' ⊢ p rdfs:domain c'",
            Rule::ExtRangeSubClass => "p rdfs:range c ∧ c rdfs:subClassOf c' ⊢ p rdfs:range c'",
        }
    }

    /// True for the four instance-entailment rules shown in the paper's Fig. 2.
    pub fn in_figure2(self) -> bool {
        matches!(self, Rule::Rdfs2 | Rule::Rdfs3 | Rule::Rdfs7 | Rule::Rdfs9)
    }
}

/// Enumerates every immediate consequence of rule instances in which `t`
/// fills one premise and the other premise is drawn from `g`.
///
/// `g` should contain `t` itself if self-joins (both premises = `t`) are to
/// be found, as the fix-point engines require. Consequences are emitted
/// with the rule that produced them and may repeat or already be in `g`;
/// dedup is the caller's concern.
pub fn consequences_of(t: &Triple, g: &Graph, vocab: &Vocab, mut emit: impl FnMut(Rule, Triple)) {
    let v = vocab;

    // --- t as the schema premise ---------------------------------------
    if t.p == v.domain {
        // rdfs2, premise 1: t = (p domain c)
        for (s, _o) in g.pairs_with_property(t.s) {
            emit(Rule::Rdfs2, Triple::new(s, v.rdf_type, t.o));
        }
        // ext-dom-sc, premise 1: t = (p domain c), need (c sc c')
        if let Some(sups) = g.objects(t.o, v.sub_class_of) {
            for &c2 in sups {
                emit(Rule::ExtDomainSubClass, Triple::new(t.s, v.domain, c2));
            }
        }
        // ext-dom-sp, premise 2: t = (p' domain c), need (p sp p')
        if let Some(subs) = g.subjects_with(v.sub_property_of, t.s) {
            for &p in subs {
                emit(Rule::ExtDomainSubProperty, Triple::new(p, v.domain, t.o));
            }
        }
    } else if t.p == v.range {
        // rdfs3, premise 1: t = (p range c)
        for (_s, o) in g.pairs_with_property(t.s) {
            emit(Rule::Rdfs3, Triple::new(o, v.rdf_type, t.o));
        }
        if let Some(sups) = g.objects(t.o, v.sub_class_of) {
            for &c2 in sups {
                emit(Rule::ExtRangeSubClass, Triple::new(t.s, v.range, c2));
            }
        }
        if let Some(subs) = g.subjects_with(v.sub_property_of, t.s) {
            for &p in subs {
                emit(Rule::ExtRangeSubProperty, Triple::new(p, v.range, t.o));
            }
        }
    } else if t.p == v.sub_property_of {
        // rdfs7, premise 1: t = (p1 sp p2), need (s p1 o)
        for (s, o) in g.pairs_with_property(t.s) {
            emit(Rule::Rdfs7, Triple::new(s, t.o, o));
        }
        // rdfs5, premise 1: t = (p1 sp p2), need (p2 sp p3)
        if let Some(p3s) = g.objects(t.o, v.sub_property_of) {
            for &p3 in p3s {
                emit(Rule::Rdfs5, Triple::new(t.s, v.sub_property_of, p3));
            }
        }
        // rdfs5, premise 2: t = (p2 sp p3), need (p1 sp p2)
        if let Some(p1s) = g.subjects_with(v.sub_property_of, t.s) {
            for &p1 in p1s {
                emit(Rule::Rdfs5, Triple::new(p1, v.sub_property_of, t.o));
            }
        }
        // ext-dom-sp, premise 1: t = (p sp p'), need (p' domain c)
        if let Some(cs) = g.objects(t.o, v.domain) {
            for &c in cs {
                emit(Rule::ExtDomainSubProperty, Triple::new(t.s, v.domain, c));
            }
        }
        // ext-rng-sp, premise 1
        if let Some(cs) = g.objects(t.o, v.range) {
            for &c in cs {
                emit(Rule::ExtRangeSubProperty, Triple::new(t.s, v.range, c));
            }
        }
    } else if t.p == v.sub_class_of {
        // rdfs9, premise 1: t = (c1 sc c2), need (s type c1)
        if let Some(ss) = g.subjects_with(v.rdf_type, t.s) {
            for &s in ss {
                emit(Rule::Rdfs9, Triple::new(s, v.rdf_type, t.o));
            }
        }
        // rdfs11, premise 1 & 2
        if let Some(c3s) = g.objects(t.o, v.sub_class_of) {
            for &c3 in c3s {
                emit(Rule::Rdfs11, Triple::new(t.s, v.sub_class_of, c3));
            }
        }
        if let Some(c1s) = g.subjects_with(v.sub_class_of, t.s) {
            for &c1 in c1s {
                emit(Rule::Rdfs11, Triple::new(c1, v.sub_class_of, t.o));
            }
        }
        // ext-dom-sc / ext-rng-sc, premise 2: t = (c sc c'), need (p domain c)
        if let Some(ps) = g.subjects_with(v.domain, t.s) {
            for &p in ps {
                emit(Rule::ExtDomainSubClass, Triple::new(p, v.domain, t.o));
            }
        }
        if let Some(ps) = g.subjects_with(v.range, t.s) {
            for &p in ps {
                emit(Rule::ExtRangeSubClass, Triple::new(p, v.range, t.o));
            }
        }
    } else if t.p == v.rdf_type {
        // rdfs9, premise 2: t = (s type c1), need (c1 sc c2)
        if let Some(c2s) = g.objects(t.o, v.sub_class_of) {
            for &c2 in c2s {
                emit(Rule::Rdfs9, Triple::new(t.s, v.rdf_type, c2));
            }
        }
    } else {
        // t is a plain property assertion (s p o).
        // rdfs7, premise 2: need (p sp p2)
        if let Some(p2s) = g.objects(t.p, v.sub_property_of) {
            for &p2 in p2s {
                emit(Rule::Rdfs7, Triple::new(t.s, p2, t.o));
            }
        }
        // rdfs2, premise 2: need (p domain c)
        if let Some(cs) = g.objects(t.p, v.domain) {
            for &c in cs {
                emit(Rule::Rdfs2, Triple::new(t.s, v.rdf_type, c));
            }
        }
        // rdfs3, premise 2: need (p range c)
        if let Some(cs) = g.objects(t.p, v.range) {
            for &c in cs {
                emit(Rule::Rdfs3, Triple::new(t.o, v.rdf_type, c));
            }
        }
    }
}

/// True if `d` is the conclusion of at least one rule instance whose two
/// premises are both in `g` — the re-derivation test of the DRed
/// (delete-and-rederive) maintenance algorithm.
pub fn one_step_derivable(d: &Triple, g: &Graph, vocab: &Vocab) -> bool {
    let v = vocab;
    if d.p == v.rdf_type {
        // rdfs2: (p domain c) ∧ (s p o)
        if let Some(ps) = g.subjects_with(v.domain, d.o) {
            if ps.iter().any(|&p| g.objects(d.s, p).is_some()) {
                return true;
            }
        }
        // rdfs3: (p range c) ∧ (o p s)
        if let Some(ps) = g.subjects_with(v.range, d.o) {
            if ps.iter().any(|&p| g.subjects_with(p, d.s).is_some()) {
                return true;
            }
        }
        // rdfs9: (c1 sc c) ∧ (s type c1)
        if let Some(c1s) = g.subjects_with(v.sub_class_of, d.o) {
            if c1s
                .iter()
                .any(|&c1| g.contains(&Triple::new(d.s, v.rdf_type, c1)))
            {
                return true;
            }
        }
        false
    } else if d.p == v.sub_class_of {
        // rdfs11: (s sc m) ∧ (m sc o)
        g.objects(d.s, v.sub_class_of).is_some_and(|mids| {
            mids.iter()
                .any(|&m| g.contains(&Triple::new(m, v.sub_class_of, d.o)))
        })
    } else if d.p == v.sub_property_of {
        // rdfs5
        g.objects(d.s, v.sub_property_of).is_some_and(|mids| {
            mids.iter()
                .any(|&m| g.contains(&Triple::new(m, v.sub_property_of, d.o)))
        })
    } else if d.p == v.domain {
        // ext-dom-sp: (s sp p') ∧ (p' domain o)
        let via_sp = g.objects(d.s, v.sub_property_of).is_some_and(|ps| {
            ps.iter()
                .any(|&p2| g.contains(&Triple::new(p2, v.domain, d.o)))
        });
        // ext-dom-sc: (s domain c0) ∧ (c0 sc o)
        let via_sc = g.objects(d.s, v.domain).is_some_and(|cs| {
            cs.iter()
                .any(|&c0| g.contains(&Triple::new(c0, v.sub_class_of, d.o)))
        });
        via_sp || via_sc
    } else if d.p == v.range {
        let via_sp = g.objects(d.s, v.sub_property_of).is_some_and(|ps| {
            ps.iter()
                .any(|&p2| g.contains(&Triple::new(p2, v.range, d.o)))
        });
        let via_sc = g.objects(d.s, v.range).is_some_and(|cs| {
            cs.iter()
                .any(|&c0| g.contains(&Triple::new(c0, v.sub_class_of, d.o)))
        });
        via_sp || via_sc
    } else {
        // rdfs7: (p1 sp p) ∧ (s p1 o)
        g.subjects_with(v.sub_property_of, d.p)
            .is_some_and(|p1s| p1s.iter().any(|&p1| g.contains(&Triple::new(d.s, p1, d.o))))
    }
}

/// Enumerates every rule instance concluding `d` with both premises in
/// `g`, as `(rule, premise₁, premise₂)` — the inverse of
/// [`consequences_of`], used by the explanation facility and mirroring
/// [`one_step_derivable`] (which is `derivations_of(..).next().is_some()`
/// in spirit, kept separate because the boolean version short-circuits).
pub fn derivations_of(
    d: &Triple,
    g: &Graph,
    vocab: &Vocab,
    mut emit: impl FnMut(Rule, Triple, Triple),
) {
    let v = vocab;
    if d.p == v.rdf_type {
        // rdfs2: (p domain c) ∧ (s p o)
        if let Some(ps) = g.subjects_with(v.domain, d.o) {
            for &p in ps {
                if let Some(os) = g.objects(d.s, p) {
                    for &o in os {
                        emit(
                            Rule::Rdfs2,
                            Triple::new(p, v.domain, d.o),
                            Triple::new(d.s, p, o),
                        );
                    }
                }
            }
        }
        // rdfs3: (p range c) ∧ (s p o) with o = d.s
        if let Some(ps) = g.subjects_with(v.range, d.o) {
            for &p in ps {
                if let Some(ss) = g.subjects_with(p, d.s) {
                    for &s in ss {
                        emit(
                            Rule::Rdfs3,
                            Triple::new(p, v.range, d.o),
                            Triple::new(s, p, d.s),
                        );
                    }
                }
            }
        }
        // rdfs9: (c1 sc c) ∧ (s type c1)
        if let Some(c1s) = g.subjects_with(v.sub_class_of, d.o) {
            for &c1 in c1s {
                if g.contains(&Triple::new(d.s, v.rdf_type, c1)) {
                    emit(
                        Rule::Rdfs9,
                        Triple::new(c1, v.sub_class_of, d.o),
                        Triple::new(d.s, v.rdf_type, c1),
                    );
                }
            }
        }
    } else if d.p == v.sub_class_of {
        if let Some(mids) = g.objects(d.s, v.sub_class_of) {
            for &m in mids {
                if g.contains(&Triple::new(m, v.sub_class_of, d.o)) {
                    emit(
                        Rule::Rdfs11,
                        Triple::new(d.s, v.sub_class_of, m),
                        Triple::new(m, v.sub_class_of, d.o),
                    );
                }
            }
        }
    } else if d.p == v.sub_property_of {
        if let Some(mids) = g.objects(d.s, v.sub_property_of) {
            for &m in mids {
                if g.contains(&Triple::new(m, v.sub_property_of, d.o)) {
                    emit(
                        Rule::Rdfs5,
                        Triple::new(d.s, v.sub_property_of, m),
                        Triple::new(m, v.sub_property_of, d.o),
                    );
                }
            }
        }
    } else if d.p == v.domain || d.p == v.range {
        let (sp_rule, sc_rule) = if d.p == v.domain {
            (Rule::ExtDomainSubProperty, Rule::ExtDomainSubClass)
        } else {
            (Rule::ExtRangeSubProperty, Rule::ExtRangeSubClass)
        };
        // ext-*-sp: (s sp p') ∧ (p' d.p o)
        if let Some(sups) = g.objects(d.s, v.sub_property_of) {
            for &p2 in sups {
                if g.contains(&Triple::new(p2, d.p, d.o)) {
                    emit(
                        sp_rule,
                        Triple::new(d.s, v.sub_property_of, p2),
                        Triple::new(p2, d.p, d.o),
                    );
                }
            }
        }
        // ext-*-sc: (s d.p c0) ∧ (c0 sc o)
        if let Some(cs) = g.objects(d.s, d.p) {
            for &c0 in cs {
                if g.contains(&Triple::new(c0, v.sub_class_of, d.o)) {
                    emit(
                        sc_rule,
                        Triple::new(d.s, d.p, c0),
                        Triple::new(c0, v.sub_class_of, d.o),
                    );
                }
            }
        }
    } else {
        // rdfs7: (p1 sp p) ∧ (s p1 o)
        if let Some(p1s) = g.subjects_with(v.sub_property_of, d.p) {
            for &p1 in p1s {
                if g.contains(&Triple::new(d.s, p1, d.o)) {
                    emit(
                        Rule::Rdfs7,
                        Triple::new(p1, v.sub_property_of, d.p),
                        Triple::new(d.s, p1, d.o),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dictionary, TermId};

    struct Fx {
        dict: Dictionary,
        vocab: Vocab,
        g: Graph,
    }

    impl Fx {
        fn new() -> Self {
            let mut dict = Dictionary::new();
            let vocab = Vocab::intern(&mut dict);
            Fx {
                dict,
                vocab,
                g: Graph::new(),
            }
        }
        fn id(&mut self, n: &str) -> TermId {
            self.dict.encode_iri(&format!("http://ex/{n}"))
        }
        fn add(&mut self, s: TermId, p: TermId, o: TermId) -> Triple {
            let t = Triple::new(s, p, o);
            self.g.insert(t);
            t
        }
        fn consequences(&self, t: &Triple) -> Vec<(Rule, Triple)> {
            let mut out = Vec::new();
            consequences_of(t, &self.g, &self.vocab, |r, c| out.push((r, c)));
            out.sort();
            out.dedup();
            out
        }
    }

    #[test]
    fn rdfs2_both_premise_positions() {
        // hasFriend rdfs:domain Person ∧ Anne hasFriend Marie ⊢ Anne type Person
        let mut f = Fx::new();
        let (hf, person, anne, marie) = (
            f.id("hasFriend"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        let schema = f.add(hf, v.domain, person);
        let fact = f.add(anne, hf, marie);
        let want = Triple::new(anne, v.rdf_type, person);
        assert!(
            f.consequences(&schema).contains(&(Rule::Rdfs2, want)),
            "via schema premise"
        );
        assert!(
            f.consequences(&fact).contains(&(Rule::Rdfs2, want)),
            "via instance premise"
        );
    }

    #[test]
    fn rdfs3_both_premise_positions() {
        let mut f = Fx::new();
        let (hf, person, anne, marie) = (
            f.id("hasFriend"),
            f.id("Person"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        let schema = f.add(hf, v.range, person);
        let fact = f.add(anne, hf, marie);
        let want = Triple::new(marie, v.rdf_type, person);
        assert!(f.consequences(&schema).contains(&(Rule::Rdfs3, want)));
        assert!(f.consequences(&fact).contains(&(Rule::Rdfs3, want)));
    }

    #[test]
    fn rdfs7_both_premise_positions() {
        let mut f = Fx::new();
        let (hf, knows, anne, marie) = (
            f.id("hasFriend"),
            f.id("knows"),
            f.id("Anne"),
            f.id("Marie"),
        );
        let v = f.vocab;
        let schema = f.add(hf, v.sub_property_of, knows);
        let fact = f.add(anne, hf, marie);
        let want = Triple::new(anne, knows, marie);
        assert!(f.consequences(&schema).contains(&(Rule::Rdfs7, want)));
        assert!(f.consequences(&fact).contains(&(Rule::Rdfs7, want)));
    }

    #[test]
    fn rdfs9_both_premise_positions() {
        let mut f = Fx::new();
        let (cat, mammal, tom) = (f.id("Cat"), f.id("Mammal"), f.id("Tom"));
        let v = f.vocab;
        let schema = f.add(cat, v.sub_class_of, mammal);
        let fact = f.add(tom, v.rdf_type, cat);
        let want = Triple::new(tom, v.rdf_type, mammal);
        assert!(f.consequences(&schema).contains(&(Rule::Rdfs9, want)));
        assert!(f.consequences(&fact).contains(&(Rule::Rdfs9, want)));
    }

    #[test]
    fn rdfs5_and_rdfs11_transitivity() {
        let mut f = Fx::new();
        let (a, b, c) = (f.id("a"), f.id("b"), f.id("c"));
        let v = f.vocab;
        let ab = f.add(a, v.sub_property_of, b);
        let bc = f.add(b, v.sub_property_of, c);
        let want = Triple::new(a, v.sub_property_of, c);
        assert!(f.consequences(&ab).contains(&(Rule::Rdfs5, want)));
        assert!(f.consequences(&bc).contains(&(Rule::Rdfs5, want)));

        let mut f = Fx::new();
        let (x, y, z) = (f.id("X"), f.id("Y"), f.id("Z"));
        let v = f.vocab;
        let xy = f.add(x, v.sub_class_of, y);
        let yz = f.add(y, v.sub_class_of, z);
        let want = Triple::new(x, v.sub_class_of, z);
        assert!(f.consequences(&xy).contains(&(Rule::Rdfs11, want)));
        assert!(f.consequences(&yz).contains(&(Rule::Rdfs11, want)));
    }

    #[test]
    fn ext_rules_propagate_domain_and_range() {
        let mut f = Fx::new();
        let (p, q, c, d) = (f.id("p"), f.id("q"), f.id("C"), f.id("D"));
        let v = f.vocab;
        let sp = f.add(p, v.sub_property_of, q);
        let dom = f.add(q, v.domain, c);
        let sc = f.add(c, v.sub_class_of, d);
        let rng = f.add(q, v.range, c);

        // p inherits q's domain / range
        assert!(f
            .consequences(&sp)
            .contains(&(Rule::ExtDomainSubProperty, Triple::new(p, v.domain, c))));
        assert!(f
            .consequences(&dom)
            .contains(&(Rule::ExtDomainSubProperty, Triple::new(p, v.domain, c))));
        assert!(f
            .consequences(&sp)
            .contains(&(Rule::ExtRangeSubProperty, Triple::new(p, v.range, c))));
        assert!(f
            .consequences(&rng)
            .contains(&(Rule::ExtRangeSubProperty, Triple::new(p, v.range, c))));
        // domain/range lift through subclass
        assert!(f
            .consequences(&dom)
            .contains(&(Rule::ExtDomainSubClass, Triple::new(q, v.domain, d))));
        assert!(f
            .consequences(&sc)
            .contains(&(Rule::ExtDomainSubClass, Triple::new(q, v.domain, d))));
        assert!(f
            .consequences(&rng)
            .contains(&(Rule::ExtRangeSubClass, Triple::new(q, v.range, d))));
        assert!(f
            .consequences(&sc)
            .contains(&(Rule::ExtRangeSubClass, Triple::new(q, v.range, d))));
    }

    #[test]
    fn no_spurious_consequences_for_plain_triples() {
        let mut f = Fx::new();
        let (a, p, b) = (f.id("a"), f.id("p"), f.id("b"));
        let fact = f.add(a, p, b);
        assert!(
            f.consequences(&fact).is_empty(),
            "no schema, no consequences"
        );
    }

    #[test]
    fn type_triple_without_subclass_has_no_consequences() {
        let mut f = Fx::new();
        let (a, c) = (f.id("a"), f.id("C"));
        let v = f.vocab;
        let fact = f.add(a, v.rdf_type, c);
        assert!(f.consequences(&fact).is_empty());
    }

    #[test]
    fn self_join_on_cyclic_schema() {
        // a sc b and b sc a: consequences include a sc a and b sc b.
        let mut f = Fx::new();
        let (a, b) = (f.id("A"), f.id("B"));
        let v = f.vocab;
        let ab = f.add(a, v.sub_class_of, b);
        let _ba = f.add(b, v.sub_class_of, a);
        let cons = f.consequences(&ab);
        assert!(cons.contains(&(Rule::Rdfs11, Triple::new(a, v.sub_class_of, a))));
        assert!(cons.contains(&(Rule::Rdfs11, Triple::new(b, v.sub_class_of, b))));
    }

    #[test]
    fn rule_metadata() {
        assert_eq!(Rule::ALL.len(), 10);
        let fig2: Vec<_> = Rule::ALL.iter().filter(|r| r.in_figure2()).collect();
        assert_eq!(fig2.len(), 4);
        for r in Rule::ALL {
            assert!(!r.name().is_empty());
            assert!(r.statement().contains('⊢'));
        }
    }
}
