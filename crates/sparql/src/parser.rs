//! Parser for the SPARQL BGP dialect.
//!
//! Grammar (the paper's conjunctive fragment plus `UNION`, which
//! reformulated queries need):
//!
//! ```text
//! query   := prefix* 'SELECT' 'DISTINCT'? (var+ | '*') 'WHERE' group
//! group   := '{' (bgp | group ('UNION' group)*) '}'
//! bgp     := pattern ('.' pattern)* '.'?
//! pattern := term term term
//! term    := var | '<iri>' | pname | 'a' | literal | number | boolean
//! ```
//!
//! Variables may appear in subject, property and object positions; objects
//! may also be literals (§II-A "RDF querying through SPARQL").

use crate::ast::{
    Aggregate, Bgp, CompareOp, Filter, Modifiers, OrderKey, QTerm, Query, TriplePattern, Variable,
};
use rdf_model::{vocab, Dictionary, Literal, Term};
use rustc_hash::FxHashMap;
use std::fmt;

/// An error raised while parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Human-readable description.
    pub message: String,
}

impl QueryParseError {
    fn new(message: impl Into<String>) -> Self {
        QueryParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for QueryParseError {}

struct Parser<'a, 'd> {
    rest: &'a str,
    dict: &'d mut Dictionary,
    prefixes: FxHashMap<String, String>,
    var_names: Vec<String>,
    var_ids: FxHashMap<String, Variable>,
    filters: Vec<Filter>,
    not_exists: Vec<Bgp>,
}

impl<'a, 'd> Parser<'a, 'd> {
    fn err(&self, msg: impl Into<String>) -> QueryParseError {
        QueryParseError::new(msg)
    }

    fn skip_ws(&mut self) {
        loop {
            self.rest = self.rest.trim_start();
            if let Some(stripped) = self.rest.strip_prefix('#') {
                match stripped.find('\n') {
                    Some(i) => self.rest = &stripped[i + 1..],
                    None => self.rest = "",
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.rest = &self.rest[c.len_utf8()..];
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), QueryParseError> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}' near {:?}", self.excerpt())))
        }
    }

    fn excerpt(&self) -> &str {
        let mut end = self.rest.len().min(24);
        while !self.rest.is_char_boundary(end) {
            end -= 1;
        }
        &self.rest[..end]
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        // ':' counts as a name character: `a:x` is a prefixed name, not the
        // keyword `a` followed by `:x`.
        if self
            .rest
            .get(..kw.len())
            .is_some_and(|head| head.eq_ignore_ascii_case(kw))
            && !self.rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':')
        {
            self.rest = &self.rest[kw.len()..];
            true
        } else {
            false
        }
    }

    fn variable(&mut self) -> Result<Variable, QueryParseError> {
        // caller consumed '?' or '$'
        let end = self
            .rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(self.err("empty variable name"));
        }
        let name = self.rest[..end].to_owned();
        self.rest = &self.rest[end..];
        if let Some(&v) = self.var_ids.get(&name) {
            return Ok(v);
        }
        let v = Variable(
            u16::try_from(self.var_names.len()).map_err(|_| self.err("too many variables"))?,
        );
        self.var_ids.insert(name.clone(), v);
        self.var_names.push(name);
        Ok(v)
    }

    fn iri_ref(&mut self) -> Result<String, QueryParseError> {
        // caller consumed '<'
        let end = self
            .rest
            .find('>')
            .ok_or_else(|| self.err("unterminated IRI"))?;
        let iri = self.rest[..end].to_owned();
        self.rest = &self.rest[end + 1..];
        Ok(iri)
    }

    fn pname(&mut self) -> Result<String, QueryParseError> {
        let end = self
            .rest
            .find(|c: char| {
                c.is_whitespace() || matches!(c, ';' | ',' | '.' | '{' | '}' | '#' | '(' | ')')
            })
            .unwrap_or(self.rest.len());
        let token = &self.rest[..end];
        if token.is_empty() {
            return Err(self.err(format!("expected a term near {:?}", self.excerpt())));
        }
        let colon = token
            .find(':')
            .ok_or_else(|| self.err(format!("'{token}' is not a prefixed name")))?;
        let (prefix, local) = (&token[..colon], &token[colon + 1..]);
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("unknown prefix '{prefix}:'")))?;
        let iri = format!("{ns}{local}");
        self.rest = &self.rest[token.len()..];
        Ok(iri)
    }

    fn string_literal(&mut self) -> Result<String, QueryParseError> {
        // caller consumed '"'
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err(self.err("unterminated string literal"));
            };
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => return Err(self.err(format!("bad escape {other:?}"))),
                },
                c => out.push(c),
            }
        }
    }

    /// Parses one term of a triple pattern.
    fn qterm(&mut self, position: &str) -> Result<QTerm, QueryParseError> {
        self.skip_ws();
        match self.peek() {
            Some('?') | Some('$') => {
                self.rest = &self.rest[1..];
                Ok(QTerm::Var(self.variable()?))
            }
            Some('<') => {
                self.rest = &self.rest[1..];
                let iri = self.iri_ref()?;
                Ok(QTerm::Const(self.dict.encode(&Term::iri(iri))))
            }
            Some('"') => {
                if position != "object" {
                    return Err(self.err(format!("literal not allowed in {position} position")));
                }
                self.rest = &self.rest[1..];
                let lex = self.string_literal()?;
                let term = if self.eat('@') {
                    let end = self
                        .rest
                        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                        .unwrap_or(self.rest.len());
                    let tag = self.rest[..end].to_owned();
                    self.rest = &self.rest[end..];
                    Term::Literal(Literal::lang(lex, &tag))
                } else if self.rest.starts_with("^^") {
                    self.rest = &self.rest[2..];
                    let dt = if self.eat('<') {
                        self.iri_ref()?
                    } else {
                        self.pname()?
                    };
                    Term::Literal(Literal::typed(lex, dt))
                } else {
                    Term::Literal(Literal::plain(lex))
                };
                Ok(QTerm::Const(self.dict.encode(&term)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                if position != "object" {
                    return Err(self.err(format!("literal not allowed in {position} position")));
                }
                let end = self
                    .rest
                    .find(|c: char| {
                        !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E'))
                    })
                    .unwrap_or(self.rest.len());
                let mut token = &self.rest[..end];
                if token.ends_with('.') {
                    token = &token[..token.len() - 1];
                }
                let dt = if token.contains(['e', 'E']) {
                    vocab::XSD_DOUBLE
                } else if token.contains('.') {
                    vocab::XSD_DECIMAL
                } else {
                    vocab::XSD_INTEGER
                };
                let term = Term::Literal(Literal::typed(token, dt));
                self.rest = &self.rest[token.len()..];
                Ok(QTerm::Const(self.dict.encode(&term)))
            }
            Some(_) if position == "property" && self.eat_keyword("a") => {
                Ok(QTerm::Const(self.dict.encode(&Term::iri(vocab::RDF_TYPE))))
            }
            Some(_) if self.eat_keyword("true") => Ok(QTerm::Const(
                self.dict
                    .encode(&Term::Literal(Literal::typed("true", vocab::XSD_BOOLEAN))),
            )),
            Some(_) if self.eat_keyword("false") => Ok(QTerm::Const(
                self.dict
                    .encode(&Term::Literal(Literal::typed("false", vocab::XSD_BOOLEAN))),
            )),
            Some(_) => {
                let iri = self.pname()?;
                Ok(QTerm::Const(self.dict.encode(&Term::iri(iri))))
            }
            None => Err(self.err("unexpected end of query")),
        }
    }

    /// Parses what follows the FILTER keyword: `NOT EXISTS { … }` or a
    /// comparison `( ?v op term )`.
    fn filter_clause(&mut self) -> Result<(), QueryParseError> {
        if self.eat_keyword("NOT") {
            if !self.eat_keyword("EXISTS") {
                return Err(self.err("expected EXISTS after FILTER NOT"));
            }
            self.expect('{')?;
            let inner = self.bgp()?;
            self.expect('}')?;
            if inner.patterns.is_empty() {
                return Err(self.err("empty NOT EXISTS group"));
            }
            self.not_exists.push(inner);
            Ok(())
        } else {
            self.filter()
        }
    }

    /// Parses `FILTER ( ?v op term )`, pushing onto `self.filters`.
    fn filter(&mut self) -> Result<(), QueryParseError> {
        self.expect('(')?;
        self.skip_ws();
        let left = match self.peek() {
            Some('?') | Some('$') => {
                self.rest = &self.rest[1..];
                self.variable()?
            }
            _ => return Err(self.err("FILTER left-hand side must be a variable")),
        };
        self.skip_ws();
        let op = if self.rest.starts_with("!=") {
            self.rest = &self.rest[2..];
            CompareOp::Ne
        } else if self.rest.starts_with("<=") {
            self.rest = &self.rest[2..];
            CompareOp::Le
        } else if self.rest.starts_with(">=") {
            self.rest = &self.rest[2..];
            CompareOp::Ge
        } else if self.eat('=') {
            CompareOp::Eq
        } else if self.eat('<') {
            CompareOp::Lt
        } else if self.eat('>') {
            CompareOp::Gt
        } else {
            return Err(self.err(format!(
                "expected a comparison operator near {:?}",
                self.excerpt()
            )));
        };
        let right = self.qterm("object")?;
        self.expect(')')?;
        self.filters.push(Filter { left, op, right });
        Ok(())
    }

    /// Parses a run of triple patterns (and FILTERs) until `}` (exclusive).
    fn bgp(&mut self) -> Result<Bgp, QueryParseError> {
        let mut patterns = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') || self.rest.is_empty() {
                break;
            }
            if self.eat_keyword("FILTER") {
                self.filter_clause()?;
                self.skip_ws();
                let _ = self.eat('.'); // optional separator after FILTER
                continue;
            }
            let s = self.qterm("subject")?;
            let p = self.qterm("property")?;
            let o = self.qterm("object")?;
            patterns.push(TriplePattern::new(s, p, o));
            self.skip_ws();
            if self.eat('.') {
                continue;
            }
            // FILTER may follow a pattern without a separating dot.
            if self
                .rest
                .get(..6)
                .is_some_and(|h| h.eq_ignore_ascii_case("FILTER"))
            {
                continue;
            }
            break;
        }
        Ok(Bgp::new(patterns))
    }

    /// Parses a group: either a plain BGP or `{g} UNION {g} …`.
    fn group(&mut self) -> Result<Vec<Bgp>, QueryParseError> {
        self.expect('{')?;
        self.skip_ws();
        if self.peek() == Some('{') {
            // union of sub-groups
            let mut bgps = self.group()?;
            loop {
                self.skip_ws();
                if self.eat_keyword("UNION") {
                    bgps.extend(self.group()?);
                } else if self.eat_keyword("FILTER") {
                    self.filter_clause()?;
                } else {
                    break;
                }
            }
            self.expect('}')?;
            Ok(bgps)
        } else {
            let bgp = self.bgp()?;
            self.expect('}')?;
            Ok(vec![bgp])
        }
    }

    fn query(&mut self) -> Result<Query, QueryParseError> {
        // prefixes
        loop {
            self.skip_ws();
            if self.eat_keyword("PREFIX") {
                self.skip_ws();
                let colon = self
                    .rest
                    .find(':')
                    .ok_or_else(|| self.err("expected 'name:' after PREFIX"))?;
                let name = self.rest[..colon].trim().to_owned();
                self.rest = &self.rest[colon + 1..];
                self.skip_ws();
                if !self.eat('<') {
                    return Err(self.err("expected <iri> after PREFIX name:"));
                }
                let iri = self.iri_ref()?;
                self.prefixes.insert(name, iri);
            } else {
                break;
            }
        }
        if !self.eat_keyword("SELECT") {
            return Err(self.err(format!("expected SELECT near {:?}", self.excerpt())));
        }
        let distinct = self.eat_keyword("DISTINCT");
        // projection: variables, '*', or an aggregate expression
        let mut projection = Vec::new();
        let mut star = false;
        let mut aggregate = None;
        self.skip_ws();
        if self.peek() == Some('(') {
            aggregate = Some(self.aggregate_expr()?);
        } else {
            loop {
                self.skip_ws();
                match self.peek() {
                    Some('?') | Some('$') => {
                        self.rest = &self.rest[1..];
                        projection.push(self.variable()?);
                    }
                    Some('*') if projection.is_empty() && !star => {
                        self.rest = &self.rest[1..];
                        star = true;
                    }
                    _ => break,
                }
            }
            if !star && projection.is_empty() {
                return Err(self.err("SELECT needs at least one variable, * or an aggregate"));
            }
        }
        if !self.eat_keyword("WHERE") {
            return Err(self.err(format!("expected WHERE near {:?}", self.excerpt())));
        }
        let bgps = self.group()?;
        let modifiers = self.modifiers()?;
        self.skip_ws();
        if !self.rest.is_empty() {
            return Err(self.err(format!("trailing content: {:?}", self.excerpt())));
        }
        if bgps.iter().all(|b| b.patterns.is_empty()) {
            return Err(self.err("empty WHERE clause"));
        }
        let projection = if star || aggregate.is_some() {
            // '*' and aggregates bind every variable, in first-occurrence
            // order (aggregates count whole solutions).
            (0..self.var_names.len())
                .map(|i| Variable(i as u16))
                .collect()
        } else {
            projection
        };
        // projection variables must occur in the body
        for &v in &projection {
            if !bgps.iter().any(|b| b.variables().contains(&v)) {
                return Err(self.err(format!(
                    "projected variable ?{} does not occur in WHERE",
                    self.var_names[v.index()]
                )));
            }
        }
        for key in &modifiers.order_by {
            if !projection.contains(&key.var) {
                return Err(self.err(format!(
                    "ORDER BY variable ?{} is not projected",
                    self.var_names[key.var.index()]
                )));
            }
        }
        // Filters commute with projection only when their variables are
        // projected (the supported restriction; see ast::Filter docs).
        for f in &self.filters {
            let mut vars = vec![f.left];
            if let QTerm::Var(v) = f.right {
                vars.push(v);
            }
            for v in vars {
                if !projection.contains(&v) {
                    return Err(self.err(format!(
                        "FILTER variable ?{} must be projected (supported FILTER restriction)",
                        self.var_names[v.index()]
                    )));
                }
            }
        }
        Ok(Query {
            var_names: std::mem::take(&mut self.var_names),
            projection,
            distinct,
            bgps,
            filters: std::mem::take(&mut self.filters),
            not_exists: std::mem::take(&mut self.not_exists),
            modifiers,
            aggregate,
        })
    }

    /// Parses `(COUNT( [DISTINCT] * ) AS ?alias)` after peeking `(`.
    fn aggregate_expr(&mut self) -> Result<Aggregate, QueryParseError> {
        self.expect('(')?;
        if !self.eat_keyword("COUNT") {
            return Err(self.err("only the COUNT aggregate is supported"));
        }
        self.expect('(')?;
        let distinct = self.eat_keyword("DISTINCT");
        self.expect('*')?;
        self.expect(')')?;
        if !self.eat_keyword("AS") {
            return Err(self.err("expected AS in aggregate expression"));
        }
        self.skip_ws();
        match self.peek() {
            Some('?') | Some('$') => self.rest = &self.rest[1..],
            _ => return Err(self.err("expected ?alias after AS")),
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(self.err("empty aggregate alias"));
        }
        let alias = self.rest[..end].to_owned();
        self.rest = &self.rest[end..];
        self.expect(')')?;
        Ok(Aggregate::Count { distinct, alias })
    }

    /// Parses trailing solution modifiers in any order.
    fn modifiers(&mut self) -> Result<Modifiers, QueryParseError> {
        let mut m = Modifiers::default();
        loop {
            if self.eat_keyword("ORDER") {
                if !self.eat_keyword("BY") {
                    return Err(self.err("expected BY after ORDER"));
                }
                loop {
                    self.skip_ws();
                    let descending = if self.eat_keyword("DESC") {
                        self.expect('(')?;
                        true
                    } else if self.eat_keyword("ASC") {
                        self.expect('(')?;
                        false
                    } else if matches!(self.peek(), Some('?') | Some('$')) {
                        self.rest = &self.rest[1..];
                        m.order_by.push(OrderKey {
                            var: self.variable()?,
                            descending: false,
                        });
                        continue;
                    } else {
                        break;
                    };
                    self.skip_ws();
                    match self.peek() {
                        Some('?') | Some('$') => self.rest = &self.rest[1..],
                        _ => return Err(self.err("expected a variable in ORDER BY")),
                    }
                    let var = self.variable()?;
                    self.expect(')')?;
                    m.order_by.push(OrderKey { var, descending });
                }
                if m.order_by.is_empty() {
                    return Err(self.err("ORDER BY needs at least one key"));
                }
            } else if self.eat_keyword("LIMIT") {
                m.limit = Some(self.integer()?);
            } else if self.eat_keyword("OFFSET") {
                m.offset = self.integer()?;
            } else {
                return Ok(m);
            }
        }
    }

    fn integer(&mut self) -> Result<usize, QueryParseError> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(self.err("expected a non-negative integer"));
        }
        let n = self.rest[..end]
            .parse::<usize>()
            .map_err(|_| self.err("integer out of range"))?;
        self.rest = &self.rest[end..];
        Ok(n)
    }
}

/// Parses a SPARQL BGP query, interning constants into `dict`.
pub fn parse_query(input: &str, dict: &mut Dictionary) -> Result<Query, QueryParseError> {
    let mut p = Parser {
        rest: input,
        dict,
        prefixes: FxHashMap::default(),
        var_names: Vec::new(),
        var_ids: FxHashMap::default(),
        filters: Vec::new(),
        not_exists: Vec::new(),
    };
    p.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> Result<(Query, Dictionary), QueryParseError> {
        let mut d = Dictionary::new();
        let q = parse_query(q, &mut d)?;
        Ok((q, d))
    }

    #[test]
    fn simple_query() {
        let (q, d) = parse("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ex:b }").unwrap();
        assert_eq!(q.bgps.len(), 1);
        assert_eq!(q.bgps[0].patterns.len(), 1);
        assert_eq!(q.projection, vec![Variable(0)]);
        assert!(!q.distinct);
        let p = q.bgps[0].patterns[0];
        assert_eq!(p.s, QTerm::Var(Variable(0)));
        assert_eq!(p.p.as_const(), d.get_iri_id("http://ex/p"));
        assert_eq!(p.o.as_const(), d.get_iri_id("http://ex/b"));
    }

    #[test]
    fn multi_pattern_and_shared_variables() {
        let (q, _) =
            parse("PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:p ?z . }")
                .unwrap();
        assert_eq!(q.bgps[0].patterns.len(), 2);
        // registration order: projection vars first (?x ?z), then body (?y)
        assert_eq!(q.var_names, vec!["x", "z", "y"]);
        // ?y is the same variable in both patterns
        assert_eq!(q.bgps[0].patterns[0].o, q.bgps[0].patterns[1].s);
    }

    #[test]
    fn distinct_and_star() {
        let (q, _) =
            parse("PREFIX ex: <http://ex/> SELECT DISTINCT * WHERE { ?x ex:p ?y }").unwrap();
        assert!(q.distinct);
        assert_eq!(q.projection.len(), 2, "star projects all variables");
    }

    #[test]
    fn a_keyword_and_type_pattern() {
        let (q, d) = parse("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person }").unwrap();
        let p = q.bgps[0].patterns[0];
        assert_eq!(p.p.as_const(), d.get_iri_id(vocab::RDF_TYPE));
    }

    #[test]
    fn prefix_named_a_is_not_the_type_keyword() {
        let (q, d) = parse("PREFIX a: <http://a/> SELECT ?x WHERE { ?x a:p ?y }").unwrap();
        assert_eq!(
            q.bgps[0].patterns[0].p.as_const(),
            d.get_iri_id("http://a/p")
        );
        assert_eq!(d.get_iri_id(vocab::RDF_TYPE), None);
    }

    #[test]
    fn variable_property_position() {
        let (q, _) = parse("SELECT ?p WHERE { <http://s> ?p <http://o> }").unwrap();
        assert!(q.bgps[0].patterns[0].p.as_var().is_some());
    }

    #[test]
    fn literals_in_object_position() {
        let (q, d) = parse(
            r#"PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:name "Anne" . ?x ex:age 42 . ?x ex:bio "hi"@en . ?x ex:score "7"^^<http://dt> }"#,
        )
        .unwrap();
        assert_eq!(q.bgps[0].patterns.len(), 4);
        assert!(d.get_id(&Term::literal("Anne")).is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("42", vocab::XSD_INTEGER)))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::lang("hi", "en")))
            .is_some());
        assert!(d
            .get_id(&Term::Literal(Literal::typed("7", "http://dt")))
            .is_some());
    }

    #[test]
    fn union_groups() {
        let (q, _) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } UNION { ?y ex:r ?x } }",
        )
        .unwrap();
        assert_eq!(q.bgps.len(), 3);
    }

    #[test]
    fn comments_are_skipped() {
        let (q, _) = parse(
            "# find friends\nPREFIX ex: <http://ex/> # ns\nSELECT ?x WHERE { ?x ex:p ?y # pattern\n }",
        )
        .unwrap();
        assert_eq!(q.bgps[0].patterns.len(), 1);
    }

    #[test]
    fn keywords_case_insensitive() {
        let (q, _) =
            parse("prefix ex: <http://ex/> select distinct ?x where { ?x ex:p ?y }").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn rejects_malformed_queries() {
        for (src, why) in [
            ("SELECT ?x { ?x ?p ?o }", "missing WHERE"),
            ("SELECT WHERE { ?x ?p ?o }", "no projection"),
            ("SELECT ?x WHERE { }", "empty body"),
            ("SELECT ?x WHERE { ?x ex:p ?y }", "unknown prefix"),
            (
                "SELECT ?z WHERE { ?x <http://p> ?y }",
                "unused projection var",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y } garbage",
                "trailing content",
            ),
            (
                "SELECT ?x WHERE { \"lit\" <http://p> ?y }",
                "literal subject",
            ),
            ("SELECT ?x WHERE { ?x \"lit\" ?y }", "literal predicate"),
            ("SELECT ?x WHERE { ?x <http://p ?y }", "unterminated iri"),
        ] {
            assert!(parse(src).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn to_sparql_parse_round_trip() {
        let (q, mut d) = parse(
            "PREFIX ex: <http://ex/> SELECT DISTINCT ?x ?z WHERE { ?x ex:p ?y . ?y a ex:C . ?y ex:q ?z }",
        )
        .unwrap();
        let text = q.to_sparql(&d);
        let q2 = parse_query(&text, &mut d).unwrap();
        assert_eq!(q.bgps, q2.bgps);
        assert_eq!(q.projection, q2.projection);
        assert_eq!(q.distinct, q2.distinct);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The query parser never panics, whatever bytes arrive.
            #[test]
            fn parser_total_on_arbitrary_input(input in "\\PC{0,200}") {
                let mut d = Dictionary::new();
                let _ = parse_query(&input, &mut d);
            }

            /// …including inputs seeded with SPARQL keywords/punctuation.
            #[test]
            fn parser_total_on_sparql_like_input(
                body in "[?a-zA-Z<>{}().*=! \\n]{0,120}",
            ) {
                let mut d = Dictionary::new();
                let _ = parse_query(&format!("SELECT {body}"), &mut d);
            }
        }
    }

    #[test]
    fn dollar_variables_accepted() {
        let (q, _) = parse("SELECT $x WHERE { $x <http://p> ?y }").unwrap();
        assert_eq!(q.var_names[0], "x");
    }

    #[test]
    fn solution_modifiers() {
        let (q, _) =
            parse("SELECT ?x ?y WHERE { ?x <http://p> ?y } ORDER BY ?y DESC(?x) LIMIT 10 OFFSET 5")
                .unwrap();
        assert_eq!(q.modifiers.order_by.len(), 2);
        assert!(!q.modifiers.order_by[0].descending);
        assert!(q.modifiers.order_by[1].descending);
        assert_eq!(q.modifiers.limit, Some(10));
        assert_eq!(q.modifiers.offset, 5);
        // LIMIT/OFFSET in either order
        let (q, _) = parse("SELECT ?x WHERE { ?x <http://p> ?y } OFFSET 2 LIMIT 3").unwrap();
        assert_eq!(q.modifiers.limit, Some(3));
        assert_eq!(q.modifiers.offset, 2);
    }

    #[test]
    fn asc_order_key() {
        let (q, _) = parse("SELECT ?x WHERE { ?x <http://p> ?y } ORDER BY ASC(?x)").unwrap();
        assert_eq!(q.modifiers.order_by.len(), 1);
        assert!(!q.modifiers.order_by[0].descending);
    }

    #[test]
    fn count_aggregate() {
        let (q, _) = parse("SELECT (COUNT(*) AS ?n) WHERE { ?x <http://p> ?y }").unwrap();
        assert_eq!(
            q.aggregate,
            Some(Aggregate::Count {
                distinct: false,
                alias: "n".into()
            })
        );
        let (q, _) = parse("SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?x <http://p> ?y }").unwrap();
        assert_eq!(
            q.aggregate,
            Some(Aggregate::Count {
                distinct: true,
                alias: "n".into()
            })
        );
    }

    #[test]
    fn modifier_errors() {
        for (src, why) in [
            (
                "SELECT ?x WHERE { ?x <http://p> ?y } ORDER BY ?z",
                "unprojected order key",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y } ORDER BY",
                "empty order by",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y } LIMIT",
                "missing limit value",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y } LIMIT -1",
                "negative limit",
            ),
            (
                "SELECT (SUM(*) AS ?n) WHERE { ?x <http://p> ?y }",
                "unsupported aggregate",
            ),
            (
                "SELECT (COUNT(*) AS n) WHERE { ?x <http://p> ?y }",
                "alias without ?",
            ),
        ] {
            assert!(parse(src).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn filters_parse() {
        let (q, d) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?a > 30) . FILTER (?x != ex:bob) }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0].op, CompareOp::Gt);
        assert_eq!(q.filters[1].op, CompareOp::Ne);
        assert_eq!(q.filters[1].right.as_const(), d.get_iri_id("http://ex/bob"));
        // all six operators
        for op in ["=", "!=", "<", "<=", ">", ">="] {
            let src = format!("SELECT ?x ?y WHERE {{ ?x <http://p> ?y . FILTER (?y {op} ?x) }}");
            let (q, _) = parse(&src).unwrap();
            assert_eq!(q.filters.len(), 1, "{op}");
        }
    }

    #[test]
    fn filter_in_union_group() {
        let (q, _) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } FILTER (?x != ex:a) }",
        )
        .unwrap();
        assert_eq!(q.bgps.len(), 2);
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn filter_errors() {
        for (src, why) in [
            (
                "SELECT ?x WHERE { ?x <http://p> ?y . FILTER (?y > 3) }",
                "unprojected filter var",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y . FILTER (3 > ?x) }",
                "constant lhs",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y . FILTER (?x ~ ?y) }",
                "bad operator",
            ),
            (
                "SELECT ?x WHERE { ?x <http://p> ?y . FILTER ?x = ?y }",
                "missing parens",
            ),
        ] {
            assert!(parse(src).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn filters_round_trip_through_to_sparql() {
        let (q, mut d) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?a >= 18) }",
        )
        .unwrap();
        let text = q.to_sparql(&d);
        assert!(text.contains("FILTER (?a >= "), "{text}");
        let q2 = parse_query(&text, &mut d).unwrap();
        assert_eq!(q.filters, q2.filters);
    }

    #[test]
    fn not_exists_parses() {
        let (q, _) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . FILTER NOT EXISTS { ?x ex:banned ?r } }",
        )
        .unwrap();
        assert_eq!(q.not_exists.len(), 1);
        assert_eq!(q.not_exists[0].patterns.len(), 1);
        // ?x is shared with the outer query
        assert_eq!(q.not_exists[0].patterns[0].s, q.bgps[0].patterns[0].s);
        // rejects malformed forms
        for src in [
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER NOT { ?x <http://q> ?z } }",
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER NOT EXISTS { } }",
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER NOT EXISTS ?x <http://q> ?z }",
        ] {
            assert!(parse(src).is_err(), "{src}");
        }
    }

    #[test]
    fn not_exists_round_trips_through_to_sparql() {
        let (q, mut d) = parse(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . FILTER NOT EXISTS { ?x ex:banned ?r } }",
        )
        .unwrap();
        let text = q.to_sparql(&d);
        assert!(text.contains("FILTER NOT EXISTS {"), "{text}");
        let q2 = parse_query(&text, &mut d).unwrap();
        assert_eq!(q.not_exists, q2.not_exists);
    }

    #[test]
    fn modifiers_round_trip_through_to_sparql() {
        let (q, mut d) = parse(
            "SELECT DISTINCT ?x ?y WHERE { ?x <http://p> ?y } ORDER BY ?x DESC(?y) LIMIT 7 OFFSET 3",
        )
        .unwrap();
        let text = q.to_sparql(&d);
        let q2 = parse_query(&text, &mut d).unwrap();
        assert_eq!(q.modifiers, q2.modifiers);
        let (q, d) = parse("SELECT (COUNT(DISTINCT *) AS ?c) WHERE { ?x <http://p> ?y }").unwrap();
        assert!(q.to_sparql(&d).contains("(COUNT(DISTINCT *) AS ?c)"));
    }
}
