//! # sparql — BGP queries: AST, parser, planner, evaluator
//!
//! The paper considers "the well-known subset of SPARQL consisting of basic
//! graph pattern (BGP) queries, also known as SPARQL conjunctive queries"
//! (§II-A). This crate provides:
//!
//! * [`ast`]: variables, triple patterns, BGPs and queries whose body is a
//!   *union of BGPs* — the shape reformulation produces (`q_ref`);
//! * [`parse_query`]: a parser for the SPARQL dialect
//!   `PREFIX… SELECT [DISTINCT] ?v… WHERE { … }` with `UNION` groups;
//! * [`plan`]: a statistics-driven greedy join-order planner;
//! * evaluation ([`evaluate`]): an index-nested-loop evaluator over [`rdf_model::Graph`],
//!   performing plain *query evaluation* — `q(G)` — which yields complete
//!   answers only when `G` is saturated or `q` reformulated, exactly the
//!   dichotomy the paper studies.
//!
//! ```
//! use rdf_model::{Dictionary, Graph};
//! use sparql::{parse_query, evaluate};
//!
//! let mut dict = Dictionary::new();
//! let mut g = Graph::new();
//! rdf_io::parse_turtle(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:Anne ex:hasFriend ex:Marie .
//!     ex:Marie ex:hasFriend ex:Paul .
//! "#, &mut dict, &mut g).unwrap();
//!
//! let q = parse_query(r#"
//!     PREFIX ex: <http://example.org/>
//!     SELECT ?x ?z WHERE { ?x ex:hasFriend ?y . ?y ex:hasFriend ?z }
//! "#, &mut dict).unwrap();
//!
//! let sols = evaluate(&g, &q);
//! assert_eq!(sols.len(), 1); // Anne → Paul
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod dataflow;
mod eval;
mod parser;
pub mod plan;
mod range_eval;
mod union_eval;

pub use ast::{Aggregate, Bgp, Modifiers, OrderKey, QTerm, Query, TriplePattern, Variable};
pub use dataflow::{compile_delta, consolidate_delta, DeltaProgram, DeltaUnsupported};
pub use eval::{
    bgp_has_match, compare_terms, evaluate, evaluate_bgp, evaluate_bgp_with_plan, finalize,
    Solutions,
};
pub use parser::{parse_query, QueryParseError};
pub use range_eval::{
    evaluate_interval, try_evaluate_interval, try_evaluate_interval_cancel, IntervalQuery, RTerm,
    RangeAtom, RangeBgp,
};
pub use union_eval::{
    evaluate_union, try_evaluate_union, try_evaluate_union_cancel, EvalStats, UnionEvalError,
};
