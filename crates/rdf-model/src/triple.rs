//! Encoded triples and lookup patterns.

use crate::dictionary::TermId;
use std::fmt;

/// A dictionary-encoded RDF triple `s p o`.
///
/// Twelve bytes, `Copy`; all reasoning and query-evaluation inner loops
/// operate on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: TermId,
    /// Property (predicate).
    pub p: TermId,
    /// Object (value).
    pub o: TermId,
}

impl Triple {
    /// Builds a triple from its three components.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.s, self.p, self.o)
    }
}

/// A triple lookup pattern: each position is either bound to a [`TermId`] or
/// a wildcard (`None`).
///
/// This is the *storage-level* pattern used by [`crate::Graph`] index
/// probes; named query variables live one layer up, in the `sparql` crate,
/// and compile down to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    /// Subject position; `None` is a wildcard.
    pub s: Option<TermId>,
    /// Property position; `None` is a wildcard.
    pub p: Option<TermId>,
    /// Object position; `None` is a wildcard.
    pub o: Option<TermId>,
}

impl Pattern {
    /// Builds a pattern from optional components.
    #[inline]
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        Pattern { s, p, o }
    }

    /// The pattern matching every triple.
    #[inline]
    pub fn any() -> Self {
        Pattern::default()
    }

    /// True if the triple agrees with every bound position.
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3).
    #[inline]
    pub fn bound_count(&self) -> u8 {
        self.s.is_some() as u8 + self.p.is_some() as u8 + self.o.is_some() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> TermId {
        TermId::from_index(i)
    }

    #[test]
    fn pattern_matches_semantics() {
        let t = Triple::new(id(1), id(2), id(3));
        assert!(Pattern::any().matches(&t));
        assert!(Pattern::new(Some(id(1)), None, None).matches(&t));
        assert!(Pattern::new(Some(id(1)), Some(id(2)), Some(id(3))).matches(&t));
        assert!(!Pattern::new(Some(id(9)), None, None).matches(&t));
        assert!(!Pattern::new(None, Some(id(9)), None).matches(&t));
        assert!(!Pattern::new(None, None, Some(id(9))).matches(&t));
    }

    #[test]
    fn bound_count() {
        assert_eq!(Pattern::any().bound_count(), 0);
        assert_eq!(
            Pattern::new(Some(id(0)), None, Some(id(1))).bound_count(),
            2
        );
        assert_eq!(
            Pattern::new(Some(id(0)), Some(id(0)), Some(id(0))).bound_count(),
            3
        );
    }

    #[test]
    fn triple_is_small() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }
}
