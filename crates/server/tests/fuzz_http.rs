//! Robustness of the server's wire layer against hostile bytes, in the
//! style of `rdf-io/tests/corrupt_inputs.rs`: whatever arrives on the
//! socket — truncations, garbage splices, oversized heads, broken chunked
//! framing — the HTTP parser and the update-body decoder return a value
//! (`Complete`/`Incomplete`/`Error`, `Ok`/`Err`); they never panic, and
//! `Complete` never claims more bytes than the buffer holds.

mod common;

use common::ScriptedIo;
use proptest::prelude::*;
use webreason_server::conn::Connection;
use webreason_server::http::{parse_request, write_response, Limits, ParseOutcome, Request};
use webreason_server::proto::decode_update_body;

const VALID_POST: &[u8] =
    b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: text/plain\r\nContent-Length: 12\r\n\r\nSELECT WHERE";
const VALID_CHUNKED: &[u8] =
    b"POST /update HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
const VALID_UPDATE: &str = "# comment\n\
     insert <http://ex/a> <http://ex/p> \"caf\\u00E9\"@en .\n\
     delete <http://ex/a> <http://ex/p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";

/// Every outcome is fine; panicking or over-consuming is the only failure.
fn total(buf: &[u8], limits: &Limits) -> Result<(), String> {
    match parse_request(buf, limits) {
        ParseOutcome::Complete(_, consumed) if consumed > buf.len() => Err(format!(
            "consumed {consumed} of a {}-byte buffer",
            buf.len()
        )),
        _ => Ok(()),
    }
}

proptest! {
    /// Arbitrary bytes never panic the request parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..600)) {
        prop_assert!(total(&bytes, &Limits::default()).is_ok());
    }

    /// A valid request cut off at any byte is handled totally — and the
    /// untruncated document still parses as one complete request.
    #[test]
    fn truncated_requests_never_panic(at in 0usize..=120) {
        for doc in [VALID_POST, VALID_CHUNKED] {
            let cut = &doc[..at.min(doc.len())];
            prop_assert!(total(cut, &Limits::default()).is_ok());
            prop_assert!(matches!(
                parse_request(doc, &Limits::default()),
                ParseOutcome::Complete(_, n) if n == doc.len()
            ));
        }
    }

    /// Garbage spliced anywhere into a valid request never panics.
    #[test]
    fn garbage_splice_never_panics(
        at in 0usize..=120,
        garbage in proptest::collection::vec(0u8..=255u8, 0..40),
    ) {
        for doc in [VALID_POST, VALID_CHUNKED] {
            let cut = at.min(doc.len());
            let mut spliced = doc[..cut].to_vec();
            spliced.extend_from_slice(&garbage);
            spliced.extend_from_slice(&doc[cut..]);
            prop_assert!(total(&spliced, &Limits::default()).is_ok());
        }
    }

    /// Flipping any single byte of valid chunked framing is handled
    /// totally — corrupt sizes and missing CRLFs become `Error`s or
    /// `Incomplete`, not unwinds.
    #[test]
    fn corrupt_chunked_framing_never_panics(at in 0usize..90, flip in 1u8..=255) {
        let mut doc = VALID_CHUNKED.to_vec();
        let i = at % doc.len();
        doc[i] ^= flip;
        prop_assert!(total(&doc, &Limits::default()).is_ok());
    }

    /// Pathological head shapes stay bounded: unbounded header repetition
    /// and absurd request-line lengths are rejected via limits, never
    /// buffered forever or panicked on.
    #[test]
    fn oversized_heads_are_errors_not_panics(
        n_headers in 0usize..80,
        target_len in 1usize..4000,
    ) {
        let limits = Limits { max_head_bytes: 1024, max_body_bytes: 1024, max_headers: 16 };
        let mut doc = format!("GET /{} HTTP/1.1\r\n", "x".repeat(target_len)).into_bytes();
        for i in 0..n_headers {
            doc.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        doc.extend_from_slice(b"\r\n");
        prop_assert!(total(&doc, &limits).is_ok());
        if target_len > 1024 {
            prop_assert!(matches!(
                parse_request(&doc, &limits),
                ParseOutcome::Error(e) if e.status() == 431
            ));
        }
    }

    /// A Content-Length body round-trips arbitrary bytes exactly.
    #[test]
    fn content_length_bodies_round_trip(
        body in proptest::collection::vec(0u8..=255u8, 0..200),
    ) {
        let mut doc = format!(
            "POST /update HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        doc.extend_from_slice(&body);
        match parse_request(&doc, &Limits::default()) {
            ParseOutcome::Complete(req, consumed) => {
                prop_assert_eq!(&req.body, &body);
                prop_assert_eq!(consumed, doc.len());
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    /// The update decoder is total over arbitrary text.
    #[test]
    fn arbitrary_update_bodies_never_panic(body in "\\PC{0,120}") {
        let _ = decode_update_body(&body);
    }

    /// Garbage spliced into a valid update script never panics the
    /// decoder — and the unspliced script still decodes.
    #[test]
    fn spliced_update_bodies_never_panic(at in 0usize..=120, garbage in "\\PC{0,40}") {
        let mut cut = at.min(VALID_UPDATE.len());
        while !VALID_UPDATE.is_char_boundary(cut) {
            cut -= 1;
        }
        let spliced = format!(
            "{}{garbage}{}",
            &VALID_UPDATE[..cut],
            &VALID_UPDATE[cut..]
        );
        let _ = decode_update_body(&spliced);
        prop_assert_eq!(decode_update_body(VALID_UPDATE).expect("valid script").len(), 2);
    }
}

// --- the event-loop read path ------------------------------------------
//
// The reactor feeds the parser through `Connection::on_readable`, one
// readiness event at a time, with reads fragmented however the kernel
// feels like. The contract: fragmentation is unobservable — the bytes
// written back are identical to feeding the whole document in one read.
// This is what forced the chunk-size doom check to be prefix-stable.

/// Answers every request with a deterministic echo so response bytes
/// identify exactly which requests the machine dispatched, in order.
fn respond_all(conn: &mut Connection, io: &mut ScriptedIo, first: Option<Box<Request>>) {
    let mut next = first;
    while let Some(r) = next.take() {
        let body = format!("{} {} {}b", r.method, r.target, r.body.len());
        let resp = write_response(200, "OK", "text/plain", &[], body.as_bytes());
        next = conn.on_response(resp, false, io, 0);
    }
}

/// Replays `doc` through a connection as a series of readiness events,
/// one fragment per event (`frags` sizes, then the remainder), followed
/// by EOF. Returns every byte the connection wrote.
fn drive(doc: &[u8], frags: &[usize]) -> Vec<u8> {
    let mut io = ScriptedIo::new();
    let mut conn = Connection::new(Limits::default(), 1_000, 0);
    let mut pos = 0usize;
    let mut frags = frags.iter().copied();
    while pos < doc.len() && !conn.is_closed() {
        let n = frags
            .next()
            .unwrap_or(doc.len() - pos)
            .clamp(1, doc.len() - pos);
        io.push_data(&doc[pos..pos + n]);
        pos += n;
        let req = conn.on_readable(&mut io, 0);
        respond_all(&mut conn, &mut io, req);
    }
    if !conn.is_closed() {
        io.push_eof();
        let req = conn.on_readable(&mut io, 0);
        respond_all(&mut conn, &mut io, req);
    }
    io.written
}

proptest! {
    /// Corpus documents — including a pipelined pair — produce
    /// byte-identical responses whether read whole or in 1..=7-byte
    /// fragments.
    #[test]
    fn fragmented_reads_match_whole_buffer_on_the_corpus(
        frags in proptest::collection::vec(1usize..=7, 0..200),
    ) {
        let mut pipelined = VALID_POST.to_vec();
        pipelined.extend_from_slice(VALID_CHUNKED);
        for doc in [VALID_POST.to_vec(), VALID_CHUNKED.to_vec(), pipelined] {
            let whole = drive(&doc, &[doc.len()]);
            let split = drive(&doc, &frags);
            prop_assert_eq!(
                String::from_utf8_lossy(&split),
                String::from_utf8_lossy(&whole)
            );
            prop_assert!(!whole.is_empty(), "corpus docs always get answered");
        }
    }

    /// Equivalence survives corruption: flip any byte of the chunked
    /// document and the error responses land identically regardless of
    /// read fragmentation. (The old ad-hoc chunk-line heuristic failed
    /// exactly this property.)
    #[test]
    fn fragmented_reads_match_whole_buffer_under_corruption(
        at in 0usize..90,
        flip in 1u8..=255,
        frags in proptest::collection::vec(1usize..=7, 0..120),
    ) {
        let mut doc = VALID_CHUNKED.to_vec();
        let i = at % doc.len();
        doc[i] ^= flip;
        let whole = drive(&doc, &[doc.len()]);
        let split = drive(&doc, &frags);
        prop_assert_eq!(
            String::from_utf8_lossy(&split),
            String::from_utf8_lossy(&whole)
        );
    }

    /// Arbitrary bytes through the event-loop read path: no panics, and
    /// fragmentation is still unobservable.
    #[test]
    fn fragmented_arbitrary_bytes_never_panic_and_match(
        bytes in proptest::collection::vec(0u8..=255u8, 0..300),
        frags in proptest::collection::vec(1usize..=7, 0..120),
    ) {
        let whole = drive(&bytes, &[bytes.len()]);
        let split = drive(&bytes, &frags);
        prop_assert_eq!(split, whole);
    }
}
