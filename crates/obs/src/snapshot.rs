//! Point-in-time, serialisable copies of a registry's metrics.
//!
//! [`MetricsSnapshot`] is the interchange type of the observability layer:
//! the CLI serialises it (JSON via serde, or Prometheus text format via
//! [`MetricsSnapshot::to_prometheus`]), the bench binaries embed it in
//! their reports, and `core::cost::ObservedCosts` reads per-operation
//! means out of it to compute Figure 3-style amortisation thresholds from
//! observed runtimes. All vectors are sorted by name (the registry
//! iterates `BTreeMap`s), so snapshots diff cleanly in golden tests.

use crate::histogram::{bucket_bounds, Histogram};
use serde::Serialize;
use std::collections::BTreeSet;

/// One counter: a name and its monotonic value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterSnapshot {
    /// Metric name (`subsystem.operation.unit`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BucketSnapshot {
    /// Inclusive upper bound of the bucket's value range.
    pub le: u64,
    /// Observations that landed in this bucket (non-cumulative).
    pub count: u64,
}

/// One histogram: totals plus its non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name (`subsystem.operation.unit`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Non-empty buckets, ascending by `le`.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Snapshots `h` under `name`, keeping only non-empty buckets.
    pub fn of(name: &str, h: &Histogram) -> HistogramSnapshot {
        let buckets = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| BucketSnapshot {
                le: bucket_bounds(i).1,
                count: *c,
            })
            .collect();
        HistogramSnapshot {
            name: name.to_owned(),
            count: h.count(),
            sum: h.sum(),
            buckets,
        }
    }

    /// Arithmetic mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One aggregated span: `(name, parent)` with how often it closed and the
/// summed wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanSnapshot {
    /// Span name (`subsystem.operation`).
    pub name: String,
    /// Name of the span that was open on the same thread when this one
    /// started, or `None` for roots.
    pub parent: Option<String>,
    /// How many spans with this (name, parent) finished.
    pub count: u64,
    /// Summed wall-clock microseconds.
    pub total_us: u64,
}

/// A consistent copy of every metric in a registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span aggregates, ascending by (name, parent).
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// The named counter's value, or `None` if it never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named histogram, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The aggregate of one exact (span, parent) pair.
    pub fn span(&self, name: &str, parent: Option<&str>) -> Option<&SpanSnapshot> {
        self.spans
            .iter()
            .find(|s| s.name == name && s.parent.as_deref() == parent)
    }

    /// Total wall-clock microseconds of the named span across all parents.
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_us)
            .sum()
    }

    /// Total completions of the named span across all parents.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.count)
            .sum()
    }

    /// The distinct subsystems (the segment before the first `.`) seen in
    /// any metric name — how the CLI proves coverage.
    pub fn subsystems(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let names = self
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .chain(self.spans.iter().map(|s| s.name.as_str()));
        for name in names {
            let subsystem = name.split('.').next().unwrap_or(name);
            out.insert(subsystem.to_owned());
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `_total` counters, histograms with
    /// cumulative `le` buckets and `+Inf`, spans as `count`/`sum_us`
    /// counters labelled by name and parent.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = format!("{}_total", sanitize_metric_name(&c.name));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", c.value));
        }
        for h in &self.histograms {
            let name = sanitize_metric_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}\n", b.le));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE webreason_span_count_total counter\n");
            out.push_str("# TYPE webreason_span_us_total counter\n");
            for s in &self.spans {
                let labels = format!(
                    "{{name=\"{}\",parent=\"{}\"}}",
                    escape_label_value(&s.name),
                    escape_label_value(s.parent.as_deref().unwrap_or(""))
                );
                out.push_str(&format!("webreason_span_count_total{labels} {}\n", s.count));
                out.push_str(&format!("webreason_span_us_total{labels} {}\n", s.total_us));
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed `webreason_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("webreason_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Lints Prometheus text-format output line by line: every line must be a
/// `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// legal metric name and a parseable value. Returns the first offending
/// line. Backs the CI assertion that `webreason metrics --format
/// prometheus` stays machine-readable.
pub fn lint_prometheus_text(text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ") || rest.is_empty()) {
                return Err(format!("line {n}: unknown comment form: {line:?}"));
            }
            continue;
        }
        // Split `name{labels}` from the value.
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                (head, tail.trim())
            }
            None => match line.split_once(' ') {
                Some((h, t)) => (h, t.trim()),
                None => return Err(format!("line {n}: no value: {line:?}")),
            },
        };
        let bare_name = name_part.split('{').next().unwrap_or("");
        if bare_name.is_empty()
            || !bare_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || bare_name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {n}: bad metric name {bare_name:?}"));
        }
        if let Some(labels) = name_part.strip_prefix(bare_name) {
            let well_formed = labels.starts_with('{')
                && labels.ends_with('}')
                && labels.matches('"').count() % 2 == 0;
            if !labels.is_empty() && !well_formed {
                return Err(format!("line {n}: bad label set {labels:?}"));
            }
        }
        if value_part.parse::<f64>().is_err() && value_part != "+Inf" && value_part != "-Inf" {
            return Err(format!("line {n}: bad sample value {value_part:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsSnapshot {
        let reg = Registry::new();
        let clock = reg.install_manual_clock();
        reg.add("rdfs.saturate.rule_firings", 7);
        reg.record("core.maintain.instance_insert_us", 3);
        reg.record("core.maintain.instance_insert_us", 300);
        {
            let _outer = reg.span("sparql.union.total");
            clock.advance(10);
            let _inner = reg.span("sparql.union.eval");
            clock.advance(4);
        }
        reg.snapshot()
    }

    #[test]
    fn accessors_find_metrics_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("rdfs.saturate.rule_firings"), Some(7));
        assert_eq!(snap.counter("rdfs.saturate.nope"), None);
        let h = snap.histogram("core.maintain.instance_insert_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 303);
        assert_eq!(h.mean(), Some(151.5));
        assert_eq!(snap.span_count("sparql.union.eval"), 1);
        assert_eq!(snap.span_total_us("sparql.union.eval"), 4);
        assert_eq!(snap.span_total_us("sparql.union.total"), 14);
        assert!(snap
            .span("sparql.union.eval", Some("sparql.union.total"))
            .is_some());
        let subs: Vec<String> = snap.subsystems().into_iter().collect();
        assert_eq!(subs, vec!["core", "rdfs", "sparql"]);
    }

    #[test]
    fn json_round_trip_shape() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"counters\":["));
        assert!(json.contains("\"name\":\"rdfs.saturate.rule_firings\",\"value\":7"));
        assert!(json.contains("\"parent\":\"sparql.union.total\""));
        assert!(json.contains("\"parent\":null"));
    }

    #[test]
    fn prometheus_output_is_lintable_and_cumulative() {
        let snap = sample();
        let text = snap.to_prometheus();
        lint_prometheus_text(&text).unwrap();
        assert!(text.contains("webreason_rdfs_saturate_rule_firings_total 7\n"));
        // 3 lands in bucket [2,3] (le=3), 300 in [256,511]; cumulative counts.
        assert!(text.contains("webreason_core_maintain_instance_insert_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("webreason_core_maintain_instance_insert_us_bucket{le=\"511\"} 2\n"));
        assert!(text.contains("webreason_core_maintain_instance_insert_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("webreason_core_maintain_instance_insert_us_sum 303\n"));
        assert!(text.contains(
            "webreason_span_us_total{name=\"sparql.union.eval\",parent=\"sparql.union.total\"} 4\n"
        ));
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        assert!(lint_prometheus_text("ok_metric 1\n").is_ok());
        assert!(lint_prometheus_text("bad metric name 1\n").is_err());
        assert!(lint_prometheus_text("metric notanumber\n").is_err());
        assert!(lint_prometheus_text("# CHATTER hello\n").is_err());
        assert!(lint_prometheus_text("metric{le=\"4\"} 2\n").is_ok());
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let snap = MetricsSnapshot::empty();
        assert!(snap.is_empty());
        assert!(snap.subsystems().is_empty());
        assert_eq!(snap.to_prometheus(), "");
        lint_prometheus_text(&snap.to_prometheus()).unwrap();
    }
}
