//! Amortisation thresholds — the reproduction of **Figure 3**.
//!
//! From the paper: "the saturation threshold for a query q is: the minimum
//! number of times n that q needs to be run, so that: the cost of
//! saturating the graph (independent of q), plus the cost of evaluating n
//! times q(G∞), is smaller than n times the cost of evaluating q_ref(G).
//! The larger the threshold, the 'harder' it is to amortize saturation.
//! […] Similarly, the threshold of q for an instance (or schema) deletion
//! (or insertion), is the minimum number of times one needs to run q so
//! that the cost of maintaining the saturation G∞ after an instance (or
//! schema) insertion (resp. deletion) is smaller than the cost of running
//! n times q_ref(G)."
//!
//! Solving `fixed + n·eval_sat ≤ n·eval_ref` gives
//! `n = ⌈fixed / (eval_ref − eval_sat)⌉` when evaluating on the saturated
//! graph is the faster side, and *no finite threshold* otherwise — the
//! fixed cost then never amortises, which Fig. 3's tallest bars
//! (> 10⁷ runs) approach in spirit: "in some cases it takes more than 10
//! million runs to amortize".

use crate::cost::{CostProfile, ObservedCosts};
use serde::Serialize;
use std::fmt;

/// A threshold: the run count after which saturation wins, if ever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Threshold {
    /// Saturation amortises after this many query runs.
    Amortizes(u64),
    /// `q_ref(G)` is at least as fast as `q(G∞)`: the fixed cost never
    /// pays off.
    Never,
}

impl Threshold {
    /// Computes the threshold for a fixed cost against the two evaluation
    /// costs (all seconds).
    pub fn compute(fixed: f64, eval_sat: f64, eval_ref: f64) -> Threshold {
        let gain = eval_ref - eval_sat;
        if gain > 0.0 && fixed.is_finite() {
            Threshold::Amortizes((fixed / gain).ceil().max(1.0) as u64)
        } else {
            Threshold::Never
        }
    }

    /// The run count, or `None` for [`Threshold::Never`].
    pub fn runs(self) -> Option<u64> {
        match self {
            Threshold::Amortizes(n) => Some(n),
            Threshold::Never => None,
        }
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threshold::Amortizes(n) => write!(f, "{n}"),
            Threshold::Never => write!(f, "∞"),
        }
    }
}

/// The five Fig. 3 thresholds for one query.
#[derive(Debug, Clone, Serialize)]
pub struct QueryThresholds {
    /// Query name.
    pub name: String,
    /// Runs to amortise saturating from scratch.
    pub saturation: Threshold,
    /// Runs to amortise maintaining `G∞` after one instance insertion.
    pub instance_insert: Threshold,
    /// … after one instance deletion.
    pub instance_delete: Threshold,
    /// … after one schema insertion.
    pub schema_insert: Threshold,
    /// … after one schema deletion.
    pub schema_delete: Threshold,
}

impl QueryThresholds {
    /// The five thresholds in Fig. 3's legend order, with labels.
    pub fn series(&self) -> [(&'static str, Threshold); 5] {
        [
            ("saturation", self.saturation),
            ("instance insertion", self.instance_insert),
            ("instance deletion", self.instance_delete),
            ("schema insertion", self.schema_insert),
            ("schema deletion", self.schema_delete),
        ]
    }
}

/// Computes the Fig. 3 thresholds for every query of a cost profile.
pub fn compute_thresholds(profile: &CostProfile) -> Vec<QueryThresholds> {
    profile
        .queries
        .iter()
        .map(|q| {
            // Reformulation happens at query run-time, so its (small) cost
            // is part of each q_ref run — as in the paper, where
            // "reformulation is made at query run-time".
            let eval_ref = q.eval_reformulated + q.reformulation_time;
            let t = |fixed: f64| Threshold::compute(fixed, q.eval_saturated, eval_ref);
            QueryThresholds {
                name: q.name.clone(),
                saturation: t(profile.saturation_time),
                instance_insert: t(profile.maintenance.instance_insert),
                instance_delete: t(profile.maintenance.instance_delete),
                schema_insert: t(profile.maintenance.schema_insert),
                schema_delete: t(profile.maintenance.schema_delete),
            }
        })
        .collect()
}

/// Figure 3-style thresholds computed from *observed* runtimes (an
/// [`ObservedCosts`] read out of a live metrics snapshot) instead of a
/// synthetic [`CostProfile`] — the same five-series shape, one workload
/// aggregate instead of one entry per named query.
#[derive(Debug, Clone, Serialize)]
pub struct ObservedThresholds {
    /// Runs to amortise one observed-mean saturation.
    pub saturation: Threshold,
    /// Runs to amortise one observed-mean instance insertion.
    pub instance_insert: Threshold,
    /// … instance deletion.
    pub instance_delete: Threshold,
    /// … schema insertion.
    pub schema_insert: Threshold,
    /// … schema deletion.
    pub schema_delete: Threshold,
}

impl ObservedThresholds {
    /// The five thresholds in Fig. 3's legend order, with labels.
    pub fn series(&self) -> [(&'static str, Threshold); 5] {
        [
            ("saturation", self.saturation),
            ("instance insertion", self.instance_insert),
            ("instance deletion", self.instance_delete),
            ("schema insertion", self.schema_insert),
            ("schema deletion", self.schema_delete),
        ]
    }
}

/// Computes the Fig. 3 thresholds from observed per-operation means:
/// `n = ⌈fixed / (eval_ref − eval_sat)⌉`, with `eval_ref` and `eval_sat`
/// the observed mean costs of the two answer paths. Returns `None` when
/// the snapshot did not observe both paths (no ratio to compute).
pub fn observed_thresholds(costs: &ObservedCosts) -> Option<ObservedThresholds> {
    if !costs.covers_both_paths() {
        return None;
    }
    let t = |fixed: f64| Threshold::compute(fixed, costs.eval_saturated, costs.eval_reformulated);
    Some(ObservedThresholds {
        saturation: t(costs.saturation),
        instance_insert: t(costs.maintenance.instance_insert),
        instance_delete: t(costs.maintenance.instance_delete),
        schema_insert: t(costs.maintenance.schema_insert),
        schema_delete: t(costs.maintenance.schema_delete),
    })
}

/// Interval-encoding threshold terms: the Fig. 3 arithmetic asked with
/// the LiteMat interval strategy in the mix. Its fixed cost is not a
/// saturation but the *re-encode* of the interval dictionary after a
/// schema change (instance updates cost it nothing).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IntervalThresholds {
    /// Runs of the interval evaluator needed for its per-run speedup over
    /// the union evaluator to pay back one schema re-encode. `Never` when
    /// the union evaluator is at least as fast per run.
    pub reencode_vs_reformulation: Threshold,
    /// Runs needed for a from-scratch saturation to pay off against
    /// answering with interval rewriting instead. `Never` when interval
    /// evaluation is at least as fast as `q(G∞)` — then materialising
    /// never amortises at all.
    pub saturation_vs_interval: Threshold,
}

/// Computes the interval-strategy thresholds from observed per-operation
/// means (see [`ObservedCosts::covers_interval`]). Returns `None` when the
/// snapshot never ran the interval evaluator; the `saturation_vs_interval`
/// term is [`Threshold::Never`] when no saturation cost was observed.
pub fn interval_thresholds(costs: &ObservedCosts) -> Option<IntervalThresholds> {
    if !costs.covers_interval() || costs.eval_reformulated_runs == 0 {
        return None;
    }
    let saturation_vs_interval = if costs.saturation_runs > 0 {
        Threshold::compute(costs.saturation, costs.eval_saturated, costs.eval_interval)
    } else {
        Threshold::Never
    };
    Some(IntervalThresholds {
        reencode_vs_reformulation: Threshold::compute(
            costs.interval_reencode,
            costs.eval_interval,
            costs.eval_reformulated,
        ),
        saturation_vs_interval,
    })
}

/// The spread of finite thresholds across queries and update kinds, in
/// orders of magnitude — the paper's headline observation is a spread of
/// "up to 7 orders of magnitude" on one database.
pub fn spread_orders_of_magnitude(thresholds: &[QueryThresholds]) -> f64 {
    let finite: Vec<f64> = thresholds
        .iter()
        .flat_map(|qt| qt.series().into_iter().filter_map(|(_, t)| t.runs()))
        .map(|n| n as f64)
        .collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, 0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    if finite.is_empty() || min <= 0.0 {
        0.0
    } else {
        (max / min).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{MaintenanceCosts, QueryCosts};

    fn qc(name: &str, eval_sat: f64, reform: f64, eval_ref: f64) -> QueryCosts {
        QueryCosts {
            name: name.into(),
            eval_saturated: eval_sat,
            reformulation_time: reform,
            eval_reformulated: eval_ref,
            branches: 2,
            shared_prefix_scans: 0,
            scan_cache_hits: 0,
            answers: 1,
        }
    }

    fn synthetic_profile() -> CostProfile {
        CostProfile {
            base_triples: 1000,
            saturated_triples: 1500,
            saturation_time: 1.0,
            maintenance_algorithm: "counting".into(),
            maintenance: MaintenanceCosts {
                instance_insert: 0.001,
                instance_delete: 0.002,
                schema_insert: 0.05,
                schema_delete: 0.1,
            },
            queries: vec![
                // reformulated eval is 10 ms slower → saturation pays after
                // 1.0 / 0.01 = 100 runs
                qc("fast-gain", 0.010, 0.0, 0.020),
                // tiny gain of 1 µs → saturation needs 1M runs
                qc("tiny-gain", 0.010, 0.0, 0.010001),
                // reformulation is FASTER → never amortises
                qc("ref-wins", 0.010, 0.0, 0.005),
            ],
        }
    }

    #[test]
    fn threshold_formula() {
        assert_eq!(
            Threshold::compute(1.0, 0.01, 0.02),
            Threshold::Amortizes(100)
        );
        assert_eq!(
            Threshold::compute(0.0001, 0.01, 0.02),
            Threshold::Amortizes(1),
            "minimum is 1 run"
        );
        assert_eq!(Threshold::compute(1.0, 0.02, 0.01), Threshold::Never);
        assert_eq!(
            Threshold::compute(1.0, 0.01, 0.01),
            Threshold::Never,
            "tie → never"
        );
    }

    #[test]
    fn figure3_shape_on_synthetic_profile() {
        let ths = compute_thresholds(&synthetic_profile());
        assert_eq!(ths.len(), 3);

        let fast = &ths[0];
        assert_eq!(fast.saturation, Threshold::Amortizes(100));
        assert_eq!(
            fast.instance_insert,
            Threshold::Amortizes(1),
            "cheap maintenance amortises immediately"
        );
        assert_eq!(fast.schema_delete, Threshold::Amortizes(10), "0.1 / 0.01");

        let tiny = &ths[1];
        let n = tiny.saturation.runs().unwrap();
        assert!(n >= 900_000, "tiny gain → huge threshold, got {n}");

        let never = &ths[2];
        assert_eq!(never.saturation, Threshold::Never);
        assert_eq!(never.schema_delete, Threshold::Never);
    }

    #[test]
    fn thresholds_ordered_by_update_cost() {
        // For a fixed query, costlier updates have larger thresholds.
        let ths = compute_thresholds(&synthetic_profile());
        let fast = &ths[0];
        let runs = |t: Threshold| t.runs().unwrap();
        assert!(runs(fast.instance_insert) <= runs(fast.instance_delete));
        assert!(runs(fast.instance_delete) <= runs(fast.schema_insert));
        assert!(runs(fast.schema_insert) <= runs(fast.schema_delete));
        assert!(runs(fast.schema_delete) <= runs(fast.saturation));
    }

    #[test]
    fn spread_measures_orders_of_magnitude() {
        let ths = compute_thresholds(&synthetic_profile());
        let spread = spread_orders_of_magnitude(&ths);
        assert!(spread >= 5.0, "1 .. 1M+ is ≥ 5 orders, got {spread}");
    }

    #[test]
    fn observed_thresholds_match_hand_computed_ratios() {
        let costs = ObservedCosts {
            saturation: 2.0,
            saturation_runs: 1,
            maintenance: MaintenanceCosts {
                instance_insert: 0.004,
                instance_delete: 0.006,
                schema_insert: 0.03,
                schema_delete: 0.05,
            },
            updates_observed: 20,
            eval_saturated: 0.001,
            eval_saturated_runs: 5,
            eval_reformulated: 0.003,
            eval_reformulated_runs: 5,
            ..ObservedCosts::default()
        };
        // gain = 0.003 − 0.001 = 0.002 s per run; n = ⌈fixed / gain⌉.
        let t = observed_thresholds(&costs).expect("both paths observed");
        assert_eq!(t.saturation, Threshold::Amortizes(1000)); // 2.0 / 0.002
        assert_eq!(t.instance_insert, Threshold::Amortizes(2)); // 0.004 / 0.002
        assert_eq!(t.instance_delete, Threshold::Amortizes(3));
        assert_eq!(t.schema_insert, Threshold::Amortizes(15));
        assert_eq!(t.schema_delete, Threshold::Amortizes(25));
        assert_eq!(t.series().len(), 5);
    }

    #[test]
    fn observed_thresholds_need_both_paths_and_a_gain() {
        let base = ObservedCosts {
            eval_saturated: 0.001,
            eval_saturated_runs: 1,
            eval_reformulated: 0.003,
            eval_reformulated_runs: 1,
            ..ObservedCosts::default()
        };
        assert!(observed_thresholds(&base).is_some());
        // Missing either path → no ratio to compute.
        for one_sided in [
            ObservedCosts {
                eval_saturated_runs: 0,
                ..base
            },
            ObservedCosts {
                eval_reformulated_runs: 0,
                ..base
            },
        ] {
            assert!(observed_thresholds(&one_sided).is_none());
        }
        // Reformulation observed faster → every threshold is Never.
        let ref_wins = ObservedCosts {
            eval_saturated: 0.005,
            ..base
        };
        let t = observed_thresholds(&ref_wins).unwrap();
        assert!(t.series().iter().all(|(_, th)| *th == Threshold::Never));
    }

    #[test]
    fn interval_thresholds_pin_the_reencode_payback() {
        let costs = ObservedCosts {
            saturation: 2.0,
            saturation_runs: 1,
            eval_saturated: 0.001,
            eval_saturated_runs: 5,
            eval_reformulated: 0.004,
            eval_reformulated_runs: 5,
            eval_interval: 0.002,
            eval_interval_runs: 5,
            interval_reencode: 0.01,
            interval_reencodes: 1,
            ..ObservedCosts::default()
        };
        let t = interval_thresholds(&costs).expect("interval path observed");
        // Re-encode 0.01 s pays back at 2 ms/run over the union evaluator.
        assert_eq!(t.reencode_vs_reformulation, Threshold::Amortizes(5));
        // Saturation (2 s) against a 1 ms/run gain over interval eval.
        assert_eq!(t.saturation_vs_interval, Threshold::Amortizes(2000));

        // Interval faster than union but never observed → no terms.
        assert!(interval_thresholds(&ObservedCosts {
            eval_interval_runs: 0,
            ..costs
        })
        .is_none());
        // Union faster per run → the re-encode never pays back.
        let union_wins = ObservedCosts {
            eval_interval: 0.005,
            ..costs
        };
        let t = interval_thresholds(&union_wins).unwrap();
        assert_eq!(t.reencode_vs_reformulation, Threshold::Never);
        // No saturation observed → that side stays Never.
        let no_sat = ObservedCosts {
            saturation_runs: 0,
            ..costs
        };
        assert_eq!(
            interval_thresholds(&no_sat).unwrap().saturation_vs_interval,
            Threshold::Never
        );
    }

    #[test]
    fn display_renders_infinity() {
        assert_eq!(Threshold::Amortizes(42).to_string(), "42");
        assert_eq!(Threshold::Never.to_string(), "∞");
    }

    #[test]
    fn series_has_figure3_legend_order() {
        let ths = compute_thresholds(&synthetic_profile());
        let labels: Vec<&str> = ths[0].series().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec![
                "saturation",
                "instance insertion",
                "instance deletion",
                "schema insertion",
                "schema deletion"
            ]
        );
    }
}
