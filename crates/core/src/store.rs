//! The [`Store`]: one RDF database, five query-answering strategies.
//!
//! Query answering is snapshot-isolated: [`Store::answer`] takes `&self`
//! and evaluates against an immutable published [`StoreSnapshot`] epoch,
//! so readers (via [`Store::reader`]) run concurrently with the writer's
//! updates and incremental maintenance. See [`crate::snapshot`].

use crate::snapshot::{
    lock, read_lock, write_lock, IntervalCell, IqCache, RefoCache, SchemaCell, SchemaMode,
    SnapState, SnapshotCell, StoreReader, StoreSnapshot, Winners,
};
use rdf_io::ParseError;
use rdf_model::{Dictionary, Graph, Term, Triple, Vocab, WorkerPanicked};
use rdfs::incremental::{Maintainer, MaintenanceAlgorithm, UpdateStats};
use reformulation::ReformulationError;
use sparql::{parse_query, EvalStats, Query, QueryParseError, Solutions};
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Which query-answering technique the store uses (§II-B / §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasoningConfig {
    /// Ignore entailed triples: plain `q(G)` (RDF-3X-class systems).
    None,
    /// Materialise and maintain `G∞`; answer with `q(G∞)`.
    Saturation(MaintenanceAlgorithm),
    /// RDFS-Plus: RDFS plus `owl:inverseOf` / `owl:SymmetricProperty` /
    /// `owl:TransitiveProperty` ("some of OWL's predicates", §II-C),
    /// materialised and DRed-maintained.
    SaturationPlus,
    /// Rewrite queries; answer with `q_ref(G)`.
    Reformulation,
    /// LiteMat-style interval rewriting: a hierarchy-interval dictionary
    /// turns "`C` or any subclass" into one range scan instead of a union
    /// branch per subclass. Answers equal `q_ref(G)` = `q(G∞)`; the
    /// schema-update cost is re-encoding the interval dictionary.
    Interval,
    /// Adaptive hybrid (the paper's §II-D open issue of "automatizing …
    /// the choice between these two techniques"): maintains a saturation
    /// *and* reformulates; the first execution of each distinct query
    /// measures both paths and the cheaper one is used thereafter
    /// (re-learned after schema changes). OWLIM-style "employs both
    /// inferencing techniques" (§II-C).
    Adaptive,
    /// Per-atom run-time reasoning (AllegroGraph-RDFS++ class); complete
    /// on the reformulation dialect, explicit-only beyond it.
    BackwardChaining,
    /// Translate to Datalog; saturate with the generic engine (§II-D).
    Datalog,
}

impl ReasoningConfig {
    /// Every configuration, for sweeps and equivalence tests.
    pub const ALL: [ReasoningConfig; 10] = [
        ReasoningConfig::None,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        ReasoningConfig::SaturationPlus,
        ReasoningConfig::Reformulation,
        ReasoningConfig::Interval,
        ReasoningConfig::Adaptive,
        ReasoningConfig::BackwardChaining,
        ReasoningConfig::Datalog,
    ];

    /// Parses a [`ReasoningConfig::name`] back into the configuration
    /// (used by journal replay and the CLI). Returns `None` for unknown
    /// names.
    pub fn from_name(name: &str) -> Option<ReasoningConfig> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Display name, e.g. `saturation(dred)`.
    pub fn name(self) -> String {
        match self {
            ReasoningConfig::None => "none".into(),
            ReasoningConfig::Saturation(a) => format!("saturation({})", a.name()),
            ReasoningConfig::SaturationPlus => "saturation-plus".into(),
            ReasoningConfig::Reformulation => "reformulation".into(),
            ReasoningConfig::Interval => "interval".into(),
            ReasoningConfig::Adaptive => "adaptive".into(),
            ReasoningConfig::BackwardChaining => "backward-chaining".into(),
            ReasoningConfig::Datalog => "datalog".into(),
        }
    }
}

/// Errors surfaced by [`Store`] operations.
#[derive(Debug)]
pub enum AnswerError {
    /// RDF data failed to parse.
    Data(ParseError),
    /// The SPARQL text failed to parse.
    Query(QueryParseError),
    /// The active strategy is reformulation and the query is outside the
    /// reformulation dialect — switch to saturation or backward chaining.
    Reformulation(ReformulationError),
    /// A parallel evaluation worker panicked; the query was abandoned
    /// without corrupting the store (which stays usable — retry, or drop
    /// to one thread).
    Worker(WorkerPanicked),
    /// The request's [`obs::CancelToken`] tripped (deadline expired or
    /// client disconnected) and evaluation was abandoned cooperatively.
    /// No partial state escapes: the snapshot, scan caches and counters
    /// are exactly as if the query had never run (plus cancellation
    /// counters). The server maps this to HTTP 504.
    Cancelled,
    /// A per-query strategy override asked for a path this snapshot's
    /// configuration cannot serve (e.g. `saturation` on a pure
    /// reformulation store). The server maps this to HTTP 400.
    StrategyUnsupported(String),
}

impl fmt::Display for AnswerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerError::Data(e) => write!(f, "{e}"),
            AnswerError::Query(e) => write!(f, "{e}"),
            AnswerError::Reformulation(e) => write!(f, "{e}"),
            AnswerError::Worker(e) => write!(f, "{e}"),
            AnswerError::Cancelled => f.write_str("query cancelled (deadline expired)"),
            AnswerError::StrategyUnsupported(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for AnswerError {}

impl From<ParseError> for AnswerError {
    fn from(e: ParseError) -> Self {
        AnswerError::Data(e)
    }
}
impl From<QueryParseError> for AnswerError {
    fn from(e: QueryParseError) -> Self {
        AnswerError::Query(e)
    }
}
impl From<ReformulationError> for AnswerError {
    fn from(e: ReformulationError) -> Self {
        AnswerError::Reformulation(e)
    }
}
impl From<WorkerPanicked> for AnswerError {
    fn from(e: WorkerPanicked) -> Self {
        AnswerError::Worker(e)
    }
}

/// Snapshot of the store's size and strategy state.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct StoreStats {
    /// Explicit triples in `G`.
    pub base_triples: usize,
    /// Triples in the maintained `G∞` (saturation strategies only).
    pub saturated_triples: Option<usize>,
    /// Distinct dictionary terms.
    pub dictionary_terms: usize,
    /// Active strategy name.
    pub strategy: String,
    /// Worker threads used for saturation passes and union-aware
    /// evaluation of reformulated queries.
    pub threads: usize,
}

/// The signed triple delta accumulated between two [`Store::take_delta`]
/// drains, in application order. Consumers (the subscription layer) must
/// consolidate: a triple may appear once per direction when an update
/// script inserts and deletes it in turn.
#[derive(Debug, Clone, Default)]
pub struct StoreDelta {
    /// Changes to the explicit graph `G`: `(t, true)` when `t` was
    /// inserted, `(t, false)` when it was removed.
    pub base: Vec<(Triple, bool)>,
    /// Changes to the maintained saturation `G∞` — empty unless the active
    /// strategy maintains one whose maintainer records entailed deltas
    /// (see [`rdfs::incremental::Maintainer::supports_delta_tracking`]).
    pub entailed: Vec<(Triple, bool)>,
    /// Whether a schema-changing mutation (or a strategy/thread rebuild)
    /// happened since the last drain. Derived caches were swapped; views
    /// over reformulated queries must recompile.
    pub schema_changed: bool,
}

impl StoreDelta {
    /// True when nothing changed since the last drain.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.entailed.is_empty() && !self.schema_changed
    }
}

/// Per-strategy writer-side state. Derived caches that queries need
/// (schema closure, reformulation cache, Datalog saturation, adaptive
/// winners) live snapshot-side — see [`crate::snapshot::SnapState`] —
/// so that answering never mutates the store.
enum State {
    Plain(Graph),
    Saturation(Box<dyn Maintainer + Send>),
    /// Reformulation / interval rewriting / backward chaining over the
    /// explicit graph.
    SchemaBased {
        graph: Graph,
        mode: SchemaMode,
    },
    /// Datalog: the saturation is materialised lazily per epoch,
    /// snapshot-side.
    Datalog {
        graph: Graph,
    },
    /// Adaptive hybrid: maintained saturation; learned winners are
    /// shared with snapshots via [`Winners`].
    Adaptive {
        maintainer: Box<dyn Maintainer + Send>,
    },
}

/// An RDF store with a pluggable reasoning strategy.
///
/// Updates (`&mut self`) bump an epoch counter; [`Store::snapshot`]
/// publishes an immutable [`StoreSnapshot`] of the current epoch (built
/// lazily, at most one graph clone per epoch) and [`Store::answer`]
/// (`&self`) evaluates against it — concurrently with readers holding
/// [`StoreReader`] handles from [`Store::reader`].
pub struct Store {
    /// Shared append-only dictionary: term ids are never reassigned, so
    /// the writer and every published snapshot read the same mapping.
    dict: Arc<RwLock<Dictionary>>,
    vocab: Vocab,
    owl: rdfs::plus::OwlVocab,
    config: ReasoningConfig,
    threads: NonZeroUsize,
    state: State,
    /// Monotonic version: bumped on every effective mutation. Starts at 1
    /// so the placeholder snapshot (epoch 0) is never considered fresh.
    epoch: u64,
    /// Schema closure of the current schema version, shared with
    /// snapshots; swapped (not cleared) on schema-changing updates.
    schema_cell: SchemaCell,
    /// Reformulation cache for the current schema version (swapped with
    /// [`Store::schema_cell`]).
    refo_cache: RefoCache,
    /// Interval dictionary of the current schema version, built lazily by
    /// the first interval-path answer; swapping it on schema change *is*
    /// the interval strategy's maintenance step (the next answer pays the
    /// re-encode, spanned `core.interval.reencode`).
    interval_cell: IntervalCell,
    /// Per-query interval-rewrite cache (swapped with
    /// [`Store::interval_cell`]).
    iq_cache: IqCache,
    /// Adaptive per-query winners (swapped on schema changes — costs may
    /// have shifted; surviving instance updates, as learned).
    winners: Winners,
    /// The publication slot readers clone snapshots from.
    cell: Arc<SnapshotCell>,
    /// Stats of the most recent union-aware evaluation (reformulation
    /// paths only); `None` when the last answer took another path.
    last_eval_stats: Mutex<Option<EvalStats>>,
    /// Whether [`Store::take_delta`] consumers are attached (see
    /// [`Store::set_delta_tracking`]). Off by default: capture is free
    /// when no one subscribes.
    delta_tracking: bool,
    /// Base-graph delta accumulated since the last [`Store::take_delta`].
    base_delta: Vec<(Triple, bool)>,
    /// Schema-changed flag accumulated since the last drain.
    delta_schema_changed: bool,
}

impl Store {
    /// Creates an empty store with the given strategy (single-threaded
    /// saturation).
    pub fn new(config: ReasoningConfig) -> Self {
        Self::new_with_threads(config, NonZeroUsize::MIN)
    }

    /// Creates an empty store with the given strategy, saturating with
    /// `threads` worker threads where the strategy recomputes saturations
    /// (see [`MaintenanceAlgorithm::build_with_threads`]).
    pub fn new_with_threads(config: ReasoningConfig, threads: NonZeroUsize) -> Self {
        let mut dict = Dictionary::new();
        let vocab = Vocab::intern(&mut dict);
        Self::from_parts_with_threads(dict, vocab, Graph::new(), config, threads)
    }

    /// Builds a store over an existing encoded graph (e.g. a generated
    /// workload dataset). The dictionary must be the one the graph was
    /// encoded against, with `vocab` interned in it.
    pub fn from_parts(
        dict: Dictionary,
        vocab: Vocab,
        graph: Graph,
        config: ReasoningConfig,
    ) -> Self {
        Self::from_parts_with_threads(dict, vocab, graph, config, NonZeroUsize::MIN)
    }

    /// [`Store::from_parts`] with a saturation thread count.
    pub fn from_parts_with_threads(
        mut dict: Dictionary,
        vocab: Vocab,
        graph: Graph,
        config: ReasoningConfig,
        threads: NonZeroUsize,
    ) -> Self {
        let owl = rdfs::plus::OwlVocab::intern(&mut dict);
        let dict = Arc::new(RwLock::new(dict));
        let state = Self::build_state(graph, vocab, owl, config, threads);
        // The slot starts with an empty epoch-0 placeholder; epoch 1 is
        // published lazily by the first `snapshot()` call, so building a
        // store over a large graph costs no clone until someone reads.
        let placeholder = Arc::new(StoreSnapshot {
            epoch: 0,
            config,
            threads,
            vocab,
            dict: dict.clone(),
            state: SnapState::Plain {
                graph: Graph::new(),
            },
        });
        Store {
            dict,
            vocab,
            owl,
            config,
            threads,
            state,
            epoch: 1,
            schema_cell: Arc::new(OnceLock::new()),
            refo_cache: Arc::default(),
            interval_cell: Arc::new(OnceLock::new()),
            iq_cache: Arc::default(),
            winners: Arc::default(),
            cell: Arc::new(SnapshotCell::new(placeholder)),
            last_eval_stats: Mutex::new(None),
            delta_tracking: false,
            base_delta: Vec::new(),
            delta_schema_changed: false,
        }
    }

    fn build_state(
        graph: Graph,
        vocab: Vocab,
        owl: rdfs::plus::OwlVocab,
        config: ReasoningConfig,
        threads: NonZeroUsize,
    ) -> State {
        match config {
            ReasoningConfig::None => State::Plain(graph),
            ReasoningConfig::Saturation(algo) => {
                State::Saturation(algo.build_with_threads(graph, vocab, threads))
            }
            ReasoningConfig::SaturationPlus => {
                State::Saturation(Box::new(rdfs::plus::PlusMaintainer::new(graph, vocab, owl)))
            }
            ReasoningConfig::Reformulation => State::SchemaBased {
                graph,
                mode: SchemaMode::Reformulate,
            },
            ReasoningConfig::Interval => State::SchemaBased {
                graph,
                mode: SchemaMode::Interval,
            },
            ReasoningConfig::BackwardChaining => State::SchemaBased {
                graph,
                mode: SchemaMode::Backward,
            },
            ReasoningConfig::Datalog => State::Datalog { graph },
            ReasoningConfig::Adaptive => State::Adaptive {
                maintainer: MaintenanceAlgorithm::Counting.build(graph, vocab),
            },
        }
    }

    /// Bumps the epoch (the published snapshot is now stale) and, when the
    /// mutation touched schema triples, swaps the schema-derived caches so
    /// the next epoch recomputes them while old snapshots keep theirs.
    fn note_change(&mut self, schema_changed: bool) {
        self.epoch += 1;
        if schema_changed {
            self.schema_cell = Arc::new(OnceLock::new());
            self.refo_cache = Arc::default();
            self.interval_cell = Arc::new(OnceLock::new());
            self.iq_cache = Arc::default();
            self.winners = Arc::default();
            if self.delta_tracking {
                self.delta_schema_changed = true;
            }
        }
    }

    /// Builds the snapshot of the current epoch from the writer state —
    /// the one place graphs are cloned (at most once per epoch).
    fn build_snapshot(&self) -> StoreSnapshot {
        let state = match &self.state {
            State::Plain(g) => SnapState::Plain { graph: g.clone() },
            State::Saturation(m) => SnapState::Saturated {
                saturated: m.saturated().clone(),
            },
            State::SchemaBased { graph, mode } => SnapState::Schema {
                graph: graph.clone(),
                mode: *mode,
                schema: self.schema_cell.clone(),
                refo_cache: self.refo_cache.clone(),
                interval: self.interval_cell.clone(),
                iq_cache: self.iq_cache.clone(),
            },
            State::Datalog { graph } => SnapState::Datalog {
                graph: graph.clone(),
                saturated: OnceLock::new(),
            },
            State::Adaptive { maintainer } => SnapState::Adaptive {
                base: maintainer.base().clone(),
                saturated: maintainer.saturated().clone(),
                schema: self.schema_cell.clone(),
                winners: self.winners.clone(),
                refo_cache: self.refo_cache.clone(),
                interval: self.interval_cell.clone(),
                iq_cache: self.iq_cache.clone(),
            },
        };
        StoreSnapshot {
            epoch: self.epoch,
            config: self.config,
            threads: self.threads,
            vocab: self.vocab,
            dict: self.dict.clone(),
            state,
        }
    }

    /// The current epoch's immutable snapshot, publishing it if the one
    /// in the slot is stale. This is how the writer makes updates visible
    /// to [`StoreReader`] handles: apply mutations, then call `snapshot()`
    /// (or any `&self` answering method, which does it implicitly).
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        let current = self.cell.current();
        if current.epoch == self.epoch {
            return current;
        }
        let snap = Arc::new(self.build_snapshot());
        self.cell.publish(snap.clone());
        snap
    }

    /// A cloneable concurrent read handle: worker threads answer queries
    /// against whatever epoch the writer last published. Publishes the
    /// current epoch first so the handle never observes the placeholder.
    pub fn reader(&self) -> StoreReader {
        self.snapshot();
        StoreReader {
            cell: self.cell.clone(),
            dict: self.dict.clone(),
        }
    }

    /// The active strategy.
    pub fn config(&self) -> ReasoningConfig {
        self.config
    }

    /// Worker threads used for saturation passes and for the union-aware
    /// evaluation of reformulated queries.
    pub fn threads(&self) -> NonZeroUsize {
        self.threads
    }

    /// Changes the saturation thread count, rebuilding derived state so
    /// strategies that saturate pick it up. The answer contract is
    /// unaffected: the parallel engine produces exactly the sequential
    /// saturation.
    pub fn set_threads(&mut self, threads: NonZeroUsize) {
        if threads == self.threads {
            return;
        }
        self.threads = threads;
        let graph = self.base_graph().clone();
        self.state = Self::build_state(graph, self.vocab, self.owl, self.config, threads);
        self.rearm_delta_tracking();
        self.note_change(true);
    }

    /// Switches strategy, rebuilding derived state from the base graph.
    pub fn set_config(&mut self, config: ReasoningConfig) {
        if config == self.config {
            return;
        }
        let graph = self.base_graph().clone();
        self.state = Self::build_state(graph, self.vocab, self.owl, config, self.threads);
        self.config = config;
        self.rearm_delta_tracking();
        self.note_change(true);
    }

    /// Re-enables maintainer-side delta recording after the writer state
    /// was rebuilt (strategy or thread-count switch). The rebuild loses
    /// the per-triple trail, but both callers report `schema_changed`,
    /// which tells delta consumers to refresh wholesale.
    fn rearm_delta_tracking(&mut self) {
        if !self.delta_tracking {
            return;
        }
        match &mut self.state {
            State::Saturation(m) => m.set_delta_tracking(true),
            State::Adaptive { maintainer } => maintainer.set_delta_tracking(true),
            _ => {}
        }
    }

    // --- delta tracking -----------------------------------------------------

    /// Turns capture of update deltas on or off. While on, every effective
    /// mutation records its base-graph delta (and, under the saturation
    /// strategies, the entailed delta) for [`Store::take_delta`]. Turning
    /// it off discards anything captured but not yet drained.
    pub fn set_delta_tracking(&mut self, on: bool) {
        self.delta_tracking = on;
        if !on {
            self.base_delta.clear();
            self.delta_schema_changed = false;
        }
        match &mut self.state {
            State::Saturation(m) => m.set_delta_tracking(on),
            State::Adaptive { maintainer } => maintainer.set_delta_tracking(on),
            _ => {}
        }
    }

    /// Whether delta capture is currently enabled.
    pub fn delta_tracking(&self) -> bool {
        self.delta_tracking
    }

    /// Whether the active strategy reports *entailed* deltas (a maintained
    /// saturation whose maintainer records them). When false, only the
    /// base delta of [`StoreDelta`] is populated.
    pub fn supports_entailed_delta(&self) -> bool {
        match &self.state {
            State::Saturation(m) => m.supports_delta_tracking(),
            State::Adaptive { maintainer } => maintainer.supports_delta_tracking(),
            _ => false,
        }
    }

    /// Drains the delta captured since the last drain (empty unless
    /// [`Store::set_delta_tracking`] is on).
    pub fn take_delta(&mut self) -> StoreDelta {
        let entailed = match &mut self.state {
            State::Saturation(m) => m.take_entailed_delta(),
            State::Adaptive { maintainer } => maintainer.take_entailed_delta(),
            _ => Vec::new(),
        };
        StoreDelta {
            base: std::mem::take(&mut self.base_delta),
            entailed,
            schema_changed: std::mem::take(&mut self.delta_schema_changed),
        }
    }

    /// The dictionary (for decoding solution ids), as a read guard on the
    /// shared append-only map. Deref-coerces wherever `&Dictionary` is
    /// expected; don't hold it across a call that interns (parse/prepare).
    pub fn dictionary(&self) -> RwLockReadGuard<'_, Dictionary> {
        read_lock(&self.dict)
    }

    /// Write access to the shared dictionary for the durable layer
    /// (journal replay re-interns terms; the journaled loaders parse
    /// against the store's dictionary before appending). Interning is
    /// append-only, so this never invalidates a published snapshot.
    pub(crate) fn dict_mut(&self) -> RwLockWriteGuard<'_, Dictionary> {
        write_lock(&self.dict)
    }

    /// The pre-interned vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The explicit graph `G`.
    pub fn base_graph(&self) -> &Graph {
        match &self.state {
            State::Plain(g) => g,
            State::Saturation(m) => m.base(),
            State::SchemaBased { graph, .. } => graph,
            State::Datalog { graph, .. } => graph,
            State::Adaptive { maintainer, .. } => maintainer.base(),
        }
    }

    /// Size and state snapshot.
    pub fn stats(&self) -> StoreStats {
        let saturated_triples = match &self.state {
            State::Saturation(m) => Some(m.saturated().len()),
            State::Datalog { .. } => {
                // The Datalog saturation materialises lazily, snapshot-
                // side; report it only if the *current* epoch's published
                // snapshot has built one.
                let published = self.cell.current();
                if published.epoch == self.epoch {
                    published.saturated_len()
                } else {
                    None
                }
            }
            State::Adaptive { maintainer, .. } => Some(maintainer.saturated().len()),
            _ => None,
        };
        StoreStats {
            base_triples: self.base_graph().len(),
            saturated_triples,
            dictionary_terms: self.dictionary().len(),
            strategy: self.config.name(),
            threads: self.threads.get(),
        }
    }

    // --- loading and updates ---------------------------------------------

    /// Parses Turtle and inserts every triple as one batch (a single
    /// maintenance pass under the saturation strategies). Returns how many
    /// triples the document contained.
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, AnswerError> {
        let mut staging = Graph::new();
        let n = rdf_io::parse_turtle(text, &mut self.dict_mut(), &mut staging)?;
        let triples: Vec<Triple> = staging.iter().collect();
        self.insert_batch(&triples);
        Ok(n)
    }

    /// Parses N-Triples and inserts every triple as one batch.
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, AnswerError> {
        let mut staging = Graph::new();
        let n = rdf_io::parse_ntriples(text, &mut self.dict_mut(), &mut staging)?;
        let triples: Vec<Triple> = staging.iter().collect();
        self.insert_batch(&triples);
        Ok(n)
    }

    /// Inserts a batch of triples with one maintenance pass where the
    /// strategy supports it (see [`rdfs::incremental::Maintainer::insert_batch`]).
    pub fn insert_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        // The maintainers don't report which batch members were new to the
        // base, so capture those up front (the per-triple fallback path
        // records inside `insert` instead).
        if self.delta_tracking
            && matches!(self.state, State::Saturation(_) | State::Adaptive { .. })
        {
            let mut fresh = Vec::new();
            {
                let base = self.base_graph();
                let mut seen = rustc_hash::FxHashSet::default();
                for &t in triples {
                    if !base.contains(&t) && seen.insert(t) {
                        fresh.push((t, true));
                    }
                }
            }
            self.base_delta.extend(fresh);
        }
        let batched = match &mut self.state {
            State::Saturation(m) => Some(m.insert_batch(triples)),
            State::Adaptive { maintainer } => Some(maintainer.insert_batch(triples)),
            _ => None,
        };
        match batched {
            Some(stats) => {
                let schema = triples.iter().any(|t| self.vocab.is_schema_property(t.p));
                self.note_change(schema);
                stats
            }
            None => {
                let mut total = UpdateStats {
                    kind: rdfs::incremental::UpdateKind::Noop,
                    added: 0,
                    removed: 0,
                    work: 0,
                };
                for &t in triples {
                    let s = self.insert(t);
                    if s.kind != rdfs::incremental::UpdateKind::Noop {
                        total.kind = rdfs::incremental::UpdateKind::Batch;
                    }
                    total.added += s.added;
                }
                total
            }
        }
    }

    /// Deletes a batch of triples with one maintenance pass where the
    /// strategy supports it.
    pub fn delete_batch(&mut self, triples: &[Triple]) -> UpdateStats {
        if self.delta_tracking
            && matches!(self.state, State::Saturation(_) | State::Adaptive { .. })
        {
            let mut gone = Vec::new();
            {
                let base = self.base_graph();
                let mut seen = rustc_hash::FxHashSet::default();
                for &t in triples {
                    if base.contains(&t) && seen.insert(t) {
                        gone.push((t, false));
                    }
                }
            }
            self.base_delta.extend(gone);
        }
        let batched = match &mut self.state {
            State::Saturation(m) => Some(m.delete_batch(triples)),
            State::Adaptive { maintainer } => Some(maintainer.delete_batch(triples)),
            _ => None,
        };
        match batched {
            Some(stats) => {
                let schema = triples.iter().any(|t| self.vocab.is_schema_property(t.p));
                self.note_change(schema);
                stats
            }
            None => {
                let mut total = UpdateStats {
                    kind: rdfs::incremental::UpdateKind::Noop,
                    added: 0,
                    removed: 0,
                    work: 0,
                };
                for t in triples {
                    let s = self.delete(t);
                    if s.kind != rdfs::incremental::UpdateKind::Noop {
                        total.kind = rdfs::incremental::UpdateKind::Batch;
                    }
                    total.removed += s.removed;
                }
                total
            }
        }
    }

    /// Encodes three terms and inserts the triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> UpdateStats {
        let t = {
            let mut dict = self.dict_mut();
            Triple::new(dict.encode(s), dict.encode(p), dict.encode(o))
        };
        self.insert(t)
    }

    /// Inserts an encoded triple, maintaining derived state.
    pub fn insert(&mut self, t: Triple) -> UpdateStats {
        let reg = obs::global();
        let start = reg.now_us();
        let stats = match &mut self.state {
            State::Plain(g) => plain_update(g.insert(t), true, &t, &self.vocab),
            State::Saturation(m) => m.insert(t),
            State::SchemaBased { graph, .. } => {
                plain_update(graph.insert(t), true, &t, &self.vocab)
            }
            State::Datalog { graph } => plain_update(graph.insert(t), true, &t, &self.vocab),
            State::Adaptive { maintainer } => maintainer.insert(t),
        };
        publish_update(reg, &stats, reg.now_us().saturating_sub(start));
        if stats.kind != rdfs::incremental::UpdateKind::Noop {
            if self.delta_tracking {
                self.base_delta.push((t, true));
            }
            self.note_change(self.vocab.is_schema_property(t.p));
        }
        stats
    }

    /// Encodes three terms and deletes the triple (if the terms are known).
    pub fn delete_terms(&mut self, s: &Term, p: &Term, o: &Term) -> UpdateStats {
        let ids = {
            let dict = self.dictionary();
            (dict.get_id(s), dict.get_id(p), dict.get_id(o))
        };
        match ids {
            (Some(s), Some(p), Some(o)) => self.delete(&Triple::new(s, p, o)),
            _ => UpdateStats {
                kind: rdfs::incremental::UpdateKind::Noop,
                added: 0,
                removed: 0,
                work: 0,
            },
        }
    }

    /// Deletes an encoded triple, maintaining derived state.
    pub fn delete(&mut self, t: &Triple) -> UpdateStats {
        let reg = obs::global();
        let start = reg.now_us();
        let stats = match &mut self.state {
            State::Plain(g) => plain_update(g.remove(t), false, t, &self.vocab),
            State::Saturation(m) => m.delete(t),
            State::SchemaBased { graph, .. } => {
                plain_update(graph.remove(t), false, t, &self.vocab)
            }
            State::Datalog { graph } => plain_update(graph.remove(t), false, t, &self.vocab),
            State::Adaptive { maintainer } => maintainer.delete(t),
        };
        publish_update(reg, &stats, reg.now_us().saturating_sub(start));
        if stats.kind != rdfs::incremental::UpdateKind::Noop {
            if self.delta_tracking {
                self.base_delta.push((*t, false));
            }
            self.note_change(self.vocab.is_schema_property(t.p));
        }
        stats
    }

    // --- explanations -------------------------------------------------------

    /// Explains why `t` is entailed (a derivation tree down to asserted
    /// triples), or `None` if it is not. Reuses the maintained saturation
    /// when one exists; otherwise saturates on the fly. See
    /// [`rdfs::explain`] — the "justifications" of §II-C.
    pub fn explain(&self, t: &Triple) -> Option<rdfs::explain::Explanation> {
        match &self.state {
            State::Saturation(m) | State::Adaptive { maintainer: m, .. } => {
                rdfs::explain::explain_in(t, m.base(), m.saturated(), &self.vocab)
            }
            _ => rdfs::explain::explain(t, self.base_graph(), &self.vocab),
        }
    }

    /// Term-level convenience for [`Store::explain`]; unknown terms mean
    /// the triple cannot be entailed.
    pub fn explain_terms(
        &self,
        s: &Term,
        p: &Term,
        o: &Term,
    ) -> Option<rdfs::explain::Explanation> {
        let t = {
            let dict = self.dictionary();
            Triple::new(dict.get_id(s)?, dict.get_id(p)?, dict.get_id(o)?)
        };
        self.explain(&t)
    }

    // --- export ------------------------------------------------------------

    /// Serialises the base graph `G` as sorted N-Triples.
    pub fn export_ntriples(&self) -> String {
        rdf_io::write_ntriples_sorted(self.base_graph(), &self.dictionary())
    }

    /// Serialises the base graph `G` as Turtle against `prefixes`.
    pub fn export_turtle(&self, prefixes: &rdf_io::PrefixMap) -> String {
        rdf_io::write_turtle(self.base_graph(), &self.dictionary(), prefixes)
    }

    // --- query answering ---------------------------------------------------

    /// Parses a SPARQL BGP query against this store's dictionary.
    pub fn prepare(&self, sparql: &str) -> Result<Query, AnswerError> {
        Ok(parse_query(sparql, &mut self.dict_mut())?)
    }

    /// Answers a prepared query with the active strategy, applying any
    /// solution modifiers / aggregate (`ORDER BY`, `LIMIT`, `OFFSET`,
    /// `COUNT`) uniformly at the end.
    ///
    /// Takes `&self`: evaluation runs against the current epoch's
    /// published [`StoreSnapshot`] (see [`Store::snapshot`]), so queries
    /// run concurrently with each other — and, through [`StoreReader`]
    /// handles, with the writer's maintenance. Note: under
    /// [`ReasoningConfig::Reformulation`], `COUNT(*)` counts *distinct*
    /// solutions (reformulation's answer-set semantics).
    pub fn answer(&self, q: &Query) -> Result<Solutions, AnswerError> {
        let snap = self.snapshot();
        let (sols, stats) = snap.answer(q)?;
        *lock(&self.last_eval_stats) = stats;
        Ok(sols)
    }

    /// Stats of the most recent [`Store::answer`] call that took a
    /// union-aware reformulation path (branch sharing, scan-cache
    /// counters, phase timings); `None` when the last answer came from a
    /// saturated graph, backward chaining or plain evaluation.
    pub fn last_eval_stats(&self) -> Option<EvalStats> {
        lock(&self.last_eval_stats).clone()
    }

    /// For [`ReasoningConfig::Adaptive`]: how many distinct queries have
    /// been pinned to each path, as `(saturated, reformulated)`.
    pub fn adaptive_summary(&self) -> Option<(usize, usize)> {
        match &self.state {
            State::Adaptive { .. } => {
                let winners = lock(&self.winners);
                let sat = winners
                    .values()
                    .filter(|&&c| c == crate::snapshot::AdaptiveChoice::Saturated)
                    .count();
                Some((sat, winners.len() - sat))
            }
            _ => None,
        }
    }

    /// Parses and answers in one call.
    pub fn answer_sparql(&self, sparql: &str) -> Result<Solutions, AnswerError> {
        let q = self.prepare(sparql)?;
        self.answer(&q)
    }
}

/// Mirrors one finished maintenance update into the metrics registry: a
/// per-kind latency histogram (`core.maintain.<kind>_us`) plus update and
/// work counters. `UpdateStats` stays the caller-facing façade.
fn publish_update(reg: &obs::Registry, stats: &UpdateStats, dur_us: u64) {
    use rdfs::incremental::UpdateKind;
    if !reg.is_enabled() {
        return;
    }
    reg.add("core.maintain.updates", 1);
    reg.add("core.maintain.work", stats.work as u64);
    reg.add("core.maintain.triples_added", stats.added as u64);
    reg.add("core.maintain.triples_removed", stats.removed as u64);
    let histogram = match stats.kind {
        UpdateKind::InstanceInsert => "core.maintain.instance_insert_us",
        UpdateKind::InstanceDelete => "core.maintain.instance_delete_us",
        UpdateKind::SchemaInsert => "core.maintain.schema_insert_us",
        UpdateKind::SchemaDelete => "core.maintain.schema_delete_us",
        UpdateKind::Batch => "core.maintain.batch_us",
        UpdateKind::Noop => "core.maintain.noop_us",
    };
    reg.record(histogram, dur_us);
}

fn plain_update(changed: bool, insert: bool, t: &Triple, vocab: &Vocab) -> UpdateStats {
    use rdfs::incremental::UpdateKind;
    let kind = if !changed {
        UpdateKind::Noop
    } else {
        match (vocab.is_schema_property(t.p), insert) {
            (true, true) => UpdateKind::SchemaInsert,
            (true, false) => UpdateKind::SchemaDelete,
            (false, true) => UpdateKind::InstanceInsert,
            (false, false) => UpdateKind::InstanceDelete,
        }
    };
    UpdateStats {
        kind,
        added: (changed && insert) as usize,
        removed: (changed && !insert) as usize,
        work: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZOO: &str = r#"
        @prefix ex: <http://ex/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Cat rdfs:subClassOf ex:Mammal .
        ex:Mammal rdfs:subClassOf ex:Animal .
        ex:hasPet rdfs:range ex:Animal .
        ex:Tom a ex:Cat .
        ex:anne ex:hasPet ex:Goldie .
    "#;

    const MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";
    const ANIMALS: &str = "PREFIX ex: <http://ex/> SELECT DISTINCT ?x WHERE { ?x a ex:Animal }";

    fn store_with(config: ReasoningConfig) -> Store {
        let mut s = Store::new(config);
        s.load_turtle(ZOO).expect("fixture loads");
        s
    }

    #[test]
    fn none_strategy_sees_explicit_only() {
        let s = store_with(ReasoningConfig::None);
        assert_eq!(s.answer_sparql(MAMMALS).unwrap().len(), 0);
    }

    #[test]
    fn every_reasoning_strategy_answers_the_paper_example() {
        for config in ReasoningConfig::ALL {
            if config == ReasoningConfig::None {
                continue;
            }
            let s = store_with(config);
            let sols = s.answer_sparql(MAMMALS).unwrap();
            assert_eq!(sols.len(), 1, "{}: Tom is a mammal", config.name());
            let sols = s.answer_sparql(ANIMALS).unwrap();
            assert_eq!(
                sols.len(),
                2,
                "{}: Tom + Goldie (range typing)",
                config.name()
            );
        }
    }

    #[test]
    fn updates_flow_through_every_strategy() {
        for config in ReasoningConfig::ALL {
            if config == ReasoningConfig::None {
                continue;
            }
            let mut s = store_with(config);
            // insert a new cat
            let stats = s.insert_terms(
                &Term::iri("http://ex/Felix"),
                &Term::iri(rdf_model::vocab::RDF_TYPE),
                &Term::iri("http://ex/Cat"),
            );
            assert_eq!(stats.kind, rdfs::incremental::UpdateKind::InstanceInsert);
            assert_eq!(
                s.answer_sparql(MAMMALS).unwrap().len(),
                2,
                "{}",
                config.name()
            );
            // schema update: Dog ⊑ Mammal + a dog
            s.load_turtle(
                "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
                 ex:Dog rdfs:subClassOf ex:Mammal . ex:Rex a ex:Dog .",
            )
            .unwrap();
            assert_eq!(
                s.answer_sparql(MAMMALS).unwrap().len(),
                3,
                "{}",
                config.name()
            );
            // delete the schema edge again
            s.delete_terms(
                &Term::iri("http://ex/Dog"),
                &Term::iri(rdf_model::vocab::RDFS_SUB_CLASS_OF),
                &Term::iri("http://ex/Mammal"),
            );
            assert_eq!(
                s.answer_sparql(MAMMALS).unwrap().len(),
                2,
                "{}",
                config.name()
            );
        }
    }

    #[test]
    fn strategy_switch_preserves_data() {
        let mut s = store_with(ReasoningConfig::None);
        let base = s.base_graph().len();
        for config in ReasoningConfig::ALL {
            s.set_config(config);
            assert_eq!(s.base_graph().len(), base, "{}", config.name());
        }
        // end on a reasoning strategy and check answers
        s.set_config(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
        assert_eq!(s.answer_sparql(MAMMALS).unwrap().len(), 1);
    }

    #[test]
    fn reformulation_rejects_out_of_dialect_queries_with_clear_error() {
        let mut s = store_with(ReasoningConfig::Reformulation);
        let err = s
            .answer_sparql("SELECT ?p WHERE { <http://ex/Tom> ?p <http://ex/Cat> }")
            .unwrap_err();
        assert!(matches!(err, AnswerError::Reformulation(_)), "{err}");
        // the same query is fine under saturation
        s.set_config(ReasoningConfig::Saturation(MaintenanceAlgorithm::DRed));
        assert!(s
            .answer_sparql("SELECT ?p WHERE { <http://ex/Tom> ?p <http://ex/Cat> }")
            .is_ok());
    }

    #[test]
    fn stats_reflect_strategy() {
        let mut s = store_with(ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute));
        let st = s.stats();
        assert!(st.saturated_triples.unwrap() > st.base_triples);
        assert_eq!(st.strategy, "saturation(recompute)");

        s.set_config(ReasoningConfig::Reformulation);
        assert_eq!(s.stats().saturated_triples, None);

        s.set_config(ReasoningConfig::Datalog);
        assert_eq!(
            s.stats().saturated_triples,
            None,
            "datalog saturation is lazy"
        );
        s.answer_sparql(MAMMALS).unwrap();
        assert!(
            s.stats().saturated_triples.is_some(),
            "materialised by the first query"
        );
    }

    #[test]
    fn threaded_store_answers_identically() {
        let mut seq = store_with(ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute));
        let mut par = Store::new_with_threads(
            ReasoningConfig::Saturation(MaintenanceAlgorithm::Recompute),
            NonZeroUsize::new(4).unwrap(),
        );
        par.load_turtle(ZOO).unwrap();
        assert_eq!(par.threads().get(), 4);
        assert_eq!(par.stats().threads, 4);
        assert_eq!(par.stats().saturated_triples, seq.stats().saturated_triples);
        assert_eq!(
            par.answer_sparql(MAMMALS).unwrap().as_set(),
            seq.answer_sparql(MAMMALS).unwrap().as_set()
        );
        // updates keep the parallel recomputation in lock-step
        par.load_turtle("@prefix ex: <http://ex/> .\nex:Felix a ex:Cat .")
            .unwrap();
        seq.load_turtle("@prefix ex: <http://ex/> .\nex:Felix a ex:Cat .")
            .unwrap();
        assert_eq!(
            par.answer_sparql(MAMMALS).unwrap().as_set(),
            seq.answer_sparql(MAMMALS).unwrap().as_set()
        );
        // switching the knob rebuilds without changing answers
        seq.set_threads(NonZeroUsize::new(2).unwrap());
        assert_eq!(
            par.answer_sparql(MAMMALS).unwrap().as_set(),
            seq.answer_sparql(MAMMALS).unwrap().as_set()
        );
    }

    #[test]
    fn reformulation_surfaces_eval_stats() {
        let mut s = store_with(ReasoningConfig::Reformulation);
        assert!(s.last_eval_stats().is_none(), "no query answered yet");
        s.answer_sparql(ANIMALS).unwrap();
        let stats = s.last_eval_stats().expect("reformulation records stats");
        assert!(stats.branches_total >= 3, "{stats:?}");
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.rows, 2, "Tom + Goldie");
        // A threaded store reports its worker count and the same answers.
        let mut par = Store::new_with_threads(
            ReasoningConfig::Reformulation,
            NonZeroUsize::new(4).unwrap(),
        );
        par.load_turtle(ZOO).unwrap();
        let sols = par.answer_sparql(ANIMALS).unwrap();
        assert_eq!(sols.len(), 2);
        assert!(par.last_eval_stats().unwrap().threads >= 1);
        // Non-reformulation paths leave no stats behind.
        s.set_config(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
        s.answer_sparql(ANIMALS).unwrap();
        assert!(s.last_eval_stats().is_none());
    }

    #[test]
    fn interval_strategy_collapses_branches_into_range_scans() {
        let s = store_with(ReasoningConfig::Interval);
        let sols = s.answer_sparql(ANIMALS).unwrap();
        assert_eq!(sols.len(), 2, "Tom + Goldie, same as every strategy");
        let stats = s.last_eval_stats().expect("interval path records stats");
        assert!(stats.range_scans >= 1, "{stats:?}");
        assert!(
            stats.branches_collapsed >= 1,
            "Animal ∪ Mammal ∪ Cat should collapse: {stats:?}"
        );
        // Out-of-dialect queries are rejected like reformulation.
        assert!(matches!(
            s.answer_sparql("SELECT ?p WHERE { <http://ex/Tom> ?p <http://ex/Cat> }"),
            Err(AnswerError::Reformulation(_))
        ));
    }

    #[test]
    fn per_query_strategy_overrides() {
        let none = obs::CancelToken::none();
        let s = store_with(ReasoningConfig::Interval);
        let reader = s.reader();
        for strat in ["interval", "reformulation", "backward-chaining"] {
            let (sols, _, _) = reader
                .answer_sparql_strategy_cancel(MAMMALS, Some(strat), &none)
                .unwrap();
            assert_eq!(sols.len(), 1, "{strat}");
        }
        // No materialised G∞ on a schema-based store.
        assert!(matches!(
            reader.answer_sparql_strategy_cancel(MAMMALS, Some("saturation"), &none),
            Err(AnswerError::StrategyUnsupported(_))
        ));
        assert!(matches!(
            reader.answer_sparql_strategy_cancel(MAMMALS, Some("bogus"), &none),
            Err(AnswerError::StrategyUnsupported(_))
        ));
        // An adaptive store holds both graphs: all four paths servable.
        let s = store_with(ReasoningConfig::Adaptive);
        let reader = s.reader();
        for strat in [
            "saturation",
            "reformulation",
            "interval",
            "backward-chaining",
        ] {
            let (sols, _, _) = reader
                .answer_sparql_strategy_cancel(ANIMALS, Some(strat), &none)
                .unwrap();
            assert_eq!(sols.len(), 2, "{strat}");
        }
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        let mut s = Store::new(ReasoningConfig::Reformulation);
        assert!(matches!(
            s.load_turtle("not turtle"),
            Err(AnswerError::Data(_))
        ));
        assert!(matches!(
            s.answer_sparql("SELECT WHERE"),
            Err(AnswerError::Query(_))
        ));
        // deleting unknown terms is a noop
        let stats = s.delete_terms(
            &Term::iri("http://nope"),
            &Term::iri("http://p"),
            &Term::iri("http://o"),
        );
        assert_eq!(stats.kind, rdfs::incremental::UpdateKind::Noop);
    }

    #[test]
    fn not_exists_negation_across_strategies() {
        // "SPARQL 1.1 supports aggregates, negation etc." (§II-B) — and
        // negation shows the dialect interplay: complete under saturation,
        // rejected by reformulation, explicit-only under backward chaining.
        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE \
                 { ?x a ex:Mammal . FILTER NOT EXISTS { ?x a ex:Cat } }";
        // Under saturation: Tom IS a Cat (asserted), so no mammal remains.
        let mut s = store_with(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
        assert_eq!(s.answer_sparql(q).unwrap().len(), 0);
        // Add a non-cat mammal: it passes the negation.
        s.load_turtle("@prefix ex: <http://ex/> .\nex:Moby a ex:Mammal .")
            .unwrap();
        assert_eq!(s.answer_sparql(q).unwrap().len(), 1);
        // Reformulation rejects negation with a clear error.
        s.set_config(ReasoningConfig::Reformulation);
        assert!(matches!(
            s.answer_sparql(q),
            Err(AnswerError::Reformulation(_))
        ));
        // Adaptive pins such queries to the saturated path and answers.
        s.set_config(ReasoningConfig::Adaptive);
        assert_eq!(s.answer_sparql(q).unwrap().len(), 1);
        assert_eq!(s.adaptive_summary(), Some((1, 0)));
    }

    #[test]
    fn adaptive_strategy_learns_and_answers_correctly() {
        let mut s = store_with(ReasoningConfig::Adaptive);
        assert_eq!(s.adaptive_summary(), Some((0, 0)));
        // First executions measure; repeats use the learned path — answers
        // identical throughout.
        let mammals = "PREFIX ex: <http://ex/> SELECT DISTINCT ?x WHERE { ?x a ex:Mammal }";
        let first = s.answer_sparql(mammals).unwrap().as_set();
        let (sat, refo) = s.adaptive_summary().unwrap();
        assert_eq!(sat + refo, 1, "one query learned");
        for _ in 0..3 {
            assert_eq!(s.answer_sparql(mammals).unwrap().as_set(), first);
        }
        assert_eq!(
            s.adaptive_summary().map(|(a, b)| a + b),
            Some(1),
            "cache hit, no relearn"
        );
        // Out-of-dialect queries pin to saturation and still answer.
        let var_prop = "SELECT ?p WHERE { <http://ex/Tom> ?p <http://ex/Cat> }";
        assert_eq!(s.answer_sparql(var_prop).unwrap().len(), 1);
        // Non-distinct queries pin to saturation (bag semantics preserved).
        let bag = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Animal }";
        let n = s.answer_sparql(bag).unwrap().len();
        assert_eq!(
            n,
            s.answer_sparql(bag).unwrap().len(),
            "stable across repeats"
        );
        // Schema updates clear the learned winners.
        s.load_turtle(
            "@prefix ex: <http://ex/> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:Dog rdfs:subClassOf ex:Mammal .",
        )
        .unwrap();
        assert_eq!(
            s.adaptive_summary(),
            Some((0, 0)),
            "winners re-learned after schema change"
        );
        assert_eq!(
            s.answer_sparql(mammals).unwrap().as_set(),
            first,
            "same answers, no dogs yet"
        );
    }

    #[test]
    fn explanations_through_the_store() {
        for config in [
            ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
            ReasoningConfig::Reformulation,
        ] {
            let s = store_with(config);
            let ty = Term::iri(rdf_model::vocab::RDF_TYPE);
            // Tom is a Mammal — derived.
            let e = s
                .explain_terms(
                    &Term::iri("http://ex/Tom"),
                    &ty,
                    &Term::iri("http://ex/Mammal"),
                )
                .expect("entailed triple explains");
            assert!(e.depth() >= 1, "{}", config.name());
            assert!(e.support().iter().all(|t| s.base_graph().contains(t)));
            // Goldie is an Animal via range typing.
            let e = s
                .explain_terms(
                    &Term::iri("http://ex/Goldie"),
                    &ty,
                    &Term::iri("http://ex/Animal"),
                )
                .expect("range-typed triple explains");
            assert!(e.render(&s.dictionary()).contains("[rdfs3]"));
            // A non-entailed triple has no explanation.
            assert!(s
                .explain_terms(
                    &Term::iri("http://ex/Tom"),
                    &ty,
                    &Term::iri("http://ex/Rocket")
                )
                .is_none());
        }
    }

    #[test]
    fn export_round_trips_the_base_graph() {
        let s = store_with(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
        let nt = s.export_ntriples();
        let mut s2 = Store::new(ReasoningConfig::None);
        s2.load_ntriples(&nt).unwrap();
        assert_eq!(s.base_graph().len(), s2.base_graph().len());
        assert_eq!(nt, s2.export_ntriples(), "canonical N-Triples agree");
        // the export is the *base* graph, not the saturation
        assert!(nt.lines().count() < s.stats().saturated_triples.unwrap());

        let mut prefixes = rdf_io::PrefixMap::common();
        prefixes.add("ex", "http://ex/");
        let ttl = s.export_turtle(&prefixes);
        let mut s3 = Store::new(ReasoningConfig::None);
        s3.load_turtle(&ttl).unwrap();
        assert_eq!(nt, s3.export_ntriples(), "turtle export round-trips");
    }

    #[test]
    fn saturation_plus_handles_owl_predicates() {
        let mut s = Store::new(ReasoningConfig::SaturationPlus);
        s.load_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix owl: <http://www.w3.org/2002/07/owl#> .
            ex:partOf a owl:TransitiveProperty .
            ex:hasPart owl:inverseOf ex:partOf .
            ex:wheel ex:partOf ex:axle .
            ex:axle ex:partOf ex:car .
        "#,
        )
        .unwrap();
        // transitivity: wheel partOf car
        let sols = s
            .answer_sparql("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:partOf ex:car }")
            .unwrap();
        assert_eq!(sols.len(), 2, "axle directly, wheel transitively");
        // inverse: car hasPart wheel
        let sols = s
            .answer_sparql("PREFIX ex: <http://ex/> SELECT ?y WHERE { ex:car ex:hasPart ?y }")
            .unwrap();
        assert_eq!(sols.len(), 2);
        // plain RDFS saturation ignores the OWL predicates
        s.set_config(ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting));
        let sols = s
            .answer_sparql("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:partOf ex:car }")
            .unwrap();
        assert_eq!(sols.len(), 1, "only the explicit edge");
    }

    #[test]
    fn datalog_cache_invalidation() {
        let mut s = store_with(ReasoningConfig::Datalog);
        assert_eq!(s.answer_sparql(MAMMALS).unwrap().len(), 1);
        s.load_turtle("@prefix ex: <http://ex/> .\nex:Felix a ex:Cat .")
            .unwrap();
        assert_eq!(
            s.answer_sparql(MAMMALS).unwrap().len(),
            2,
            "cache was invalidated"
        );
    }
}
