//! The write-ahead journal: an append-only file of length-prefixed,
//! CRC-32-checksummed update records.
//!
//! ```text
//! file   := magic(8) record*
//! record := len(u32 LE) crc32(u32 LE) payload(len bytes)
//! ```
//!
//! The checksum covers the payload. On open (and on replay) the file is
//! scanned front to back; the first record whose bytes are incomplete
//! marks a *torn tail* — the remainder is ignored and, on open-for-append,
//! truncated, because a crash mid-append can only damage the suffix of an
//! append-only file. A record whose bytes are all present but whose
//! checksum does not match is **corruption**, not tearing, and is
//! reported as a hard error rather than silently dropped.

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::{DurabilityError, FsyncPolicy};
use rdf_model::{Term, Triple};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use webreason_failpoints::fail_point_io;

/// File magic: "WRJNL" + format version 1.
pub const JOURNAL_MAGIC: [u8; 8] = *b"WRJNL\x01\0\0";

/// One journaled store operation.
///
/// Dictionary growth rides along with the operation that caused it:
/// `new_terms` lists every term interned since the previous record, in
/// interning order. Ids are not stored — the replay dictionary re-interns
/// the terms in order and necessarily assigns the same sequential ids —
/// so records stay valid independent of absolute id values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A batch insertion into the base graph.
    InsertBatch {
        /// Terms interned since the previous record, in interning order.
        new_terms: Vec<Term>,
        /// The inserted triples, as dictionary ids.
        triples: Vec<Triple>,
    },
    /// A batch deletion from the base graph.
    DeleteBatch {
        /// Terms interned since the previous record (deletions may intern
        /// terms while *resolving* ids even when nothing is removed).
        new_terms: Vec<Term>,
        /// The deleted triples, as dictionary ids.
        triples: Vec<Triple>,
    },
    /// The store switched reasoning strategy (by display name).
    SetConfig {
        /// `ReasoningConfig::name()` of the new strategy.
        name: String,
    },
    /// The store changed its worker-thread count.
    SetThreads {
        /// The new thread count.
        threads: u32,
    },
    /// A checkpoint covering every record before index `seq` was written
    /// successfully (informational; recovery works without it).
    CheckpointMark {
        /// Journal records reflected in the checkpoint.
        seq: u64,
    },
    /// A whole update script as one atomic record: an *ordered* mix of
    /// inserts and deletes that commits (and replays) all-or-nothing.
    /// Order matters — `insert` then `delete` of the same triple nets to
    /// absent. Older journals keep replaying through `InsertBatch` /
    /// `DeleteBatch`; this variant only appears once a writer groups a
    /// script into a single append.
    UpdateScript {
        /// Terms interned since the previous record, in interning order.
        new_terms: Vec<Term>,
        /// The script's operations, in request order.
        ops: Vec<ScriptedOp>,
    },
}

/// One operation of a [`JournalRecord::UpdateScript`], over encoded ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedOp {
    /// Insert the triple into the base graph.
    Insert(Triple),
    /// Delete the triple from the base graph (no-op if absent).
    Delete(Triple),
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            JournalRecord::InsertBatch { new_terms, triples } => {
                e.u8(1);
                encode_batch(&mut e, new_terms, triples);
            }
            JournalRecord::DeleteBatch { new_terms, triples } => {
                e.u8(2);
                encode_batch(&mut e, new_terms, triples);
            }
            JournalRecord::SetConfig { name } => {
                e.u8(3);
                e.str(name);
            }
            JournalRecord::SetThreads { threads } => {
                e.u8(4);
                e.u32(*threads);
            }
            JournalRecord::CheckpointMark { seq } => {
                e.u8(5);
                e.u64(*seq);
            }
            JournalRecord::UpdateScript { new_terms, ops } => {
                e.u8(6);
                e.u32(new_terms.len() as u32);
                for t in new_terms {
                    e.term(t);
                }
                e.u32(ops.len() as u32);
                for op in ops {
                    match op {
                        ScriptedOp::Insert(t) => {
                            e.u8(0);
                            e.triple(t);
                        }
                        ScriptedOp::Delete(t) => {
                            e.u8(1);
                            e.triple(t);
                        }
                    }
                }
            }
        }
        e.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<JournalRecord, crate::codec::CodecError> {
        let mut d = Decoder::new(payload);
        let rec = match d.u8("record tag")? {
            1 => {
                let (new_terms, triples) = decode_batch(&mut d)?;
                JournalRecord::InsertBatch { new_terms, triples }
            }
            2 => {
                let (new_terms, triples) = decode_batch(&mut d)?;
                JournalRecord::DeleteBatch { new_terms, triples }
            }
            3 => JournalRecord::SetConfig {
                name: d.str("config name")?.to_owned(),
            },
            4 => JournalRecord::SetThreads {
                threads: d.u32("thread count")?,
            },
            5 => JournalRecord::CheckpointMark {
                seq: d.u64("checkpoint seq")?,
            },
            6 => {
                let n_terms = d.u32("term count")? as usize;
                let mut new_terms = Vec::with_capacity(n_terms.min(1 << 16));
                for _ in 0..n_terms {
                    new_terms.push(d.term()?);
                }
                let n_ops = d.u32("op count")? as usize;
                let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
                for _ in 0..n_ops {
                    let op = match d.u8("op kind")? {
                        0 => ScriptedOp::Insert(d.triple()?),
                        1 => ScriptedOp::Delete(d.triple()?),
                        _ => {
                            return Err(crate::codec::CodecError {
                                offset: d.offset().saturating_sub(1),
                                what: "op kind",
                            })
                        }
                    };
                    ops.push(op);
                }
                JournalRecord::UpdateScript { new_terms, ops }
            }
            _ => {
                return Err(crate::codec::CodecError {
                    offset: 0,
                    what: "record tag",
                })
            }
        };
        if !d.is_exhausted() {
            return Err(crate::codec::CodecError {
                offset: d.offset(),
                what: "trailing bytes after record",
            });
        }
        Ok(rec)
    }
}

fn encode_batch(e: &mut Encoder, new_terms: &[Term], triples: &[Triple]) {
    e.u32(new_terms.len() as u32);
    for t in new_terms {
        e.term(t);
    }
    e.u32(triples.len() as u32);
    for t in triples {
        e.triple(t);
    }
}

fn decode_batch(d: &mut Decoder<'_>) -> Result<(Vec<Term>, Vec<Triple>), crate::codec::CodecError> {
    let n_terms = d.u32("term count")? as usize;
    let mut new_terms = Vec::with_capacity(n_terms.min(1 << 16));
    for _ in 0..n_terms {
        new_terms.push(d.term()?);
    }
    let n_triples = d.u32("triple count")? as usize;
    let mut triples = Vec::with_capacity(n_triples.min(1 << 16));
    for _ in 0..n_triples {
        triples.push(d.triple()?);
    }
    Ok((new_terms, triples))
}

/// The result of scanning a journal file front to back.
#[derive(Debug)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the intact prefix (magic + whole records).
    pub valid_len: u64,
    /// Bytes of torn tail after the intact prefix (0 = the file ends on a
    /// record boundary).
    pub torn_bytes: u64,
}

/// An open, append-position journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    seq: u64,
    fsync: FsyncPolicy,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for appending. An existing
    /// file is scanned: a torn tail is truncated away so new appends start
    /// on a record boundary; corrupt (checksum-failing) records are a hard
    /// error.
    pub fn open(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<Journal, DurabilityError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(&JOURNAL_MAGIC)?;
            file.sync_data()?;
            return Ok(Journal {
                file,
                path,
                seq: 0,
                fsync,
            });
        }
        let replay = Self::replay(&path)?;
        if replay.torn_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        Ok(Journal {
            file,
            path,
            seq: replay.records.len() as u64,
            fsync,
        })
    }

    /// Scans the journal at `path` without opening it for writing. A
    /// missing file reads as an empty journal.
    pub fn replay(path: impl AsRef<Path>) -> Result<Replay, DurabilityError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay {
                    records: Vec::new(),
                    valid_len: 0,
                    torn_bytes: 0,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let corrupt = |offset: u64, what: &str| DurabilityError::Corrupt {
            path: path.to_owned(),
            offset,
            what: what.to_owned(),
        };
        if bytes.len() < JOURNAL_MAGIC.len() {
            // Shorter than the magic: a torn creation; nothing recoverable.
            return Ok(Replay {
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: bytes.len() as u64,
            });
        }
        if bytes[..8] != JOURNAL_MAGIC {
            return Err(corrupt(0, "journal magic/version mismatch"));
        }
        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                return Ok(Replay {
                    records,
                    valid_len: pos as u64,
                    torn_bytes: 0,
                });
            }
            if remaining < 8 {
                // incomplete header: torn tail
                return Ok(Replay {
                    records,
                    valid_len: pos as u64,
                    torn_bytes: remaining as u64,
                });
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if remaining - 8 < len {
                // incomplete payload: torn tail
                return Ok(Replay {
                    records,
                    valid_len: pos as u64,
                    torn_bytes: remaining as u64,
                });
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                return Err(corrupt(pos as u64, "record checksum mismatch"));
            }
            let record = JournalRecord::decode(payload)
                .map_err(|e| corrupt((pos + 8 + e.offset) as u64, e.what))?;
            records.push(record);
            pos += 8 + len;
        }
    }

    /// Number of records ever appended (including those replayed on open).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Appends one record (write-ahead: callers journal *before* applying
    /// the operation in memory). Returns the record's index.
    pub fn append(&mut self, record: &JournalRecord) -> Result<u64, DurabilityError> {
        self.append_inner(record, self.fsync == FsyncPolicy::Always)
    }

    /// Appends one record *without* the per-record fsync the
    /// [`FsyncPolicy::Always`] policy would apply — the group-commit
    /// building block. The caller owes a [`Journal::sync_group`] before
    /// acknowledging the record as durable.
    pub fn append_deferred(&mut self, record: &JournalRecord) -> Result<u64, DurabilityError> {
        self.append_inner(record, false)
    }

    fn append_inner(&mut self, record: &JournalRecord, sync: bool) -> Result<u64, DurabilityError> {
        // Crash-style (panic/abort) and disk-fault-style (err(ENOSPC),
        // err(EIO)) actions both arm here; the err flavour surfaces as an
        // ordinary `DurabilityError::Io`, exactly like a full disk.
        fail_point_io!("store.journal.append");
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // One write call for the whole frame: a crash can tear the frame
        // but never interleave it with another record.
        self.file.write_all(&frame)?;
        let reg = obs::global();
        reg.add("durability.journal.appends", 1);
        reg.add("durability.journal.append_bytes", frame.len() as u64);
        if sync {
            self.file.sync_data()?;
            reg.add("durability.journal.fsyncs", 1);
        }
        let index = self.seq;
        self.seq += 1;
        Ok(index)
    }

    /// Forces buffered appends to disk regardless of the fsync policy.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        // A failed group fsync models the nastiest disk fault: the frames
        // are in the file but their durability was never acknowledged.
        fail_point_io!("store.journal.fsync");
        self.file.sync_data()?;
        obs::global().add("durability.journal.fsyncs", 1);
        Ok(())
    }

    /// Settles a group of [`Journal::append_deferred`] appends: one fsync
    /// under [`FsyncPolicy::Always`], a no-op under
    /// [`FsyncPolicy::Never`] (where the appends were never owed a sync).
    pub fn sync_group(&mut self) -> Result<(), DurabilityError> {
        if self.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("webreason-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.wal")
    }

    fn sample_records() -> Vec<JournalRecord> {
        use rdf_model::TermId;
        let t = |i| TermId::from_index(i);
        vec![
            JournalRecord::InsertBatch {
                new_terms: vec![Term::iri("http://ex/a"), Term::literal("x")],
                triples: vec![Triple::new(t(0), t(1), t(2)), Triple::new(t(2), t(1), t(0))],
            },
            JournalRecord::SetThreads { threads: 4 },
            JournalRecord::DeleteBatch {
                new_terms: vec![],
                triples: vec![Triple::new(t(0), t(1), t(2))],
            },
            JournalRecord::SetConfig {
                name: "saturation(dred)".into(),
            },
            JournalRecord::CheckpointMark { seq: 3 },
            JournalRecord::UpdateScript {
                new_terms: vec![Term::iri("http://ex/b")],
                ops: vec![
                    ScriptedOp::Insert(Triple::new(t(3), t(1), t(2))),
                    ScriptedOp::Delete(Triple::new(t(3), t(1), t(2))),
                    ScriptedOp::Insert(Triple::new(t(0), t(1), t(3))),
                ],
            },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip");
        let records = sample_records();
        {
            let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for (i, r) in records.iter().enumerate() {
                assert_eq!(j.append(r).unwrap(), i as u64);
            }
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
        // reopening resumes the sequence
        let j = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(j.seq(), records.len() as u64);
    }

    #[test]
    fn deferred_appends_replay_and_sync_group_settles_them() {
        let path = tmp("deferred");
        let records = sample_records();
        {
            let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for (i, r) in records.iter().enumerate() {
                assert_eq!(j.append_deferred(r).unwrap(), i as u64);
            }
            j.sync_group().unwrap();
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn script_op_kind_byte_is_validated() {
        // A frame whose payload claims tag 6 but carries an op kind
        // outside {0, 1} must be corruption, not a silent skip.
        let mut e = Encoder::new();
        e.u8(6);
        e.u32(0); // no new terms
        e.u32(1); // one op
        e.u8(7); // bogus kind
        assert!(JournalRecord::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn");
        {
            let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let clean = Journal::replay(&path).unwrap();
        // Cut the file mid-way through the final record.
        let cut = clean.valid_len as usize - 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), sample_records().len() - 1);
        assert!(replay.torn_bytes > 0, "tail reported torn");
        // Opening for append truncates the tail away…
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(j.seq(), sample_records().len() as u64 - 1);
        // …and the journal accepts appends cleanly afterwards.
        j.append(&JournalRecord::SetThreads { threads: 2 }).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), sample_records().len());
    }

    #[test]
    fn flipped_byte_is_corruption_not_tearing() {
        let path = tmp("flip");
        {
            let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte in every position after the magic: replay must
        // either report corruption or (for a flip inside the final record's
        // length header that shortens it) a torn tail — never panic, never
        // silently succeed with all records intact.
        for i in JOURNAL_MAGIC.len()..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            match Journal::replay(&path) {
                Err(DurabilityError::Corrupt { .. }) => {}
                Ok(replay) => {
                    assert!(
                        replay.records.len() < sample_records().len()
                            || replay.torn_bytes > 0
                            || replay.records != sample_records(),
                        "flip at byte {i} went unnoticed"
                    );
                }
                Err(e) => panic!("unexpected error kind for flip at {i}: {e}"),
            }
        }
        let mut bytes = clean;
        bytes[0] ^= 0x01; // magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::replay(&path),
            Err(DurabilityError::Corrupt { .. })
        ));
    }
}
