//! Differential epoch-replay oracle for incremental views.
//!
//! Seeded random insert/delete scripts run through the store while 1, 2
//! or 4 concurrent subscribers stream delta batches from the
//! [`SubscriptionHub`]. The invariant locked down here is the whole
//! point of the subsystem: **accumulating a subscription's delta stream
//! reproduces the from-scratch answer at every published epoch** — under
//! set (`SELECT DISTINCT`) and bag semantics, under Saturation and
//! Reformulation, with mid-script registrations, schema changes (view
//! rebuilds) and pull-side catch-up thrown in.
//!
//! `WEBREASON_PROPTEST_CASES` scales the case count (CI pins it).

use std::time::Duration;

use proptest::prelude::*;
use rdf_model::Term;
use rustc_hash::FxHashMap;
use sparql::compile_delta;
use webreason_core::{MaintenanceAlgorithm, ReasoningConfig, Store, StoreSnapshot};
use webreason_incremental::{DeltaBatch, HubConfig, NextWake, SubscriptionHub};

const TYPE: &str = rdf_model::vocab::RDF_TYPE;
const SUBCLASS: &str = rdf_model::vocab::RDFS_SUB_CLASS_OF;

/// One script operation, generated over small id spaces so collisions
/// (re-inserts, deletes of absent facts, net-zero churn) are common.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `n{a} rdf:type C{b}` — the bread-and-butter entailment feedstock.
    Type { insert: bool, node: u8, class: u8 },
    /// `n{a} p0 n{b}` — property facts for the join query.
    Prop { insert: bool, s: u8, o: u8 },
    /// `C{a} rdfs:subClassOf C{b}` — a schema change: forces the hub to
    /// rebuild every view (recompile + recount).
    Schema { insert: bool, sub: u8, sup: u8 },
}

#[derive(Debug, Clone)]
struct Scenario {
    /// Initial subclass edges loaded before anything subscribes.
    schema: Vec<(u8, u8)>,
    /// Facts present before registration (initial state is non-empty).
    preload: Vec<(u8, u8)>,
    /// The update script: one inner vec per published epoch.
    epochs: Vec<Vec<Op>>,
    /// 1, 2 or 4 concurrent subscribers per query.
    n_subs: usize,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..10, proptest::bool::ANY, 0u8..7, 0u8..7).prop_map(|(kind, insert, a, b)| match kind {
        0..=5 => Op::Type {
            insert,
            node: a,
            class: b % 5,
        },
        6..=8 => Op::Prop { insert, s: a, o: b },
        _ => Op::Schema {
            insert,
            sub: a % 5,
            sup: b % 5,
        },
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((0u8..5, 0u8..5), 0..5),
        proptest::collection::vec((0u8..7, 0u8..5), 0..8),
        proptest::collection::vec(proptest::collection::vec(arb_op(), 1..5), 1..7),
        prop_oneof![Just(1usize), Just(2), Just(4)],
    )
        .prop_map(|(schema, preload, epochs, n_subs)| Scenario {
            schema,
            preload,
            epochs,
            n_subs,
        })
}

fn iri(kind: &str, i: u8) -> String {
    format!("http://ex/{kind}{i}")
}

fn apply_op(store: &mut Store, op: Op) {
    let (insert, s, p, o) = match op {
        Op::Type {
            insert,
            node,
            class,
        } => (insert, iri("n", node), TYPE.to_owned(), iri("C", class)),
        Op::Prop { insert, s, o } => (insert, iri("n", s), iri("p", 0), iri("n", o)),
        Op::Schema { insert, sub, sup } => {
            (insert, iri("C", sub), SUBCLASS.to_owned(), iri("C", sup))
        }
    };
    let (s, p, o) = (Term::iri(s), Term::iri(p), Term::iri(o));
    if insert {
        store.insert_terms(&s, &p, &o);
    } else {
        store.delete_terms(&s, &p, &o);
    }
}

/// Accumulates a subscriber's batches into row → signed count state,
/// exactly as a client would.
fn apply_batch(state: &mut FxHashMap<Vec<String>, i64>, batch: &DeltaBatch) {
    if batch.reset {
        state.clear();
    }
    for ev in &batch.events {
        *state.entry(ev.row.clone()).or_insert(0) += ev.delta;
    }
    state.retain(|_, m| *m != 0);
}

/// From-scratch **set** oracle: the store's own strategy-aware answer
/// path (`snap.answer`), fully independent of the dataflow code.
fn set_oracle(store: &Store, sparql: &str) -> FxHashMap<Vec<String>, i64> {
    let reader = store.reader();
    let snap = reader.snapshot();
    let q = snap.prepare(sparql).unwrap();
    let (sols, _) = snap.answer(&q).unwrap();
    let dict = snap.dictionary();
    let mut out = FxHashMap::default();
    for row in sols.as_set() {
        let decoded: Vec<String> = row
            .iter()
            .map(|id| dict.decode(*id).unwrap().to_string())
            .collect();
        out.insert(decoded, 1);
    }
    out
}

/// From-scratch **bag** oracle: recompile the view's delta program
/// against the current snapshot and re-derive every row multiplicity
/// from zero — the differential counterpart of the incremental path.
fn bag_oracle(
    snap: &StoreSnapshot,
    sparql: &str,
    reformulate: bool,
) -> FxHashMap<Vec<String>, i64> {
    let q = snap.prepare(sparql).unwrap();
    let q = if reformulate {
        snap.reformulated(&q).unwrap().expect("BGP reformulates")
    } else {
        q
    };
    let program = compile_delta(&q).expect("delta-compilable");
    let graph = snap.view_graph().expect("materialized view graph");
    let dict = snap.dictionary();
    let mut out: FxHashMap<Vec<String>, i64> = FxHashMap::default();
    program.eval_full(graph, &dict, |row, m| {
        let decoded: Vec<String> = row
            .iter()
            .map(|id| dict.decode(*id).unwrap().to_string())
            .collect();
        *out.entry(decoded).or_insert(0) += m;
    });
    out.retain(|_, m| *m != 0);
    out
}

fn distinct_keys(state: &FxHashMap<Vec<String>, i64>) -> FxHashMap<Vec<String>, i64> {
    state
        .iter()
        .filter(|(_, &m)| m > 0)
        .map(|(k, _)| (k.clone(), 1))
        .collect()
}

/// `?x a C0` — touched by subclass entailment from every direction.
const SET_QUERY: &str = "SELECT DISTINCT ?x WHERE { ?x a <http://ex/C0> }";
const BAG_QUERY: &str = "SELECT ?x WHERE { ?x a <http://ex/C0> }";
/// A join: property fact × entailed type — deltas must seed both
/// positions (old graph left of the seed, new graph right of it).
const JOIN_QUERY: &str = "SELECT ?x ?y WHERE { ?x <http://ex/p0> ?y . ?y a <http://ex/C0> }";

struct Subscriber {
    id: u64,
    state: FxHashMap<Vec<String>, i64>,
    /// Last epoch this subscriber acknowledged (for the pull twin below).
    acked: u64,
}

/// Runs one scenario under one strategy for one query, with
/// `scenario.n_subs` concurrent streaming subscribers plus one pull-mode
/// subscriber exercising `catch_up` from its last acked epoch.
fn check_scenario(
    s: &Scenario,
    config: ReasoningConfig,
    sparql: &str,
    distinct: bool,
) -> Result<(), String> {
    // Under both rewriting strategies the dataflow views compile from the
    // union reformulation (the interval encoding only changes the answer
    // path), so the bag oracle reformulates for either.
    let reformulate = matches!(
        config,
        ReasoningConfig::Reformulation | ReasoningConfig::Interval
    );
    let mut store = Store::new(config);
    store.set_delta_tracking(true);
    for &(sub, sup) in &s.schema {
        apply_op(
            &mut store,
            Op::Schema {
                insert: true,
                sub,
                sup,
            },
        );
    }
    for &(node, class) in &s.preload {
        apply_op(
            &mut store,
            Op::Type {
                insert: true,
                node,
                class,
            },
        );
    }
    // Registration must see the loaded state: publish it first, and drop
    // the pre-registration delta (nobody is subscribed yet).
    let _ = store.take_delta();
    store.snapshot();

    let hub = SubscriptionHub::new(HubConfig::default());
    let reader = store.reader();
    let cancel = obs::CancelToken::none();
    let mut subs: Vec<Subscriber> = Vec::new();
    for _ in 0..s.n_subs {
        let ok = hub
            .subscribe(&reader, sparql, true, &cancel)
            .expect("registers");
        let mut state = FxHashMap::default();
        apply_batch(&mut state, &ok.initial);
        subs.push(Subscriber {
            id: ok.id,
            state,
            acked: ok.epoch,
        });
    }
    // The pull twin reads the same view through catch_up instead of a
    // streaming queue.
    let pull = hub
        .subscribe(&reader, sparql, false, &cancel)
        .expect("pull registers");
    let mut pull_state = FxHashMap::default();
    apply_batch(&mut pull_state, &pull.initial);
    let mut pull_acked = pull.epoch;

    // A straggler registers halfway through the script; its initial
    // snapshot must match the oracle *at that epoch*.
    let mid = s.epochs.len() / 2;
    let mut straggler: Option<Subscriber> = None;

    let verify =
        |store: &Store, state: &FxHashMap<Vec<String>, i64>, who: &str| -> Result<(), String> {
            if distinct {
                let oracle = set_oracle(store, sparql);
                prop_assert_eq!(
                    &distinct_keys(state),
                    &oracle,
                    "{} diverged from the set oracle",
                    who
                );
            } else {
                let reader = store.reader();
                let snap = reader.snapshot();
                let oracle = bag_oracle(&snap, sparql, reformulate);
                prop_assert_eq!(state, &oracle, "{} diverged from the bag oracle", who);
            }
            Ok(())
        };

    for (i, epoch_ops) in s.epochs.iter().enumerate() {
        if i == mid {
            let ok = hub
                .subscribe(&reader, sparql, true, &cancel)
                .expect("mid-script registration");
            let mut state = FxHashMap::default();
            apply_batch(&mut state, &ok.initial);
            verify(&store, &state, "straggler initial")?;
            straggler = Some(Subscriber {
                id: ok.id,
                state,
                acked: ok.epoch,
            });
        }

        let old = store.snapshot();
        for &op in epoch_ops {
            apply_op(&mut store, op);
        }
        let delta = store.take_delta();
        let new = store.snapshot();
        hub.publish(&old, &new, &delta);
        let epoch = new.epoch();

        for sub in subs.iter_mut().chain(straggler.as_mut()) {
            match hub.next_wake(sub.id, Duration::from_millis(50)) {
                NextWake::Batches(batches) => {
                    for b in &batches {
                        prop_assert!(b.epoch > sub.acked, "stale or duplicate epoch");
                        apply_batch(&mut sub.state, b);
                        sub.acked = b.epoch;
                    }
                }
                NextWake::Idle => {} // empty delta for this view
                other => return Err(format!("subscriber {} lost its stream: {other:?}", sub.id)),
            }
            verify(&store, &sub.state, "streaming subscriber")?;
        }

        // Pull twin: catch up from its last acked epoch.
        let cu = hub.catch_up(pull.id, pull_acked).expect("pull twin alive");
        prop_assert!(cu.terminal.is_none());
        for b in &cu.batches {
            apply_batch(&mut pull_state, b);
            pull_acked = pull_acked.max(b.epoch);
        }
        prop_assert!(pull_acked <= epoch);
        verify(&store, &pull_state, "catch-up subscriber")?;

        // All concurrent subscribers of one view agree with each other.
        for pair in subs.windows(2) {
            prop_assert_eq!(&pair[0].state, &pair[1].state, "subscribers disagree");
        }
    }
    Ok(())
}

/// Case-count knob: `WEBREASON_PROPTEST_CASES=200` for a deeper local
/// run; CI exports a fixed value so runs are comparable.
fn env_cases(default: u32) -> u32 {
    std::env::var("WEBREASON_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(env_cases(24)))]

    /// Saturation (Counting maintenance): subscribers consume the
    /// *entailed* delta over G∞.
    #[test]
    fn saturation_streams_replay_to_the_oracle(s in arb_scenario()) {
        let cfg = ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting);
        check_scenario(&s, cfg, SET_QUERY, true)?;
        check_scenario(&s, cfg, BAG_QUERY, false)?;
    }

    /// Reformulation: views run q_ref over the base graph and consume the
    /// base delta; schema ops force live view rebuilds.
    #[test]
    fn reformulation_streams_replay_to_the_oracle(s in arb_scenario()) {
        let cfg = ReasoningConfig::Reformulation;
        check_scenario(&s, cfg, SET_QUERY, true)?;
        check_scenario(&s, cfg, BAG_QUERY, false)?;
    }

    /// The join view under both strategies: deltas seed every pattern
    /// position, probing old graph left of the seed and new graph right.
    #[test]
    fn join_views_replay_to_the_oracle(s in arb_scenario()) {
        let sat = ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting);
        check_scenario(&s, sat, JOIN_QUERY, false)?;
        check_scenario(&s, ReasoningConfig::Reformulation, JOIN_QUERY, false)?;
    }

    /// Interval: the set oracle answers through the interval path (so a
    /// mid-script schema op forces a live re-encode of the interval
    /// dictionary) while the views keep streaming — neither side may
    /// corrupt the other.
    #[test]
    fn interval_streams_replay_to_the_oracle(s in arb_scenario()) {
        let cfg = ReasoningConfig::Interval;
        check_scenario(&s, cfg, SET_QUERY, true)?;
        check_scenario(&s, cfg, BAG_QUERY, false)?;
        check_scenario(&s, cfg, JOIN_QUERY, false)?;
    }
}

/// The journal-replay half of the mid-stream re-encode story: a durable
/// interval store takes a schema change between two data batches (each
/// answered through the interval path, so the first encoding exists and
/// is then invalidated), and [`Store::recover`] must rebuild a store
/// that answers exactly like the live one.
#[test]
fn interval_reencode_survives_journal_replay() {
    use std::num::NonZeroUsize;
    use webreason_core::{DurableStore, FsyncPolicy};

    let dir =
        std::env::temp_dir().join(format!("webreason-interval-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut live = DurableStore::create(
        &dir,
        ReasoningConfig::Interval,
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("durable store creates");

    let c0 = "SELECT DISTINCT ?x WHERE { ?x a <http://ex/C0> }";
    let answers = |s: &Store| s.answer_sparql(c0).unwrap().as_set();

    live.load_turtle(
        "@prefix ex: <http://ex/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         ex:C1 rdfs:subClassOf ex:C0 .\n\
         ex:n0 a ex:C1 .\n",
    )
    .expect("initial load");
    assert_eq!(live.store().answer_sparql(c0).unwrap().len(), 1);

    // Schema change mid-stream: C2 joins the hierarchy, so the interval
    // encoding built for the answer above is stale and must be rebuilt.
    live.load_turtle(
        "@prefix ex: <http://ex/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         ex:C2 rdfs:subClassOf ex:C0 .\n\
         ex:n1 a ex:C2 .\n",
    )
    .expect("schema change loads");
    assert_eq!(live.store().answer_sparql(c0).unwrap().len(), 2);

    // And a retraction on top, to replay a delete through the journal.
    live.delete_terms(
        &Term::iri("http://ex/n0"),
        &Term::iri(TYPE),
        &Term::iri("http://ex/C1"),
    )
    .expect("delete journals");

    let rec = Store::recover(live.dir()).expect("recovery replays the journal");
    assert_eq!(rec.stats(), live.stats());
    assert_eq!(answers(&rec), answers(live.store()));
    assert_eq!(rec.answer_sparql(c0).unwrap().len(), 1, "n1 remains");
}
