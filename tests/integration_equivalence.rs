//! Strategy equivalence on the LUBM workload: every reasoning strategy
//! must return the same answer sets on the reformulation dialect —
//! `q(G∞) = q_ref(G) = backward(G) = datalog(G)` — which is the semantic
//! backbone of the paper's performance comparison (the techniques compute
//! the *same* answers at different costs).
//!
//! The differential half of the file locks the union-aware evaluator AND
//! the interval (LiteMat-style) evaluator to that contract on *random*
//! schemas (cyclic and multi-parent DAGs included), graphs (empty ones
//! included) and queries: `q_ref(G)` under [`sparql::evaluate_union`] and
//! `q_int(G)` under [`sparql::evaluate_interval`] at 1, 2 and 4 threads
//! must equal `q(G∞)` — set-equal under `DISTINCT`; under bag semantics
//! both union evaluators must match, and the interval evaluator's
//! multiset must be thread-count invariant (its deduplicated branch list
//! makes raw-union multiplicity parity intentionally out of scope).
//! `WEBREASON_PROPTEST_CASES` scales the case count (CI pins it for
//! reproducibility; generation is already deterministic per test name and
//! case index).

use proptest::prelude::*;
use rdf_model::{Dictionary, Graph, Triple, Vocab};
use rdfs::saturate;
use rustc_hash::FxHashSet;
use sparql::{evaluate, evaluate_interval, evaluate_union, parse_query};
use std::num::NonZeroUsize;
use webreason_core::{ReasoningConfig, Store};
use workload::lubm::{generate, queries, LubmConfig};

#[test]
fn all_strategies_agree_on_lubm_q1_to_q10() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);

    // Reference answers from recompute-saturation.
    let mut reference: Vec<FxHashSet<Vec<rdf_model::TermId>>> = Vec::new();
    {
        let store = Store::from_parts(
            ds.dict.clone(),
            ds.vocab,
            ds.graph.clone(),
            ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Recompute),
        );
        for nq in &named {
            let mut q = nq.query.clone();
            q.distinct = true;
            reference.push(store.answer(&q).unwrap().as_set());
        }
    }

    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let store = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
        for (nq, want) in named.iter().zip(&reference) {
            let mut q = nq.query.clone();
            q.distinct = true;
            let got = store.answer(&q).unwrap().as_set();
            assert_eq!(
                &got,
                want,
                "{} disagrees on {} ({})",
                config.name(),
                nq.name,
                nq.description
            );
            assert!(!got.is_empty(), "{} is non-trivial", nq.name);
        }
    }
}

#[test]
fn threaded_saturation_store_agrees_on_lubm() {
    // The sharded parallel engine must be invisible end to end: a store
    // saturating with 4 worker threads answers every LUBM query exactly
    // like the single-threaded one, before and after an update.
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let config = ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Recompute);
    let mut seq = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
    let mut par = Store::from_parts_with_threads(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        config,
        std::num::NonZeroUsize::new(4).unwrap(),
    );
    assert_eq!(par.stats().threads, 4);

    let new_person = ds
        .dict
        .encode_iri("http://webreason.example/data/u0/d0/newhire");
    let head_of = ds
        .dict
        .encode_iri("http://webreason.example/univ-bench#headOf");
    let dept = ds.dict.encode_iri("http://webreason.example/data/u0/d0");
    let t = rdf_model::Triple::new(new_person, head_of, dept);

    for round in 0..2 {
        for nq in &named {
            let mut q = nq.query.clone();
            q.distinct = true;
            assert_eq!(
                par.answer(&q).unwrap().as_set(),
                seq.answer(&q).unwrap().as_set(),
                "4-thread store disagrees on {} (round {round})",
                nq.name
            );
        }
        seq.insert(t);
        par.insert(t);
    }
}

#[test]
fn plain_evaluation_misses_answers_on_lubm() {
    // The motivation for the whole paper: ignoring entailment loses answers.
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let none = Store::from_parts(
        ds.dict.clone(),
        ds.vocab,
        ds.graph.clone(),
        ReasoningConfig::None,
    );
    let sat = Store::from_parts(
        ds.dict,
        ds.vocab,
        ds.graph,
        ReasoningConfig::Saturation(webreason_core::MaintenanceAlgorithm::Counting),
    );
    let mut lossy = 0;
    for nq in &named {
        let mut q = nq.query.clone();
        q.distinct = true;
        let incomplete = none.answer(&q).unwrap().len();
        let complete = sat.answer(&q).unwrap().len();
        assert!(incomplete <= complete, "{}", nq.name);
        if incomplete < complete {
            lossy += 1;
        }
    }
    assert!(
        lossy >= 6,
        "most LUBM queries need reasoning; only {lossy} did"
    );
}

// --- differential harness: union-aware evaluator vs saturation vs legacy ---

/// Random schema + instance data. Subclass/subproperty edges are drawn as
/// arbitrary pairs, so cycles (`C0 ⊑ C1 ⊑ C0`) and self-loops occur
/// naturally; every `vec` lower bound is 0, so empty graphs occur too.
#[derive(Debug, Clone)]
struct DiffScenario {
    sub_class: Vec<(u8, u8)>,
    sub_prop: Vec<(u8, u8)>,
    domain: Vec<(u8, u8)>,
    range: Vec<(u8, u8)>,
    facts: Vec<(u8, u8, u8)>,
    types: Vec<(u8, u8)>,
    query_class: u8,
    query_prop: u8,
}

fn arb_diff_scenario() -> impl Strategy<Value = DiffScenario> {
    (
        proptest::collection::vec((0u8..5, 0u8..5), 0..8),
        proptest::collection::vec((0u8..4, 0u8..4), 0..5),
        proptest::collection::vec((0u8..4, 0u8..5), 0..4),
        proptest::collection::vec((0u8..4, 0u8..5), 0..4),
        proptest::collection::vec((0u8..8, 0u8..4, 0u8..8), 0..24),
        proptest::collection::vec((0u8..8, 0u8..5), 0..12),
        0u8..5,
        0u8..4,
    )
        .prop_map(
            |(sub_class, sub_prop, domain, range, facts, types, query_class, query_prop)| {
                DiffScenario {
                    sub_class,
                    sub_prop,
                    domain,
                    range,
                    facts,
                    types,
                    query_class,
                    query_prop,
                }
            },
        )
}

fn build_diff_graph(s: &DiffScenario) -> (Dictionary, Vocab, Graph) {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
    let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
    let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
    let mut g = Graph::new();
    for &(a, b) in &s.sub_class {
        let t = Triple::new(class(&mut dict, a), vocab.sub_class_of, class(&mut dict, b));
        g.insert(t);
    }
    for &(a, b) in &s.sub_prop {
        let t = Triple::new(
            prop(&mut dict, a),
            vocab.sub_property_of,
            prop(&mut dict, b),
        );
        g.insert(t);
    }
    for &(p, c) in &s.domain {
        let t = Triple::new(prop(&mut dict, p), vocab.domain, class(&mut dict, c));
        g.insert(t);
    }
    for &(p, c) in &s.range {
        let t = Triple::new(prop(&mut dict, p), vocab.range, class(&mut dict, c));
        g.insert(t);
    }
    for &(a, p, b) in &s.facts {
        let t = Triple::new(node(&mut dict, a), prop(&mut dict, p), node(&mut dict, b));
        g.insert(t);
    }
    for &(a, c) in &s.types {
        let t = Triple::new(node(&mut dict, a), vocab.rdf_type, class(&mut dict, c));
        g.insert(t);
    }
    (dict, vocab, g)
}

/// Case-count knob: `WEBREASON_PROPTEST_CASES=200` for a deeper local
/// run; CI exports a fixed value so runs are comparable.
fn env_cases(default: u32) -> u32 {
    std::env::var("WEBREASON_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const DIFF_THREADS: [usize; 3] = [1, 2, 4];

/// The differential check for one query text over one scenario graph:
/// reformulate (union and interval), then compare every evaluation route —
/// the three-strategy oracle `q_int(G) = q_ref(G) = q(G∞)`.
fn assert_routes_agree(
    dict: &mut Dictionary,
    vocab: &Vocab,
    g: &Graph,
    sat_graph: &Graph,
    query_text: &str,
) -> Result<(), String> {
    let q = parse_query(query_text, dict).map_err(|e| format!("{query_text}: {e}"))?;
    let schema = rdfs::Schema::extract(g, vocab);
    let r =
        reformulation::reformulate(&q, &schema, vocab).map_err(|e| format!("{query_text}: {e}"))?;
    // The interval rewriter accepts exactly the reformulation dialect:
    // whenever `reformulate` succeeds, so must `reformulate_intervals`.
    let idict = std::sync::Arc::new(schema.interval_dict());
    let iq = reformulation::reformulate_intervals(&q, &schema, vocab, idict)
        .map_err(|e| format!("{query_text}: interval rewrite refused: {e}"))?;

    // Answer-set semantics: q(G∞) is the ground truth.
    let reference = evaluate(sat_graph, &q).as_set();
    let legacy = evaluate(g, &r.query).as_set();
    if legacy != reference {
        return Err(format!("legacy q_ref(G) != q(G∞) on {query_text}"));
    }
    for t in DIFF_THREADS {
        let (sols, stats) = evaluate_union(g, &r.query, NonZeroUsize::new(t).unwrap());
        if sols.as_set() != reference {
            return Err(format!("union eval ({t} threads) != q(G∞) on {query_text}"));
        }
        if stats.rows != sols.len() {
            return Err(format!("stats.rows mismatch ({t} threads) on {query_text}"));
        }
        let (isols, istats) = evaluate_interval(g, &iq, NonZeroUsize::new(t).unwrap());
        if isols.as_set() != reference {
            return Err(format!(
                "interval eval ({t} threads) != q(G∞) on {query_text}"
            ));
        }
        if istats.rows != isols.len() {
            return Err(format!(
                "interval stats.rows mismatch ({t} threads) on {query_text}"
            ));
        }
    }

    // Bag semantics: both evaluators of q_ref must agree on multiplicities.
    let mut bag = r.query.clone();
    bag.distinct = false;
    let legacy_bag = evaluate(g, &bag).sorted_rows();
    for t in DIFF_THREADS {
        let (sols, _) = evaluate_union(g, &bag, NonZeroUsize::new(t).unwrap());
        if sols.sorted_rows() != legacy_bag {
            return Err(format!(
                "union eval bag ({t} threads) != legacy bag on {query_text}"
            ));
        }
    }
    // Interval bag semantics: the rewriter canonically deduplicates its
    // branch list, so multiplicities can legitimately differ from the raw
    // union's — the contract is that the worker split stays invisible:
    // every thread count returns the same multiset as one thread.
    let mut ibag = iq.clone();
    ibag.query.distinct = false;
    let ibag_reference = {
        let (sols, _) = evaluate_interval(g, &ibag, NonZeroUsize::MIN);
        sols.sorted_rows()
    };
    for t in DIFF_THREADS {
        let (sols, _) = evaluate_interval(g, &ibag, NonZeroUsize::new(t).unwrap());
        if sols.sorted_rows() != ibag_reference {
            return Err(format!(
                "interval bag ({t} threads) != single-threaded interval bag on {query_text}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(env_cases(32)))]

    /// On random graphs, schemas (cyclic included) and queries, the
    /// union-aware evaluator matches `q(G∞)` and the legacy per-branch
    /// evaluator at 1, 2 and 4 threads, under both set and bag semantics.
    #[test]
    fn union_evaluator_is_differentially_equivalent(s in arb_diff_scenario()) {
        let (mut dict, vocab, g) = build_diff_graph(&s);
        let sat = saturate(&g, &vocab);
        let type_q = format!(
            "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C{}> }}",
            rdf_model::vocab::RDF_TYPE,
            s.query_class
        );
        let prop_q = format!(
            "SELECT DISTINCT ?x ?y WHERE {{ ?x <http://ex/p{}> ?y }}",
            s.query_prop
        );
        let join_q = format!(
            "SELECT DISTINCT ?x WHERE {{ ?x <http://ex/p{}> ?y . ?y <{}> <http://ex/C{}> }}",
            s.query_prop,
            rdf_model::vocab::RDF_TYPE,
            s.query_class
        );
        for query_text in [&type_q, &prop_q, &join_q] {
            if let Err(msg) =
                assert_routes_agree(&mut dict, &vocab, &g, &sat.graph, query_text)
            {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}

#[test]
fn union_evaluator_handles_empty_graph() {
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let g = Graph::new();
    let sat = saturate(&g, &vocab);
    let q = format!(
        "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C0> }}",
        rdf_model::vocab::RDF_TYPE
    );
    assert_routes_agree(&mut dict, &vocab, &g, &sat.graph, &q).unwrap();
}

#[test]
fn union_evaluator_handles_cyclic_schema() {
    // C0 ⊑ C1 ⊑ C2 ⊑ C0 and p0 ⊑ p1 ⊑ p0: every class is equivalent to
    // every other, so a query on any of them returns all typed nodes, and
    // reformulation must terminate despite the cycles.
    let mut dict = Dictionary::new();
    let vocab = Vocab::intern(&mut dict);
    let class = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/C{i}"));
    let prop = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/p{i}"));
    let node = |d: &mut Dictionary, i: u8| d.encode_iri(&format!("http://ex/n{i}"));
    let mut g = Graph::new();
    for (a, b) in [(0u8, 1u8), (1, 2), (2, 0)] {
        let t = Triple::new(class(&mut dict, a), vocab.sub_class_of, class(&mut dict, b));
        g.insert(t);
    }
    for (a, b) in [(0u8, 1u8), (1, 0)] {
        let t = Triple::new(
            prop(&mut dict, a),
            vocab.sub_property_of,
            prop(&mut dict, b),
        );
        g.insert(t);
    }
    let n0 = node(&mut dict, 0);
    let n1 = node(&mut dict, 1);
    let c0 = class(&mut dict, 0);
    let p1 = prop(&mut dict, 1);
    g.insert(Triple::new(n0, vocab.rdf_type, c0));
    g.insert(Triple::new(n0, p1, n1));
    let sat = saturate(&g, &vocab);

    for i in 0..3u8 {
        let q = format!(
            "SELECT DISTINCT ?x WHERE {{ ?x <{}> <http://ex/C{i}> }}",
            rdf_model::vocab::RDF_TYPE
        );
        assert_routes_agree(&mut dict, &vocab, &g, &sat.graph, &q).unwrap();
        // The cycle makes C0 ⊑ Ci for every i: n0 is an answer everywhere.
        let parsed = parse_query(&q, &mut dict).unwrap();
        assert_eq!(evaluate(&sat.graph, &parsed).len(), 1, "C{i}");
    }
    for i in 0..2u8 {
        let q = format!("SELECT DISTINCT ?x ?y WHERE {{ ?x <http://ex/p{i}> ?y }}");
        assert_routes_agree(&mut dict, &vocab, &g, &sat.graph, &q).unwrap();
    }
}

#[test]
fn strategies_agree_after_updates() {
    let mut ds = generate(&LubmConfig::tiny());
    let named = queries(&mut ds);
    let q5 = named
        .iter()
        .find(|nq| nq.name == "Q5")
        .unwrap()
        .query
        .clone();

    // Pick an update: a new head of department d1 (headOf ⊑ worksFor ⊑ memberOf).
    let new_person = ds
        .dict
        .encode_iri("http://webreason.example/data/u0/d0/newhire");
    let head_of = ds
        .dict
        .encode_iri("http://webreason.example/univ-bench#headOf");
    let dept = ds.dict.encode_iri("http://webreason.example/data/u0/d0");
    let t = rdf_model::Triple::new(new_person, head_of, dept);

    let mut results = Vec::new();
    for config in ReasoningConfig::ALL {
        if config == ReasoningConfig::None {
            continue;
        }
        let mut store = Store::from_parts(ds.dict.clone(), ds.vocab, ds.graph.clone(), config);
        let mut q = q5.clone();
        q.distinct = true;
        let before = store.answer(&q).unwrap().len();
        store.insert(t);
        let after = store.answer(&q).unwrap().len();
        assert_eq!(after, before + 1, "{}: new member visible", config.name());
        store.delete(&t);
        let back = store.answer(&q).unwrap().as_set();
        results.push((config.name(), before, back));
    }
    let first = results[0].2.clone();
    for (name, _, set) in &results {
        assert_eq!(set, &first, "{name} diverged after update round-trip");
    }
}
