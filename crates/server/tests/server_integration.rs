//! Socket-level integration suite: a real `TcpStream` client against a
//! real ephemeral-port server, covering the round-trips, the 4xx
//! robustness contract, queue backpressure, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig};
use webreason_server::{Server, ServerConfig};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(name: &str, config: ServerConfig) -> Server {
    let store = DurableStore::create(
        tmpdir(name),
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        NonZeroUsize::MIN,
        FsyncPolicy::Never,
    )
    .expect("store creates");
    Server::start(store, config).expect("server boots")
}

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        ..Default::default()
    }
}

/// Sends raw bytes, reads to EOF, returns (status, whole response text).
fn raw_round_trip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    stream.write_all(raw).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    raw_round_trip(addr, raw.as_bytes())
}

const COUNT_MAMMALS: &str = "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Mammal }";

#[test]
fn query_update_metrics_round_trip() {
    let server = boot("round-trip", ephemeral());
    let addr = server.local_addr();

    let (status, text) = get(addr, "/health");
    assert_eq!(status, 200, "{text}");

    // Empty store answers empty.
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Schema + instance through /update: entailment shows in /query.
    let (status, text) = post(
        addr,
        "/update",
        "# zoo\n\
         insert <http://ex/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Mammal> .\n\
         insert <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"accepted\":2"), "{text}");

    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("<http://ex/Tom>"), "entailed answer: {text}");

    // Delete retracts the entailment.
    let (status, text) = post(
        addr,
        "/update",
        "delete <http://ex/Tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Cat> .\n",
    );
    assert_eq!(status, 200, "{text}");
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200);
    assert!(text.contains("\"rows\":[]"), "{text}");

    // Metrics reflect the traffic and stay machine-readable.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let body = text.split("\r\n\r\n").nth(1).expect("metrics body");
    obs::lint_prometheus_text(body).expect("prometheus output lints");
    assert!(
        body.contains("webreason_server_query_requests_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_applied_total"),
        "{body}"
    );
    assert!(
        body.contains("webreason_server_update_queue_capacity"),
        "{body}"
    );

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 1, "schema triple remains");
}

#[test]
fn malformed_inputs_get_4xx_without_killing_workers() {
    let server = boot("malformed", ephemeral());
    let addr = server.local_addr();

    // Garbage request line.
    let (status, _) = raw_round_trip(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // Smuggling attempt: both framings at once.
    let (status, _) = raw_round_trip(
        addr,
        b"POST /update HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 400);
    // Unknown path / wrong method.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/query");
    assert_eq!(status, 405);
    // Malformed SPARQL and malformed update script.
    let (status, text) = post(addr, "/query", "SELECT WHERE garbage {{{");
    assert_eq!(status, 400, "{text}");
    let (status, text) = post(addr, "/update", "upsert <a> <b> <c> .");
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("line 1"), "{text}");

    // After all of that the workers still serve.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    let (status, text) = post(addr, "/query", COUNT_MAMMALS);
    assert_eq!(status, 200, "{text}");

    drop(server.shutdown());
}

#[test]
fn oversized_bodies_are_rejected_not_buffered() {
    let mut config = ephemeral();
    config.limits.max_body_bytes = 256;
    let server = boot("oversized", config);
    let addr = server.local_addr();

    let big = "x".repeat(1024);
    let (status, _) = post(addr, "/query", &big);
    assert_eq!(status, 413);

    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200, "server survives oversized bodies");
    drop(server.shutdown());
}

#[test]
fn full_update_queue_backpressures_with_429() {
    let mut config = ephemeral();
    config.threads = 4;
    config.update_queue = 1;
    config.retry_after_secs = 7;
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("backpressure", config);
    let addr = server.local_addr();

    let insert = |i: usize| format!("insert <http://ex/s{i}> <http://ex/p> <http://ex/o> .\n");
    // A occupies the writer (sleeping in the delay hook); B fills the
    // one-slot queue. Both run on their own threads because they block
    // until applied.
    let a = {
        let body = insert(0);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));
    let b = {
        let body = insert(1);
        std::thread::spawn(move || post(addr, "/update", &body))
    };
    std::thread::sleep(Duration::from_millis(100));

    // C finds the queue full: 429 + Retry-After, immediately.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("Retry-After: 7"), "{text}");

    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "{text}");
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 200, "{text}");

    // Queue drained: the retried update now lands.
    let (status, text) = post(addr, "/update", &insert(2));
    assert_eq!(status, 200, "{text}");

    let store = server.shutdown();
    assert_eq!(store.stats().base_triples, 3, "A, B and the retried C");
}

#[test]
fn graceful_shutdown_drains_in_flight_and_503s_stragglers() {
    let mut config = ephemeral();
    config.threads = 1; // one worker: a queued connection stays queued
    config.writer_delay = Some(Duration::from_millis(400));
    let server = boot("shutdown", config);
    let addr = server.local_addr();

    // A's update is in flight: the lone worker blocks on the writer.
    let a = std::thread::spawn(move || {
        post(
            addr,
            "/update",
            "insert <http://ex/s> <http://ex/p> <http://ex/o> .\n",
        )
    });
    std::thread::sleep(Duration::from_millis(100));

    // B is accepted but waits for the busy worker.
    let b = std::thread::spawn(move || post(addr, "/query", COUNT_MAMMALS));
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown begins while A is mid-apply and B is queued.
    let shut = std::thread::spawn(move || server.shutdown());

    // In-flight work completes: A's journaled update is acknowledged.
    let (status, text) = a.join().expect("client A");
    assert_eq!(status, 200, "in-flight update drains: {text}");
    // The straggler gets a clean 503, not a hang or a reset.
    let (status, text) = b.join().expect("client B");
    assert_eq!(status, 503, "straggler: {text}");

    let store = shut.join().expect("shutdown returns");
    assert_eq!(store.stats().base_triples, 1, "A's triple survived");
}

#[test]
fn keep_alive_and_pipelining_serve_multiple_requests_per_connection() {
    let server = boot("keepalive", ephemeral());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    // Two pipelined health checks, then a closing one.
    let one = "GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let last = "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream
        .write_all(format!("{one}{one}{last}").as_bytes())
        .expect("pipeline writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("responses read");
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 3, "{text}");

    drop(server.shutdown());
}
