//! The strategy advisor — the paper's third open issue (§II-D):
//! "automatizing to the extent possible the choice between these two
//! techniques, based on a quantitative evaluation of the application
//! setting."
//!
//! Given a measured [`CostProfile`] and a description of the application's
//! workload (how many query executions happen per update, and what kinds
//! of updates occur), [`advise`] compares the steady-state cost per
//! *epoch* — one update followed by `queries_per_update` query runs —
//! under each technique and recommends the cheaper one, per query and
//! overall.

use crate::cost::{CostProfile, ObservedCosts, QueryCosts};
use crate::threshold::Threshold;
use serde::Serialize;

/// Relative frequency of each update kind; need not be normalised.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct UpdateMix {
    /// Instance insertions.
    pub instance_insert: f64,
    /// Instance deletions.
    pub instance_delete: f64,
    /// Schema insertions.
    pub schema_insert: f64,
    /// Schema deletions.
    pub schema_delete: f64,
}

impl UpdateMix {
    /// The common Semantic Web case: mostly instance insertions.
    pub fn append_mostly() -> Self {
        UpdateMix {
            instance_insert: 0.9,
            instance_delete: 0.1,
            schema_insert: 0.0,
            schema_delete: 0.0,
        }
    }

    /// Integration scenario: independently-authored schemas churn too
    /// ("typical Semantic Web scenarios involve integrating data from
    /// several RDF repositories … authored independently", §I).
    pub fn schema_churn() -> Self {
        UpdateMix {
            instance_insert: 0.4,
            instance_delete: 0.2,
            schema_insert: 0.2,
            schema_delete: 0.2,
        }
    }

    fn total(&self) -> f64 {
        self.instance_insert + self.instance_delete + self.schema_insert + self.schema_delete
    }
}

/// A workload description: the quantitative "application setting".
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WorkloadMix {
    /// Average query executions between two consecutive updates. `0` means
    /// update-only; `f64::INFINITY` means read-only.
    pub queries_per_update: f64,
    /// What the updates look like.
    pub updates: UpdateMix,
}

/// Which technique to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Recommendation {
    /// Materialise and maintain `G∞`.
    Saturation,
    /// Reformulate at query time.
    Reformulation,
    /// Interval rewriting: range scans over the LiteMat interval
    /// dictionary, re-encoded on schema change.
    Interval,
}

/// Advice for one query.
#[derive(Debug, Clone, Serialize)]
pub struct QueryAdvice {
    /// Query name.
    pub name: String,
    /// Cost per epoch under saturation (maintenance + evaluations), seconds.
    pub saturation_epoch_cost: f64,
    /// Cost per epoch under reformulation, seconds.
    pub reformulation_epoch_cost: f64,
    /// The cheaper technique for this query alone.
    pub recommendation: Recommendation,
    /// The update threshold restated: epochs-per-amortisation under the
    /// mixed update cost.
    pub mixed_update_threshold: Threshold,
}

/// Overall advice.
#[derive(Debug, Clone, Serialize)]
pub struct Advice {
    /// Workload-weighted cost per epoch under saturation.
    pub saturation_epoch_cost: f64,
    /// Workload-weighted cost per epoch under reformulation.
    pub reformulation_epoch_cost: f64,
    /// The overall recommendation.
    pub recommendation: Recommendation,
    /// Per-query breakdown.
    pub per_query: Vec<QueryAdvice>,
}

/// Average maintenance cost per update under the mix.
fn mixed_update_cost(profile: &CostProfile, mix: &UpdateMix) -> f64 {
    let total = mix.total();
    if total <= 0.0 {
        return 0.0;
    }
    (profile.maintenance.instance_insert * mix.instance_insert
        + profile.maintenance.instance_delete * mix.instance_delete
        + profile.maintenance.schema_insert * mix.schema_insert
        + profile.maintenance.schema_delete * mix.schema_delete)
        / total
}

/// Compares the two techniques under `workload` and recommends the cheaper.
pub fn advise(profile: &CostProfile, workload: &WorkloadMix) -> Advice {
    let update_cost = mixed_update_cost(profile, &workload.updates);
    let k = workload.queries_per_update.max(0.0);

    let mut per_query = Vec::with_capacity(profile.queries.len());
    let (mut sat_total, mut ref_total) = (0.0, 0.0);
    for q in &profile.queries {
        let eval_ref = q.eval_reformulated + q.reformulation_time;
        let (sat_cost, ref_cost) = if k.is_infinite() {
            // Read-only: compare pure evaluation rates.
            (q.eval_saturated, eval_ref)
        } else {
            (update_cost + k * q.eval_saturated, k * eval_ref)
        };
        sat_total += sat_cost;
        ref_total += ref_cost;
        per_query.push(QueryAdvice {
            name: q.name.clone(),
            saturation_epoch_cost: sat_cost,
            reformulation_epoch_cost: ref_cost,
            recommendation: if sat_cost <= ref_cost {
                Recommendation::Saturation
            } else {
                Recommendation::Reformulation
            },
            mixed_update_threshold: Threshold::compute(update_cost, q.eval_saturated, eval_ref),
        });
    }
    let n = profile.queries.len().max(1) as f64;
    let (saturation_epoch_cost, reformulation_epoch_cost) = (sat_total / n, ref_total / n);
    Advice {
        saturation_epoch_cost,
        reformulation_epoch_cost,
        recommendation: if saturation_epoch_cost <= reformulation_epoch_cost {
            Recommendation::Saturation
        } else {
            Recommendation::Reformulation
        },
        per_query,
    }
}

/// Casts observed per-operation means into a one-entry [`CostProfile`]
/// (the pseudo-query `"observed"` aggregates the live workload), so every
/// profile-based consumer — [`advise`], `compute_thresholds`, the bench
/// reports — can run on observed numbers unchanged.
pub fn observed_profile(costs: &ObservedCosts) -> CostProfile {
    CostProfile {
        base_triples: 0,
        saturated_triples: 0,
        saturation_time: costs.saturation,
        maintenance_algorithm: "observed".to_owned(),
        maintenance: costs.maintenance,
        queries: vec![QueryCosts {
            name: "observed".to_owned(),
            eval_saturated: costs.eval_saturated,
            // The union span wraps planning + reformulated evaluation, so
            // the run-time reformulation cost is already inside it.
            reformulation_time: 0.0,
            eval_reformulated: costs.eval_reformulated,
            branches: 0,
            shared_prefix_scans: 0,
            scan_cache_hits: 0,
            answers: 0,
        }],
    }
}

/// [`advise`] on observed costs. `None` when the snapshot did not observe
/// both answer paths — there is no measured ratio to compare.
pub fn advise_observed(costs: &ObservedCosts, workload: &WorkloadMix) -> Option<Advice> {
    if !costs.covers_both_paths() {
        return None;
    }
    Some(advise(&observed_profile(costs), workload))
}

/// Three-way advice on observed costs: saturation vs reformulation vs
/// interval rewriting, per epoch of `workload`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThreeWayAdvice {
    /// Cost per epoch under saturation (maintenance + evaluations), seconds.
    pub saturation_epoch_cost: f64,
    /// Cost per epoch under reformulation, seconds.
    pub reformulation_epoch_cost: f64,
    /// Cost per epoch under interval rewriting: schema updates pay a
    /// dictionary re-encode, instance updates are free, evaluations run
    /// the range-scan evaluator.
    pub interval_epoch_cost: f64,
    /// The cheapest of the three (ties resolve in the order saturation,
    /// reformulation, interval).
    pub recommendation: Recommendation,
}

/// Compares all three observed answer paths under `workload`. `None`
/// unless the snapshot observed every path (see
/// [`ObservedCosts::covers_both_paths`] and
/// [`ObservedCosts::covers_interval`]).
pub fn advise_three_way(costs: &ObservedCosts, workload: &WorkloadMix) -> Option<ThreeWayAdvice> {
    if !costs.covers_both_paths() || !costs.covers_interval() {
        return None;
    }
    let mix = &workload.updates;
    let total = mix.total();
    let update_cost = mixed_update_cost(&observed_profile(costs), mix);
    // Interval maintenance: only schema updates trigger a re-encode.
    let schema_fraction = if total > 0.0 {
        (mix.schema_insert + mix.schema_delete) / total
    } else {
        0.0
    };
    let k = workload.queries_per_update.max(0.0);
    let (sat, refo, interval) = if k.is_infinite() {
        (
            costs.eval_saturated,
            costs.eval_reformulated,
            costs.eval_interval,
        )
    } else {
        (
            update_cost + k * costs.eval_saturated,
            k * costs.eval_reformulated,
            schema_fraction * costs.interval_reencode + k * costs.eval_interval,
        )
    };
    let recommendation = if sat <= refo && sat <= interval {
        Recommendation::Saturation
    } else if refo <= interval {
        Recommendation::Reformulation
    } else {
        Recommendation::Interval
    };
    Some(ThreeWayAdvice {
        saturation_epoch_cost: sat,
        reformulation_epoch_cost: refo,
        interval_epoch_cost: interval,
        recommendation,
    })
}

/// Closes the self-tuning loop end to end: reads [`ObservedCosts`] out of
/// a live metrics snapshot and recommends the cheaper technique for
/// `workload`. This is the paper's §II-D "automatizing … based on a
/// quantitative evaluation of the application setting", with the
/// quantities measured by the system itself.
pub fn advise_from_snapshot(snap: &obs::MetricsSnapshot, workload: &WorkloadMix) -> Option<Advice> {
    advise_observed(&ObservedCosts::from_snapshot(snap), workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{MaintenanceCosts, QueryCosts};

    fn profile_with(maint: MaintenanceCosts, eval_sat: f64, eval_ref: f64) -> CostProfile {
        CostProfile {
            base_triples: 100,
            saturated_triples: 150,
            saturation_time: 1.0,
            maintenance_algorithm: "counting".into(),
            maintenance: maint,
            queries: vec![QueryCosts {
                name: "Q".into(),
                eval_saturated: eval_sat,
                reformulation_time: 0.0,
                eval_reformulated: eval_ref,
                branches: 3,
                shared_prefix_scans: 0,
                scan_cache_hits: 0,
                answers: 5,
            }],
        }
    }

    const CHEAP_MAINT: MaintenanceCosts = MaintenanceCosts {
        instance_insert: 0.0001,
        instance_delete: 0.0001,
        schema_insert: 0.001,
        schema_delete: 0.001,
    };
    const COSTLY_MAINT: MaintenanceCosts = MaintenanceCosts {
        instance_insert: 0.5,
        instance_delete: 0.5,
        schema_insert: 2.0,
        schema_delete: 2.0,
    };

    #[test]
    fn read_heavy_workload_prefers_saturation() {
        // "If the RDF graph never changes, RDF saturation is clearly
        // preferable" (§II-B).
        let p = profile_with(COSTLY_MAINT, 0.001, 0.010);
        let advice = advise(
            &p,
            &WorkloadMix {
                queries_per_update: f64::INFINITY,
                updates: UpdateMix::append_mostly(),
            },
        );
        assert_eq!(advice.recommendation, Recommendation::Saturation);
    }

    #[test]
    fn update_heavy_workload_prefers_reformulation() {
        // "on a frequently changing graph, saturation maintenance costs may
        // be prohibitive, and thus reformulation is the only choice".
        let p = profile_with(COSTLY_MAINT, 0.001, 0.010);
        let advice = advise(
            &p,
            &WorkloadMix {
                queries_per_update: 1.0,
                updates: UpdateMix::schema_churn(),
            },
        );
        assert_eq!(advice.recommendation, Recommendation::Reformulation);
    }

    #[test]
    fn crossover_moves_with_query_rate() {
        // maintenance 0.5s/update (instance), gain 9ms/query → crossover
        // near 0.5 / 0.009 ≈ 56 queries per update.
        let p = profile_with(
            MaintenanceCosts {
                instance_insert: 0.5,
                instance_delete: 0.5,
                schema_insert: 0.5,
                schema_delete: 0.5,
            },
            0.001,
            0.010,
        );
        let mix = UpdateMix::append_mostly();
        let low = advise(
            &p,
            &WorkloadMix {
                queries_per_update: 10.0,
                updates: mix,
            },
        );
        assert_eq!(low.recommendation, Recommendation::Reformulation);
        let high = advise(
            &p,
            &WorkloadMix {
                queries_per_update: 100.0,
                updates: mix,
            },
        );
        assert_eq!(high.recommendation, Recommendation::Saturation);
        // the per-query threshold pins the crossover
        let t = high.per_query[0].mixed_update_threshold.runs().unwrap();
        assert!((50..=60).contains(&t), "got {t}");
    }

    #[test]
    fn reformulation_faster_eval_never_amortises() {
        let p = profile_with(CHEAP_MAINT, 0.010, 0.005);
        let advice = advise(
            &p,
            &WorkloadMix {
                queries_per_update: 1e9,
                updates: UpdateMix::append_mostly(),
            },
        );
        assert_eq!(advice.recommendation, Recommendation::Reformulation);
        assert_eq!(advice.per_query[0].mixed_update_threshold, Threshold::Never);
    }

    #[test]
    fn update_mix_weighting_matters() {
        // Schema updates cost 2s, instance updates 1ms: the recommendation
        // flips with the mix at a fixed query rate.
        let p = profile_with(
            MaintenanceCosts {
                instance_insert: 0.001,
                instance_delete: 0.001,
                schema_insert: 2.0,
                schema_delete: 2.0,
            },
            0.001,
            0.002,
        );
        let k = 30.0;
        let append = advise(
            &p,
            &WorkloadMix {
                queries_per_update: k,
                updates: UpdateMix::append_mostly(),
            },
        );
        assert_eq!(append.recommendation, Recommendation::Saturation);
        let churn = advise(
            &p,
            &WorkloadMix {
                queries_per_update: k,
                updates: UpdateMix::schema_churn(),
            },
        );
        assert_eq!(churn.recommendation, Recommendation::Reformulation);
    }

    #[test]
    fn recommendation_flips_exactly_at_the_threshold_boundary() {
        // All values are powers of two so the boundary arithmetic is exact
        // in f64: update cost 8 s, per-run gain 0.5 − 0.25 = 0.25 s ⇒ the
        // documented boundary is queries_per_update = 8 / 0.25 = 32.
        let p = profile_with(
            MaintenanceCosts {
                instance_insert: 8.0,
                instance_delete: 8.0,
                schema_insert: 8.0,
                schema_delete: 8.0,
            },
            0.25,
            0.5,
        );
        let mix = UpdateMix {
            instance_insert: 1.0,
            instance_delete: 0.0,
            schema_insert: 0.0,
            schema_delete: 0.0,
        };
        let advice_at = |k: f64| {
            advise(
                &p,
                &WorkloadMix {
                    queries_per_update: k,
                    updates: mix,
                },
            )
        };
        assert_eq!(
            advice_at(31.0).recommendation,
            Recommendation::Reformulation,
            "one query short of the boundary, maintenance not yet amortised"
        );
        assert_eq!(
            advice_at(32.0).recommendation,
            Recommendation::Saturation,
            "at the boundary the epoch costs tie and ties go to saturation"
        );
        assert_eq!(advice_at(33.0).recommendation, Recommendation::Saturation);
        // The per-query threshold pins the same boundary.
        assert_eq!(
            advice_at(32.0).per_query[0].mixed_update_threshold,
            Threshold::Amortizes(32)
        );
    }

    #[test]
    fn observed_costs_flow_through_the_same_advice() {
        // Same binary-exact boundary as above: 8 / (0.5 − 0.25) = 32.
        let costs = ObservedCosts {
            saturation: 1.0,
            saturation_runs: 1,
            maintenance: MaintenanceCosts {
                instance_insert: 8.0,
                instance_delete: 8.0,
                schema_insert: 8.0,
                schema_delete: 8.0,
            },
            updates_observed: 4,
            eval_saturated: 0.25,
            eval_saturated_runs: 10,
            eval_reformulated: 0.5,
            eval_reformulated_runs: 10,
            ..ObservedCosts::default()
        };
        let mix = UpdateMix {
            instance_insert: 1.0,
            instance_delete: 0.0,
            schema_insert: 0.0,
            schema_delete: 0.0,
        };
        let at = |k: f64| {
            advise_observed(
                &costs,
                &WorkloadMix {
                    queries_per_update: k,
                    updates: mix,
                },
            )
            .expect("both paths observed")
        };
        assert_eq!(at(31.0).recommendation, Recommendation::Reformulation);
        assert_eq!(at(32.0).recommendation, Recommendation::Saturation);

        // A snapshot that never exercised reformulation gives no advice.
        let one_sided = ObservedCosts {
            eval_reformulated_runs: 0,
            ..costs
        };
        assert!(advise_observed(
            &one_sided,
            &WorkloadMix {
                queries_per_update: 50.0,
                updates: mix
            }
        )
        .is_none());
    }

    #[test]
    fn three_way_advice_flips_with_the_workload() {
        // Interval eval sits between saturated and union eval; its only
        // maintenance is the re-encode on schema updates.
        let costs = ObservedCosts {
            saturation: 10.0,
            saturation_runs: 1,
            maintenance: MaintenanceCosts {
                instance_insert: 0.5,
                instance_delete: 0.5,
                schema_insert: 0.5,
                schema_delete: 0.5,
            },
            updates_observed: 4,
            eval_saturated: 0.001,
            eval_saturated_runs: 10,
            eval_reformulated: 0.010,
            eval_reformulated_runs: 10,
            eval_interval: 0.002,
            eval_interval_runs: 10,
            interval_reencode: 0.1,
            interval_reencodes: 1,
        };
        let at = |k: f64, updates: UpdateMix| {
            advise_three_way(
                &costs,
                &WorkloadMix {
                    queries_per_update: k,
                    updates,
                },
            )
            .expect("all paths observed")
        };
        // Instance-churn workload: saturation pays 0.5 s per update,
        // interval pays nothing — interval wins over both.
        let churn = at(10.0, UpdateMix::append_mostly());
        assert_eq!(churn.recommendation, Recommendation::Interval);
        assert!(churn.interval_epoch_cost < churn.saturation_epoch_cost);
        assert!(churn.interval_epoch_cost < churn.reformulation_epoch_cost);
        // Read-only workload: pure evaluation rates, saturation fastest.
        let ro = at(f64::INFINITY, UpdateMix::append_mostly());
        assert_eq!(ro.recommendation, Recommendation::Saturation);
        // Heavy query traffic between updates amortises the maintenance.
        assert_eq!(
            at(10_000.0, UpdateMix::append_mostly()).recommendation,
            Recommendation::Saturation
        );
        // Missing the interval observations → no three-way advice.
        assert!(advise_three_way(
            &ObservedCosts {
                eval_interval_runs: 0,
                ..costs
            },
            &WorkloadMix {
                queries_per_update: 10.0,
                updates: UpdateMix::append_mostly(),
            }
        )
        .is_none());
    }

    #[test]
    fn zero_update_mix_is_pure_query_cost() {
        let p = profile_with(
            MaintenanceCosts {
                instance_insert: 0.0,
                instance_delete: 0.0,
                schema_insert: 0.0,
                schema_delete: 0.0,
            },
            0.002,
            0.001,
        );
        let advice = advise(
            &p,
            &WorkloadMix {
                queries_per_update: 5.0,
                updates: UpdateMix {
                    instance_insert: 0.0,
                    instance_delete: 0.0,
                    schema_insert: 0.0,
                    schema_delete: 0.0,
                },
            },
        );
        assert_eq!(advice.recommendation, Recommendation::Reformulation);
        assert!((advice.reformulation_epoch_cost - 0.005).abs() < 1e-9);
    }
}
