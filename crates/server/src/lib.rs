//! Embedded HTTP/1.1 query/update server over the snapshot-isolated store.
//!
//! The server is dependency-free (`std::net` only) and built around the
//! concurrency contract PR 5 introduced in `webreason-core`:
//!
//! * **Readers never block behind maintenance.** Each worker thread holds a
//!   [`StoreReader`]; `POST /query` clones the current published
//!   [`StoreSnapshot`](webreason_core::StoreSnapshot) `Arc` and evaluates
//!   against that immutable view, concurrently with updates.
//! * **One writer, journaled, group-committed.** A dedicated writer
//!   thread owns the [`DurableStore`]; `POST /update` bodies are decoded
//!   on the worker, then shipped over a *bounded* channel. Each script is
//!   **atomic** — one `UpdateScript` journal record, applied
//!   all-or-nothing — and the writer drains every queued job after each
//!   `recv`, journals the group, fsyncs **once**, publishes **one**
//!   epoch, and fans replies back per job. When the queue is full the
//!   client gets `429 Too Many Requests` with a `Retry-After` hint —
//!   backpressure instead of unbounded buffering.
//! * **Graceful shutdown.** [`Server::shutdown`] stops accepting, lets
//!   in-flight requests complete, answers stragglers with `503`, drains
//!   the update queue, and hands the `DurableStore` back to the caller.
//!
//! Endpoints:
//!
//! | method+path    | body            | reply                              |
//! |----------------|-----------------|------------------------------------|
//! | `POST /query`  | SPARQL text     | JSON bindings + stats + epoch      |
//! | `POST /update` | update script   | JSON apply summary + epoch         |
//! | `GET /metrics` | —               | Prometheus text (obs registry)     |
//! | `GET /health`  | —               | `200 ok` (liveness; never sheds)   |
//! | `GET /ready`   | —               | `200 ready`, or `503` + reason     |
//!
//! # Graceful degradation (PR 8)
//!
//! * **Deadlines + cooperative cancellation.** Every request carries a
//!   [`obs::CancelToken`] stamped from `X-Webreason-Deadline-Ms` (clamped
//!   to [`ServerConfig::max_deadline_ms`]) or
//!   [`ServerConfig::default_deadline_ms`]. The token is threaded through
//!   `StoreReader::answer_sparql_cancel` into the parallel union
//!   evaluator, which polls it at branch/chunk boundaries; an expired
//!   deadline returns `504` mid-evaluation (partial per-worker state
//!   discarded) or `503` + `Retry-After` when the request expired before
//!   it was ever dispatched. The reactor cancels the token on client
//!   disconnect, so abandoned queries stop consuming CPU workers.
//! * **Adaptive load shedding.** The writer and the reactor's dispatch
//!   queue measure their queue delay (log2 histograms
//!   `server.update.queue_wait_us` / `server.reactor.dispatch_wait_us`
//!   plus EWMAs); admission control sheds updates whose estimated wait
//!   exceeds their deadline budget with `503` + a `Retry-After` computed
//!   from the observed drain rate. `/health` and `/metrics` bypass
//!   shedding.
//! * **Degraded read-only mode.** A journal append/fsync I/O error fails
//!   the in-flight group (nothing acknowledged, nothing published) and
//!   flips the server to degraded: updates get `503`
//!   `{"degraded":"journal_enospc"}` while reads keep serving snapshots.
//!   A supervisor retries a probe append with jittered exponential
//!   backoff and exits degraded automatically once the disk heals.
//!   Checkpoint failures are counted but never degrade (the journal alone
//!   is durable).

pub mod conn;
pub mod http;
pub mod proto;
mod reactor;
mod wheel;

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use http::{
    chunk, mark_close, parse_request, write_chunked_head, write_response, Limits, ParseOutcome,
    Request, CHUNK_END,
};
use obs::CancelToken;
use proto::{
    decode_update_body, ErrorResponse, QueryResponse, SubscribeHeader, UpdateOp, UpdateResponse,
};
use webreason_core::{AnswerError, DurabilityError, DurableError, DurableStore, StoreReader};
use webreason_incremental::{
    DeltaBatch, HubConfig, NextWake, SubscribeError, SubscribeOk, SubscriptionHub,
};

/// Connection-handling engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Readiness-driven event loop (epoll, `poll(2)` fallback): one
    /// reactor thread owns every socket, `threads` CPU workers run only
    /// request evaluation. Thousands of keep-alive connections cost
    /// buffers, not threads.
    #[default]
    Reactor,
    /// The PR 5 thread-per-connection pool: each connection pins a
    /// blocking worker thread. Kept as the measured baseline for the
    /// loadgen comparison (`--backend threaded`).
    Threaded,
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// CPU worker threads. Under [`Backend::Threaded`] each also owns the
    /// socket it serves; under [`Backend::Reactor`] they only evaluate
    /// requests while the reactor owns all I/O.
    pub threads: usize,
    /// Bounded writer-queue depth; a full queue turns into 429s.
    pub update_queue: usize,
    /// Value of the `Retry-After` header on 429 responses, seconds.
    pub retry_after_secs: u64,
    /// HTTP parser limits (head/body/header-count caps).
    pub limits: Limits,
    /// Checkpoint the journal every N applied update batches (0 = never).
    pub checkpoint_every: usize,
    /// Group commit: after each `recv` the writer drains every queued
    /// job, journals the group, fsyncs once and publishes one epoch.
    /// `false` falls back to one fsync + one publish per job (the
    /// baseline the loadgen harness measures against).
    pub group_commit: bool,
    /// Test hook: artificial delay before each drained group is applied,
    /// to make queue backpressure (and grouping) deterministic in tests.
    /// `None` in production.
    pub writer_delay: Option<Duration>,
    /// Connection-handling engine (reactor by default).
    pub backend: Backend,
    /// Reactor only: accepted-connection cap; connections beyond it are
    /// refused with 503 instead of degrading everyone.
    pub max_conns: usize,
    /// Reactor only: per-phase idle deadline. A connection that stalls
    /// while sending a request, draining a response, or sitting idle
    /// between keep-alive requests is reaped after this long.
    pub idle_timeout: Duration,
    /// Test hook: skip epoll and use the `poll(2)` fallback (also
    /// reachable via `WEBREASON_FORCE_POLL=1`).
    pub force_poll: bool,
    /// Default per-request deadline in milliseconds, applied when the
    /// client sends no `X-Webreason-Deadline-Ms` header. `None` disables
    /// deadlines for header-less requests (the library default, so
    /// embedded uses opt in; the CLI defaults to 30 000 ms).
    pub default_deadline_ms: Option<u64>,
    /// Upper clamp on client-requested deadlines, milliseconds. A header
    /// asking for more gets exactly this much.
    pub max_deadline_ms: u64,
    /// Live `POST /subscribe` registrations allowed at once; further
    /// registrations get `503 subscription_limit`. `0` disables the
    /// subscription subsystem entirely (no delta tracking on the writer).
    pub max_subscriptions: usize,
    /// Per-streaming-subscriber delta-batch queue bound. A subscriber
    /// whose queue overflows (it consumes slower than the writer
    /// publishes) is dropped with a `lagged` terminal event — the writer
    /// never blocks on a slow consumer.
    pub subscribe_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            update_queue: 64,
            retry_after_secs: 1,
            limits: Limits::default(),
            checkpoint_every: 256,
            group_commit: true,
            writer_delay: None,
            backend: Backend::Reactor,
            max_conns: 4096,
            idle_timeout: Duration::from_secs(10),
            force_poll: false,
            default_deadline_ms: None,
            max_deadline_ms: 60_000,
            max_subscriptions: 64,
            subscribe_queue: 256,
        }
    }
}

/// Why the writer rejected a job, carried back over the reply channel.
enum WriteError {
    /// The server is in read-only degraded mode (value = reason); the
    /// journal was not touched. Maps to `503` + `Retry-After`.
    Degraded(String),
    /// The apply (journal append / group fsync) failed; the update is
    /// not acknowledged and nothing was published. Maps to `500`.
    Apply(String),
}

/// A batch of decoded ops plus the channel the apply outcome returns on.
struct WriteJob {
    ops: Vec<UpdateOp>,
    reply: SyncSender<Result<UpdateResponse, WriteError>>,
    /// Microsecond enqueue timestamp (obs clock) — the writer records the
    /// queue wait, which feeds the shedding EWMA.
    enqueued_us: u64,
    /// Degraded-mode supervisor probe: bypasses the degraded fail-fast
    /// (it exists to test the journal) and the queue-depth gauge.
    probe: bool,
}

/// State shared by the accept/reactor thread and every worker.
struct Shared {
    reader: StoreReader,
    /// Revocable handle to the writer channel: shutdown takes it so the
    /// writer sees disconnection once the last in-flight clone drops.
    writer_tx: Mutex<Option<SyncSender<WriteJob>>>,
    limits: Limits,
    retry_after_secs: u64,
    shutting_down: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_cv: Condvar,
    queue_depth: AtomicU64,
    update_queue: usize,
    /// Currently-open client connections (both backends), for the
    /// `/metrics` gauge.
    open_conns: AtomicU64,
    max_conns: usize,
    /// Deadline knobs (see [`ServerConfig`]).
    default_deadline_ms: Option<u64>,
    max_deadline_ms: u64,
    /// Read-only degraded mode: fast flag checked on every update
    /// admission; the reason lives behind the mutex the supervisor's
    /// condvar pairs with.
    degraded: AtomicBool,
    degraded_reason: Mutex<Option<String>>,
    degraded_cv: Condvar,
    /// EWMAs (µs, α=1/8) feeding admission control: writer queue wait,
    /// writer per-job service time, reactor dispatch-queue wait.
    writer_wait_ewma_us: AtomicU64,
    writer_service_ewma_us: AtomicU64,
    dispatch_wait_ewma_us: AtomicU64,
    /// Incremental-view hub: registered views and their subscribers. The
    /// writer publishes each group's consolidated delta into it.
    hub: SubscriptionHub,
    /// `--max-subscriptions` (0 = subscriptions disabled, no delta
    /// tracking on the writer).
    max_subscriptions: usize,
}

impl Shared {
    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The current degraded reason (`"journal_io"` fallback covers the
    /// moment between the flag flip and the reason store).
    fn degraded_reason(&self) -> String {
        lock(&self.degraded_reason)
            .clone()
            .unwrap_or_else(|| "journal_io".to_owned())
    }

    /// Flips into degraded mode (idempotent) and wakes the supervisor.
    fn enter_degraded(&self, reason: String) {
        let mut guard = lock(&self.degraded_reason);
        if !self.degraded.swap(true, Ordering::SeqCst) {
            obs::global().add("server.degraded.entered", 1);
        }
        *guard = Some(reason);
        drop(guard);
        self.degraded_cv.notify_all();
    }

    /// Leaves degraded mode (idempotent; called by the writer when a
    /// probe append + fsync succeeds).
    fn exit_degraded(&self) {
        let mut guard = lock(&self.degraded_reason);
        if self.degraded.swap(false, Ordering::SeqCst) {
            obs::global().add("server.degraded.exited", 1);
        }
        *guard = None;
    }

    /// Estimated writer-drain time for a newly admitted update, in
    /// milliseconds: (queued + 1) × observed per-job service EWMA.
    fn drain_estimate_ms(&self) -> u64 {
        let depth = self.queue_depth.load(Ordering::SeqCst) + 1;
        let service = self.writer_service_ewma_us.load(Ordering::Relaxed);
        depth.saturating_mul(service) / 1000
    }

    /// `Retry-After` pair (header seconds, body milliseconds) computed
    /// from the observed drain rate, floored at the configured hint.
    fn computed_retry_after(&self) -> (u64, u64) {
        let ms = self
            .drain_estimate_ms()
            .max(self.retry_after_secs.saturating_mul(1000).max(1));
        (ms.div_ceil(1000).max(1), ms)
    }
}

/// α=1/8 exponentially-weighted moving average over an atomic cell; a
/// zero cell seeds directly from the first sample. Racy updates only
/// blur the estimate — it feeds shedding heuristics, not correctness.
fn ewma_update(cell: &AtomicU64, sample_us: u64) {
    let prev = cell.load(Ordering::Relaxed);
    let next = if prev == 0 {
        sample_us
    } else {
        prev - prev / 8 + sample_us / 8
    };
    cell.store(next, Ordering::Relaxed);
}

/// Classifies a writer-side failure: `Some(reason)` when the store hit a
/// journal/fsync I/O error (ENOSPC, EIO, …) that should flip the server
/// into degraded read-only mode; `None` for semantic apply errors, which
/// stay plain 500s.
fn degraded_reason_for(e: &DurableError) -> Option<&'static str> {
    match e {
        DurableError::Durability(DurabilityError::Io(io)) => Some(match io.raw_os_error() {
            Some(28) => "journal_enospc",
            Some(5) => "journal_eio",
            _ => "journal_io",
        }),
        _ => None,
    }
}

/// Builds the request's cancellation token: `X-Webreason-Deadline-Ms`
/// (clamped to the server max) wins, else the configured default, else a
/// token that never cancels.
fn deadline_token(req: &Request, shared: &Shared) -> CancelToken {
    let requested = req
        .header("x-webreason-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok());
    let budget_ms = match requested {
        Some(ms) => Some(ms.min(shared.max_deadline_ms)),
        None => shared.default_deadline_ms,
    };
    match budget_ms {
        Some(0) | None => CancelToken::none(),
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
    }
}

/// Per-backend thread handles.
enum Engine {
    Threaded {
        accept_handle: Option<JoinHandle<()>>,
        worker_handles: Vec<JoinHandle<()>>,
    },
    Reactor {
        reactor_handle: Option<JoinHandle<()>>,
        worker_handles: Vec<JoinHandle<()>>,
        wakeup: Arc<reactor::WakeupWriter>,
    },
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the threads without draining (the journal keeps the data safe;
/// prefer `shutdown` to get the store back).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    engine: Engine,
    writer_handle: Option<JoinHandle<DurableStore>>,
    writer_tx: Option<SyncSender<WriteJob>>,
    supervisor_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the writer + the configured connection engine, and
    /// returns. The store moves onto the writer thread; get it back via
    /// [`Server::shutdown`].
    pub fn start(store: DurableStore, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let reader = store.reader();

        let (writer_tx, writer_rx) = mpsc::sync_channel::<WriteJob>(config.update_queue.max(1));
        let shared = Arc::new(Shared {
            reader,
            writer_tx: Mutex::new(Some(writer_tx.clone())),
            limits: config.limits,
            retry_after_secs: config.retry_after_secs,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conns_cv: Condvar::new(),
            queue_depth: AtomicU64::new(0),
            update_queue: config.update_queue.max(1),
            open_conns: AtomicU64::new(0),
            max_conns: config.max_conns.max(1),
            default_deadline_ms: config.default_deadline_ms,
            max_deadline_ms: config.max_deadline_ms.max(1),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(None),
            degraded_cv: Condvar::new(),
            writer_wait_ewma_us: AtomicU64::new(0),
            writer_service_ewma_us: AtomicU64::new(0),
            dispatch_wait_ewma_us: AtomicU64::new(0),
            hub: SubscriptionHub::new(HubConfig {
                max_subscriptions: config.max_subscriptions,
                queue_capacity: config.subscribe_queue.max(1),
                ..HubConfig::default()
            }),
            max_subscriptions: config.max_subscriptions,
        });

        let writer_handle = {
            let shared = Arc::clone(&shared);
            let checkpoint_every = config.checkpoint_every;
            let delay = config.writer_delay;
            let group_commit = config.group_commit;
            std::thread::Builder::new()
                .name("webreason-writer".to_owned())
                .spawn(move || {
                    writer_loop(
                        store,
                        writer_rx,
                        shared,
                        checkpoint_every,
                        delay,
                        group_commit,
                    )
                })?
        };

        let engine = match config.backend {
            Backend::Threaded => {
                let mut worker_handles = Vec::with_capacity(config.threads.max(1));
                for i in 0..config.threads.max(1) {
                    let shared = Arc::clone(&shared);
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("webreason-worker-{i}"))
                            .spawn(move || worker_loop(shared))?,
                    );
                }
                let accept_handle = {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("webreason-accept".to_owned())
                        .spawn(move || accept_loop(listener, shared))?
                };
                Engine::Threaded {
                    accept_handle: Some(accept_handle),
                    worker_handles,
                }
            }
            Backend::Reactor => {
                listener.set_nonblocking(true)?;
                let (job_tx, job_rx) = mpsc::channel::<reactor::Job>();
                let job_rx = Arc::new(Mutex::new(job_rx));
                let completions = Arc::new(Mutex::new(Vec::new()));
                let (wakeup_reader, wakeup) = reactor::wakeup_pair()?;
                let mut worker_handles = Vec::with_capacity(config.threads.max(1));
                for i in 0..config.threads.max(1) {
                    let shared = Arc::clone(&shared);
                    let job_rx = Arc::clone(&job_rx);
                    let completions = Arc::clone(&completions);
                    let wakeup = Arc::clone(&wakeup);
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("webreason-cpu-{i}"))
                            .spawn(move || cpu_worker_loop(shared, job_rx, completions, wakeup))?,
                    );
                }
                let params = reactor::ReactorParams {
                    listener,
                    shared: Arc::clone(&shared),
                    limits: config.limits,
                    max_conns: config.max_conns.max(1),
                    idle_timeout_ms: config.idle_timeout.as_millis().max(1) as u64,
                    force_poll: config.force_poll,
                    job_tx,
                    completions,
                    wakeup_reader,
                };
                let reactor_handle = std::thread::Builder::new()
                    .name("webreason-reactor".to_owned())
                    .spawn(move || reactor::reactor_loop(params))?;
                Engine::Reactor {
                    reactor_handle: Some(reactor_handle),
                    worker_handles,
                    wakeup,
                }
            }
        };

        let supervisor_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("webreason-degraded-supervisor".to_owned())
                .spawn(move || degraded_supervisor(shared))?
        };

        Ok(Server {
            local_addr,
            shared,
            engine,
            writer_handle: Some(writer_handle),
            writer_tx: Some(writer_tx),
            supervisor_handle: Some(supervisor_handle),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A fresh concurrent read handle onto the served store.
    pub fn reader(&self) -> StoreReader {
        self.shared.reader.clone()
    }

    /// Currently live `POST /subscribe` registrations (test/ops hook; the
    /// same number backs the `webreason_server_subscriptions_live` gauge).
    pub fn subscriptions_live(&self) -> usize {
        self.shared.hub.live_subscribers()
    }

    /// Graceful shutdown: stop accepting, complete in-flight requests
    /// (stragglers that arrive during the drain get `503`), drain the
    /// update queue, and return the [`DurableStore`].
    pub fn shutdown(mut self) -> DurableStore {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake every streaming subscriber with a `shutdown` terminal event
        // before joining the workers that serve them.
        self.shared.hub.shutdown();
        match &mut self.engine {
            Engine::Threaded {
                accept_handle,
                worker_handles,
            } => {
                // Wake the blocking accept() with a throwaway connection.
                let _ = TcpStream::connect(self.local_addr);
                if let Some(h) = accept_handle.take() {
                    let _ = h.join();
                }
                // Wake idle workers; they drain queued connections (503)
                // and exit.
                self.shared.conns_cv.notify_all();
                for h in worker_handles.drain(..) {
                    let _ = h.join();
                }
            }
            Engine::Reactor {
                reactor_handle,
                worker_handles,
                wakeup,
            } => {
                // Ring the pipe; the reactor sees the flag, answers the
                // backlog, drains in-flight requests, and returns — which
                // drops the job channel, so the CPU pool exits too.
                wakeup.notify();
                if let Some(h) = reactor_handle.take() {
                    let _ = h.join();
                }
                for h in worker_handles.drain(..) {
                    let _ = h.join();
                }
            }
        }
        // Close every sender (ours plus the revocable shared slot); the
        // writer applies what is queued, then exits. The supervisor sees
        // the shutdown flag (or the revoked channel) and exits too.
        lock(&self.shared.writer_tx).take();
        drop(self.writer_tx.take());
        self.shared.degraded_cv.notify_all();
        if let Some(h) = self.supervisor_handle.take() {
            let _ = h.join();
        }
        let writer = self.writer_handle.take().expect("writer joined once");
        writer.join().expect("writer thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort teardown when shutdown() was skipped: detach the
        // threads after flagging them down; the journal already holds
        // every applied update.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.hub.shutdown();
        match &self.engine {
            Engine::Threaded { .. } => {
                let _ = TcpStream::connect(self.local_addr);
                self.shared.conns_cv.notify_all();
            }
            Engine::Reactor { wakeup, .. } => wakeup.notify(),
        }
        lock(&self.shared.writer_tx).take();
        drop(self.writer_tx.take());
        self.shared.degraded_cv.notify_all();
    }
}

/// Degraded-mode supervisor: parked until the writer flips the degraded
/// flag, then probes the journal (an empty `apply_script_deferred` +
/// group fsync shipped through the ordinary writer queue) with jittered
/// exponential backoff — 50 ms doubling to a 500 ms cap, ±25% xorshift
/// jitter — until a probe lands, at which point the *writer* clears the
/// flag and the supervisor parks again. The 500 ms cap bounds the
/// worst-case exit latency after the disk heals to well under a second.
fn degraded_supervisor(shared: Arc<Shared>) {
    let reg = obs::global();
    let mut seed = reg.now_us() | 1;
    let mut xorshift = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    loop {
        // Park until degraded (or shutting down). The timeout is a
        // safety net against a missed notify.
        {
            let mut guard = lock(&shared.degraded_reason);
            loop {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if shared.degraded.load(Ordering::SeqCst) {
                    break;
                }
                guard = shared
                    .degraded_cv
                    .wait_timeout(guard, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
        let mut backoff_ms = 50u64;
        while shared.degraded.load(Ordering::SeqCst) && !shared.shutting_down.load(Ordering::SeqCst)
        {
            // ±25% jitter so repeated windows don't phase-lock probes.
            let jitter = (xorshift() % (backoff_ms / 2 + 1)) as i64 - (backoff_ms / 4) as i64;
            let sleep_ms = (backoff_ms as i64 + jitter).max(1) as u64;
            std::thread::sleep(Duration::from_millis(sleep_ms));
            if !shared.degraded.load(Ordering::SeqCst)
                || shared.shutting_down.load(Ordering::SeqCst)
            {
                break;
            }
            let Some(tx) = lock(&shared.writer_tx).clone() else {
                return; // shutdown revoked the channel
            };
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            reg.add("server.degraded.probes", 1);
            // Blocking send: the probe must reach the writer even when
            // the queue is briefly full of fail-fast rejections.
            if tx
                .send(WriteJob {
                    ops: Vec::new(),
                    reply: reply_tx,
                    enqueued_us: reg.now_us(),
                    probe: true,
                })
                .is_err()
            {
                return;
            }
            match reply_rx.recv() {
                Ok(Ok(_)) => break, // writer already cleared the flag
                Ok(Err(_)) => {}    // disk still sick; back off further
                Err(_) => return,   // writer exited
            }
            backoff_ms = (backoff_ms * 2).min(500);
        }
    }
}

/// CPU worker for the reactor backend: evaluates one request at a time
/// and ships the serialized response back through the completion list +
/// wakeup pipe. Blocking here (a long query, waiting on the writer's
/// group commit) occupies one worker — never the reactor.
fn cpu_worker_loop(
    shared: Arc<Shared>,
    job_rx: Arc<Mutex<Receiver<reactor::Job>>>,
    completions: Arc<Mutex<Vec<reactor::Completion>>>,
    wakeup: Arc<reactor::WakeupWriter>,
) {
    let reg = obs::global();
    loop {
        // Hold the lock only while dequeuing; evaluation runs unlocked.
        let job = match lock(&job_rx).recv() {
            Ok(job) => job,
            Err(_) => return, // reactor gone: no more work will arrive
        };
        // Dispatch-queue age: how long the parsed request waited for a
        // CPU worker. Feeds the shedding EWMA and the latency histogram.
        let wait_us = reg.now_us().saturating_sub(job.enqueued_us);
        reg.record("server.reactor.dispatch_wait_us", wait_us);
        ewma_update(&shared.dispatch_wait_ewma_us, wait_us);
        let resp = if job.cancel.is_cancelled() {
            // The deadline expired (or the client vanished) while the
            // request sat in the dispatch queue — it was never evaluated,
            // so this is overload shedding (503 + Retry-After), not a
            // timeout of work in progress (504).
            reg.add("server.reactor.shed", 1);
            let (secs, ms) = shared.computed_retry_after();
            let body = ErrorResponse::to_json_retry(
                "overloaded",
                "deadline expired before dispatch; retry after the queues drain",
                ms,
            );
            write_response(
                503,
                "Service Unavailable",
                "application/json",
                &[("Retry-After", secs.to_string())],
                &body,
            )
        } else {
            dispatch(&job.req, &shared, &job.cancel)
        };
        lock(&completions).push(reactor::Completion {
            token: job.token,
            generation: job.generation,
            resp,
        });
        wakeup.notify();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let reg = obs::global();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The shutdown self-connect (or a straggler racing it)
                    // — tell it and anything else already in the backlog
                    // that the server is going away.
                    respond_unavailable(stream);
                    let _ = listener.set_nonblocking(true);
                    while let Ok((s, _)) = listener.accept() {
                        respond_unavailable(s);
                    }
                    return;
                }
                reg.add("server.http.connections", 1);
                shared.open_conns.fetch_add(1, Ordering::SeqCst);
                let mut q = lock(&shared.conns);
                q.push_back(stream);
                drop(q);
                shared.conns_cv.notify_one();
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept error; keep serving.
            }
        }
    }
}

/// Tells a straggler connection the server is going away. The response
/// closes the connection, and says so explicitly.
fn respond_unavailable(mut stream: TcpStream) {
    let body = ErrorResponse::to_json("unavailable", "server is shutting down");
    let mut resp = write_response(503, "Service Unavailable", "application/json", &[], &body);
    mark_close(&mut resp);
    let _ = stream.write_all(&resp);
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let stream = {
            let mut q = lock(&shared.conns);
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.conns_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(s) => {
                handle_connection(s, &shared);
                shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            }
            None => return,
        }
    }
}

/// Serves one connection until close / error / shutdown. Keep-alive:
/// multiple requests may arrive back-to-back or pipelined.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Short read timeout so an idle keep-alive connection notices
    // shutdown instead of parking the worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let reg = obs::global();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // Parse everything already buffered before reading more.
        match parse_request(&buf, &shared.limits) {
            ParseOutcome::Complete(req, consumed) => {
                buf.drain(..consumed);
                // A request fully received before the shutdown flag is
                // in-flight under the drain contract: serve it. Only new
                // bytes are refused (the read path below 503s partial
                // requests). During shutdown the connection closes once
                // the buffered, already-complete requests are served.
                let shutting = shared.shutting_down.load(Ordering::SeqCst);
                let close = req.wants_close() || (shutting && buf.is_empty());
                // Threaded backend: no dispatch queue, so the token is
                // stamped right here and only the evaluation itself can
                // consume the budget.
                let cancel = deadline_token(&req, shared);
                if req.method == "POST" && req.path() == "/subscribe" {
                    // The subscribe stream takes over the connection: the
                    // response is open-ended chunked frames, so no
                    // keep-alive afterwards (pipelined bytes are dropped).
                    handle_subscribe_stream(&mut stream, &req, shared, &cancel);
                    return;
                }
                let mut resp = dispatch(&req, shared, &cancel);
                if close {
                    mark_close(&mut resp);
                }
                if stream.write_all(&resp).is_err() {
                    return;
                }
                if close {
                    return;
                }
                continue;
            }
            ParseOutcome::Error(e) => {
                reg.add("server.http.bad_requests", 1);
                let body = ErrorResponse::to_json("bad_request", &e.to_string());
                let mut resp =
                    write_response(e.status(), e.reason(), "application/json", &[], &body);
                mark_close(&mut resp);
                let _ = stream.write_all(&resp);
                return; // framing is unrecoverable; close.
            }
            ParseOutcome::Incomplete => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    if !buf.is_empty() {
                        respond_unavailable(stream);
                    }
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed request to its endpoint and serialises the response.
/// `/health` and `/metrics` never shed and never consult the deadline —
/// they are the probes operators rely on *during* overload.
fn dispatch(req: &Request, shared: &Shared, cancel: &CancelToken) -> Vec<u8> {
    let reg = obs::global();
    match (req.method.as_str(), req.path()) {
        ("POST", "/query") => {
            let start = reg.now_us();
            let resp = handle_query(req, shared, cancel);
            reg.record(
                "server.query.latency_us",
                reg.now_us().saturating_sub(start),
            );
            resp
        }
        ("POST", "/update") => {
            let start = reg.now_us();
            let resp = handle_update(req, shared, cancel);
            reg.record(
                "server.update.latency_us",
                reg.now_us().saturating_sub(start),
            );
            resp
        }
        ("POST", "/subscribe") => {
            // Bounded-window registration (the reactor path — a worker
            // must not own the socket forever): the chunked response ends
            // after the initial snapshot, and the client follows the
            // `next` link to poll `GET /subscribe/{id}?from=E` for deltas.
            // The threaded backend intercepts this route *before* dispatch
            // and live-streams instead.
            handle_subscribe_window(req, shared, cancel)
        }
        ("GET", p) if p.strip_prefix("/subscribe/").is_some() => {
            handle_subscribe_catchup(req, shared)
        }
        ("DELETE", p) if p.strip_prefix("/subscribe/").is_some() => handle_unsubscribe(req, shared),
        ("GET", "/metrics") => handle_metrics(shared),
        ("GET", "/health") => write_response(200, "OK", "text/plain", &[], b"ok"),
        ("GET", "/ready") => handle_ready(shared),
        (_, "/query")
        | (_, "/update")
        | (_, "/metrics")
        | (_, "/health")
        | (_, "/ready")
        | (_, "/subscribe") => {
            let body = ErrorResponse::to_json("method_not_allowed", "wrong method for path");
            write_response(405, "Method Not Allowed", "application/json", &[], &body)
        }
        (_, p) if p.strip_prefix("/subscribe/").is_some() => {
            let body = ErrorResponse::to_json("method_not_allowed", "wrong method for path");
            write_response(405, "Method Not Allowed", "application/json", &[], &body)
        }
        _ => {
            let body = ErrorResponse::to_json("not_found", "unknown path");
            write_response(404, "Not Found", "application/json", &[], &body)
        }
    }
}

/// Readiness: distinct from `/health` (pure liveness) so orchestrators
/// can pull a degraded or draining instance out of the write path while
/// the process itself stays up (reads keep flowing either way).
fn handle_ready(shared: &Shared) -> Vec<u8> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        let body = ErrorResponse::to_json("shutting_down", "server is draining");
        return write_response(503, "Service Unavailable", "application/json", &[], &body);
    }
    if shared.is_degraded() {
        let reason = shared.degraded_reason();
        let (secs, ms) = shared.computed_retry_after();
        let body = ErrorResponse::to_json_full(
            "degraded",
            "journal faulted; serving reads only",
            Some(ms),
            Some(reason),
        );
        return write_response(
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", secs.to_string())],
            &body,
        );
    }
    write_response(200, "OK", "text/plain", &[], b"ready")
}

fn handle_query(req: &Request, shared: &Shared, cancel: &CancelToken) -> Vec<u8> {
    let reg = obs::global();
    reg.add("server.query.requests", 1);
    let sparql = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s,
        _ => {
            reg.add("server.query.errors", 1);
            let body = ErrorResponse::to_json("bad_request", "body must be a SPARQL query");
            return write_response(400, "Bad Request", "application/json", &[], &body);
        }
    };
    // Optional per-query strategy override (`X-Webreason-Strategy:
    // saturation | reformulation | interval | backward-chaining`). The
    // snapshot decides whether it can serve the named strategy; a refusal
    // surfaces as `AnswerError::StrategyUnsupported` below.
    let strategy = req.header("x-webreason-strategy");
    match shared
        .reader
        .answer_sparql_strategy_cancel(sparql, strategy, cancel)
    {
        Ok((sols, stats, epoch)) => {
            let rows = {
                let dict = shared.reader.dictionary();
                sols.rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|id| {
                                dict.decode(*id)
                                    .map_or_else(|| id.to_string(), |t| t.to_string())
                            })
                            .collect()
                    })
                    .collect()
            };
            let payload = QueryResponse {
                vars: sols.var_names.clone(),
                rows,
                epoch,
                stats,
            };
            let body = serde_json::to_string(&payload)
                .map(String::into_bytes)
                .unwrap_or_else(|_| b"{\"error\":\"internal\"}".to_vec());
            write_response(200, "OK", "application/json", &[], &body)
        }
        Err(AnswerError::Cancelled) => {
            // Cooperative cancellation fired mid-evaluation: the deadline
            // expired (or the reactor cancelled on disconnect). Every
            // worker's partial state was discarded; the snapshot and its
            // caches are untouched.
            reg.add("server.query.deadline_exceeded", 1);
            let body = ErrorResponse::to_json(
                "deadline_exceeded",
                "query cancelled: deadline expired during evaluation",
            );
            write_response(504, "Gateway Timeout", "application/json", &[], &body)
        }
        Err(e @ AnswerError::StrategyUnsupported(_)) => {
            reg.add("server.query.bad_strategy", 1);
            let body = ErrorResponse::to_json("bad_strategy", &e.to_string());
            write_response(400, "Bad Request", "application/json", &[], &body)
        }
        Err(e) => {
            reg.add("server.query.errors", 1);
            let body = ErrorResponse::to_json("bad_query", &e.to_string());
            write_response(400, "Bad Request", "application/json", &[], &body)
        }
    }
}

fn handle_update(req: &Request, shared: &Shared, cancel: &CancelToken) -> Vec<u8> {
    let reg = obs::global();
    reg.add("server.update.requests", 1);
    let text = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            let body = ErrorResponse::to_json("bad_request", "update body must be UTF-8");
            return write_response(400, "Bad Request", "application/json", &[], &body);
        }
    };
    let ops = match decode_update_body(text) {
        Ok(ops) => ops,
        Err(e) => {
            reg.add("server.update.decode_errors", 1);
            let body = ErrorResponse::to_json("bad_update", &e.to_string());
            return write_response(400, "Bad Request", "application/json", &[], &body);
        }
    };
    if ops.is_empty() {
        let body = serde_json::to_string(&UpdateResponse {
            accepted: 0,
            added: 0,
            removed: 0,
            epoch: shared.reader.snapshot().epoch(),
        })
        .map(String::into_bytes)
        .unwrap_or_default();
        return write_response(200, "OK", "application/json", &[], &body);
    }

    // Degraded mode: the journal is sick, so updates are refused before
    // they touch the queue. Reads keep flowing from published snapshots.
    if shared.is_degraded() {
        reg.add("server.update.degraded_rejects", 1);
        let (secs, ms) = shared.computed_retry_after();
        let reason = shared.degraded_reason();
        let body = ErrorResponse::to_json_full(
            "degraded",
            "journal faulted; server is read-only until the disk heals",
            Some(ms),
            Some(reason),
        );
        return write_response(
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", secs.to_string())],
            &body,
        );
    }

    // Adaptive shedding: if the measured writer drain rate says this
    // request cannot be serviced inside its deadline budget, refuse it
    // now — a 503 in microseconds beats a 504 after the full wait.
    if let Some(remaining) = cancel.remaining() {
        let est_us = shared.drain_estimate_ms().saturating_mul(1000);
        if est_us > remaining.as_micros() as u64 {
            reg.add("server.update.shed", 1);
            let (secs, ms) = shared.computed_retry_after();
            let body = ErrorResponse::to_json_retry(
                "overloaded",
                "estimated queue delay exceeds the request deadline",
                ms,
            );
            return write_response(
                503,
                "Service Unavailable",
                "application/json",
                &[("Retry-After", secs.to_string())],
                &body,
            );
        }
    }

    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = WriteJob {
        ops,
        reply: reply_tx,
        enqueued_us: reg.now_us(),
        probe: false,
    };
    // Clone the sender out of the revocable slot so shutdown can
    // disconnect the writer; a `None` here means the writer is gone.
    let Some(tx) = lock(&shared.writer_tx).clone() else {
        let body = ErrorResponse::to_json("unavailable", "writer has shut down");
        return write_response(503, "Service Unavailable", "application/json", &[], &body);
    };
    // Count the slot before the send: the writer decrements after it pops
    // a job, so incrementing afterwards could race the gauge below zero.
    let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
    match tx.try_send(job) {
        Ok(()) => {
            reg.record("server.update.queue_depth", depth);
            reg.add("server.update.enqueued", 1);
        }
        Err(TrySendError::Full(_)) => {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            reg.add("server.update.rejected", 1);
            let body = ErrorResponse::to_json_retry(
                "overloaded",
                "update queue is full; retry after the writer drains",
                shared.retry_after_secs.saturating_mul(1000).max(1),
            );
            return write_response(
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", shared.retry_after_secs.to_string())],
                &body,
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            let body = ErrorResponse::to_json("unavailable", "writer has shut down");
            return write_response(503, "Service Unavailable", "application/json", &[], &body);
        }
    }
    match reply_rx.recv() {
        Ok(Ok(resp)) => {
            let body = serde_json::to_string(&resp)
                .map(String::into_bytes)
                .unwrap_or_default();
            write_response(200, "OK", "application/json", &[], &body)
        }
        Ok(Err(WriteError::Degraded(reason))) => {
            // The fault landed while this job was queued: fail-fast from
            // the writer, journal untouched, nothing acknowledged.
            reg.add("server.update.degraded_rejects", 1);
            let (secs, ms) = shared.computed_retry_after();
            let body = ErrorResponse::to_json_full(
                "degraded",
                "journal faulted; server is read-only until the disk heals",
                Some(ms),
                Some(reason),
            );
            write_response(
                503,
                "Service Unavailable",
                "application/json",
                &[("Retry-After", secs.to_string())],
                &body,
            )
        }
        Ok(Err(WriteError::Apply(msg))) => {
            let body = ErrorResponse::to_json("apply_failed", &msg);
            write_response(500, "Internal Server Error", "application/json", &[], &body)
        }
        Err(_) => {
            let body = ErrorResponse::to_json("unavailable", "writer exited mid-apply");
            write_response(503, "Service Unavailable", "application/json", &[], &body)
        }
    }
}

/// Registration step shared by both subscribe styles (live stream on the
/// threaded backend, bounded window + pull catch-up on the reactor).
/// Returns the serialized error response when registration is refused.
fn subscribe_register(
    req: &Request,
    shared: &Shared,
    cancel: &CancelToken,
    streaming: bool,
) -> Result<SubscribeOk, Vec<u8>> {
    let reg = obs::global();
    reg.add("server.subscribe.requests", 1);
    if shared.shutting_down.load(Ordering::SeqCst) {
        let body = ErrorResponse::to_json("unavailable", "server is shutting down");
        return Err(write_response(
            503,
            "Service Unavailable",
            "application/json",
            &[],
            &body,
        ));
    }
    let sparql = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s,
        _ => {
            let body = ErrorResponse::to_json("bad_request", "body must be a SPARQL query");
            return Err(write_response(
                400,
                "Bad Request",
                "application/json",
                &[],
                &body,
            ));
        }
    };
    shared
        .hub
        .subscribe(&shared.reader, sparql, streaming, cancel)
        .map_err(|e| match e {
            SubscribeError::AtCapacity(max) => {
                reg.add("server.subscribe.limit_rejects", 1);
                let (secs, ms) = shared.computed_retry_after();
                let body = ErrorResponse::to_json_retry(
                    "subscription_limit",
                    &format!("subscription limit ({max}) reached; retry once a subscriber leaves"),
                    ms,
                );
                write_response(
                    503,
                    "Service Unavailable",
                    "application/json",
                    &[("Retry-After", secs.to_string())],
                    &body,
                )
            }
            SubscribeError::Query(AnswerError::Cancelled) => {
                // Same contract as /query: the deadline expired during the
                // initial materialization, nothing was registered.
                reg.add("server.subscribe.deadline_exceeded", 1);
                let body = ErrorResponse::to_json(
                    "deadline_exceeded",
                    "subscription cancelled: deadline expired during initial evaluation",
                );
                write_response(504, "Gateway Timeout", "application/json", &[], &body)
            }
            SubscribeError::Query(e) => {
                let body = ErrorResponse::to_json("bad_query", &e.to_string());
                write_response(400, "Bad Request", "application/json", &[], &body)
            }
            SubscribeError::Unsupported(why) => {
                let body = ErrorResponse::to_json("unsupported_subscription", &why);
                write_response(400, "Bad Request", "application/json", &[], &body)
            }
            SubscribeError::ShuttingDown => {
                let body = ErrorResponse::to_json("unavailable", "server is shutting down");
                write_response(503, "Service Unavailable", "application/json", &[], &body)
            }
        })
}

/// Serialises the registration receipt that opens every subscribe stream.
fn subscribe_header_json(ok: &SubscribeOk) -> String {
    serde_json::to_string(&SubscribeHeader {
        id: ok.id,
        epoch: ok.epoch,
        vars: ok.vars.clone(),
        distinct: ok.distinct,
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_owned())
}

fn batch_json(batch: &DeltaBatch) -> String {
    serde_json::to_string(batch).unwrap_or_else(|_| "{\"error\":\"internal\"}".to_owned())
}

/// `POST /subscribe` on the reactor backend: a CPU worker cannot own the
/// socket indefinitely, so the chunked response is a *bounded window* —
/// registration header, initial snapshot batch, and a `next` link the
/// client polls (`GET /subscribe/{id}?from=E`) for subsequent deltas.
fn handle_subscribe_window(req: &Request, shared: &Shared, cancel: &CancelToken) -> Vec<u8> {
    let ok = match subscribe_register(req, shared, cancel, false) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    let more = format!(
        "{{\"more\":true,\"next\":\"/subscribe/{}?from={}\"}}",
        ok.id, ok.epoch
    );
    let mut resp = write_chunked_head(200, "OK", "application/json", &[]);
    resp.extend_from_slice(&chunk(subscribe_header_json(&ok).as_bytes()));
    resp.extend_from_slice(&chunk(batch_json(&ok.initial).as_bytes()));
    resp.extend_from_slice(&chunk(more.as_bytes()));
    resp.extend_from_slice(CHUNK_END);
    resp
}

/// `POST /subscribe` on the threaded backend: the worker owns the socket,
/// so the chunked response never ends — each published delta batch is
/// written as its own chunk until the client disconnects, the subscriber
/// lags out, or the server shuts down (the last two emit a terminal
/// frame, then the stream closes).
fn handle_subscribe_stream(
    stream: &mut TcpStream,
    req: &Request,
    shared: &Shared,
    cancel: &CancelToken,
) {
    let ok = match subscribe_register(req, shared, cancel, true) {
        Ok(ok) => ok,
        Err(mut resp) => {
            mark_close(&mut resp);
            let _ = stream.write_all(&resp);
            return;
        }
    };
    let id = ok.id;
    let mut head = write_chunked_head(
        200,
        "OK",
        "application/json",
        &[("Connection", "close".to_owned())],
    );
    head.extend_from_slice(&chunk(subscribe_header_json(&ok).as_bytes()));
    head.extend_from_slice(&chunk(batch_json(&ok.initial).as_bytes()));
    if stream.write_all(&head).is_err() {
        shared.hub.unsubscribe(id);
        return;
    }
    loop {
        match shared.hub.next_wake(id, Duration::from_millis(100)) {
            NextWake::Batches(batches) => {
                let mut out = Vec::new();
                for b in &batches {
                    out.extend_from_slice(&chunk(batch_json(b).as_bytes()));
                }
                // A dead client shows up here as a write error; dropping
                // the subscription keeps the view from accumulating for
                // nobody. The hub's bounded queue already guarantees the
                // writer never blocked on this socket.
                if stream.write_all(&out).is_err() {
                    shared.hub.unsubscribe(id);
                    return;
                }
            }
            NextWake::Idle => continue,
            NextWake::Terminal(t) => {
                let mut out = chunk(format!("{{\"terminal\":\"{}\"}}", t.as_str()).as_bytes());
                out.extend_from_slice(CHUNK_END);
                let _ = stream.write_all(&out);
                return;
            }
            NextWake::Gone => return,
        }
    }
}

/// `GET /subscribe/{id}?from=E`: pull-side catch-up. Replays every batch
/// published after epoch `E` (or one snapshot-reset batch when `E` has
/// fallen off the bounded epoch log), plus the terminal condition if the
/// stream has ended.
fn handle_subscribe_catchup(req: &Request, shared: &Shared) -> Vec<u8> {
    let Some(id) = parse_sub_id(req.path()) else {
        let body = ErrorResponse::to_json("bad_request", "subscription id must be an integer");
        return write_response(400, "Bad Request", "application/json", &[], &body);
    };
    let from = req
        .query_string()
        .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("from=")))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    match shared.hub.catch_up(id, from) {
        Some(cu) => {
            let mut body = String::from("{\"batches\":[");
            for (i, b) in cu.batches.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&batch_json(b));
            }
            body.push_str("],\"terminal\":");
            match cu.terminal {
                Some(t) => {
                    body.push('"');
                    body.push_str(t.as_str());
                    body.push('"');
                }
                None => body.push_str("null"),
            }
            body.push('}');
            write_response(200, "OK", "application/json", &[], body.as_bytes())
        }
        None => {
            let body = ErrorResponse::to_json("unknown_subscription", "no such subscription id");
            write_response(404, "Not Found", "application/json", &[], &body)
        }
    }
}

/// `DELETE /subscribe/{id}`: client-side cancellation.
fn handle_unsubscribe(req: &Request, shared: &Shared) -> Vec<u8> {
    let Some(id) = parse_sub_id(req.path()) else {
        let body = ErrorResponse::to_json("bad_request", "subscription id must be an integer");
        return write_response(400, "Bad Request", "application/json", &[], &body);
    };
    if shared.hub.unsubscribe(id) {
        write_response(200, "OK", "application/json", &[], b"{\"cancelled\":true}")
    } else {
        let body = ErrorResponse::to_json("unknown_subscription", "no such subscription id");
        write_response(404, "Not Found", "application/json", &[], &body)
    }
}

fn parse_sub_id(path: &str) -> Option<u64> {
    path.strip_prefix("/subscribe/")?.parse().ok()
}

fn handle_metrics(shared: &Shared) -> Vec<u8> {
    let reg = obs::global();
    reg.add("server.metrics.requests", 1);
    let mut text = reg.snapshot().to_prometheus();
    // Live gauge: current writer-queue occupancy (counters above are
    // cumulative; this one is the instantaneous depth).
    text.push_str(&format!(
        "# TYPE webreason_server_update_queue_current gauge\n\
         webreason_server_update_queue_current {}\n\
         # TYPE webreason_server_update_queue_capacity gauge\n\
         webreason_server_update_queue_capacity {}\n\
         # TYPE webreason_server_open_connections gauge\n\
         webreason_server_open_connections {}\n\
         # TYPE webreason_server_max_connections gauge\n\
         webreason_server_max_connections {}\n\
         # TYPE webreason_server_degraded gauge\n\
         webreason_server_degraded {}\n\
         # TYPE webreason_server_drain_estimate_ms gauge\n\
         webreason_server_drain_estimate_ms {}\n\
         # TYPE webreason_server_subscriptions_live gauge\n\
         webreason_server_subscriptions_live {}\n\
         # TYPE webreason_server_subscriptions_max gauge\n\
         webreason_server_subscriptions_max {}\n\
         # TYPE webreason_server_subscription_views gauge\n\
         webreason_server_subscription_views {}\n",
        shared.queue_depth.load(Ordering::SeqCst),
        shared.update_queue,
        shared.open_conns.load(Ordering::SeqCst),
        shared.max_conns,
        u64::from(shared.is_degraded()),
        shared.drain_estimate_ms(),
        shared.hub.live_subscribers(),
        shared.max_subscriptions,
        shared.hub.view_count(),
    ));
    write_response(200, "OK", "text/plain; version=0.0.4", &[], text.as_bytes())
}

/// The single-writer loop: owns the [`DurableStore`] and group-commits.
/// After each blocking `recv` it drains every queued job (`try_recv`),
/// journals each job's script as one atomic `UpdateScript` record, fsyncs
/// **once** for the whole drained group, publishes **one** epoch, and
/// fans replies back per job — so N concurrent writers cost one fsync,
/// not N, while each script stays individually atomic. Replies only go
/// out after the group sync settles: ack implies journaled + fsynced (per
/// policy) + published. Exits (returning the store) when every sender is
/// gone.
fn writer_loop(
    mut store: DurableStore,
    rx: Receiver<WriteJob>,
    shared: Arc<Shared>,
    checkpoint_every: usize,
    delay: Option<Duration>,
    group_commit: bool,
) -> DurableStore {
    let reg = obs::global();
    let mut since_checkpoint = 0usize;
    // Delta tracking feeds the subscription hub; with subscriptions
    // disabled the store skips the bookkeeping entirely.
    if shared.max_subscriptions > 0 {
        store.set_delta_tracking(true);
    }
    // The snapshot the last published epoch's subscribers have seen —
    // each group's delta steps views from here to the freshly published
    // snapshot. A group that fails leaves its (empty) delta buffered, so
    // the next successful group publishes one consistent step.
    let mut prev_snap = shared.reader.snapshot();
    while let Ok(first) = rx.recv() {
        // The delay hook models a slow apply *before* the drain, so tests
        // can pile jobs into the queue and observe them grouped.
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let mut jobs = vec![first];
        if group_commit {
            while let Ok(job) = rx.try_recv() {
                jobs.push(job);
            }
        }
        // Probes never passed through the admission gauge, so only the
        // client jobs release queue slots.
        let client_jobs = jobs.iter().filter(|j| !j.probe).count() as u64;
        shared.queue_depth.fetch_sub(client_jobs, Ordering::SeqCst);
        let now = reg.now_us();
        for job in &jobs {
            let wait = now.saturating_sub(job.enqueued_us);
            reg.record("server.update.queue_wait_us", wait);
            ewma_update(&shared.writer_wait_ewma_us, wait);
        }
        reg.add("server.update.groups", 1);
        reg.record("server.update.group_size", jobs.len() as u64);
        let group_start = reg.now_us();

        // Journal + apply each script; under group commit the per-record
        // fsync is deferred to the single group sync below. A job whose
        // append fails is rejected whole — none of its ops applied — and
        // does not poison its groupmates. A *journal I/O* failure
        // additionally flips the server into degraded read-only mode:
        // the failing job 500s (its durability attempt really happened),
        // while later client jobs in the same drain fail-fast with a
        // Degraded reply rather than hammering the sick disk. Probe jobs
        // (from the degraded supervisor) always attempt the disk.
        let mut faulted = shared.is_degraded().then(|| shared.degraded_reason());
        let mut outcomes: Vec<Result<webreason_core::ScriptOutcome, WriteError>> = jobs
            .iter()
            .map(|job| {
                if let Some(reason) = &faulted {
                    if !job.probe {
                        return Err(WriteError::Degraded(reason.clone()));
                    }
                }
                let result = if group_commit {
                    store.apply_script_deferred(&job.ops)
                } else {
                    store.apply_script(&job.ops)
                };
                result.map_err(|e| {
                    if let Some(reason) = degraded_reason_for(&e) {
                        shared.enter_degraded(reason.to_owned());
                        faulted = Some(reason.to_owned());
                    }
                    WriteError::Apply(e.to_string())
                })
            })
            .collect();
        let mut any_ok = outcomes.iter().any(Result::is_ok);
        if group_commit && any_ok {
            if let Err(e) = store.sync_group() {
                // The group's durability is unknown: nothing is
                // acknowledged, nothing is published. An fsync I/O error
                // is a disk fault like any other — degrade.
                if let Some(reason) = degraded_reason_for(&e) {
                    shared.enter_degraded(reason.to_owned());
                }
                let msg = e.to_string();
                for o in outcomes.iter_mut().filter(|o| o.is_ok()) {
                    *o = Err(WriteError::Apply(msg.clone()));
                }
                any_ok = false;
            }
        }
        // A probe that journaled *and* synced proves the disk has healed:
        // the writer itself clears degraded mode, so there is no window
        // where a queued client job can observe a half-cleared flag.
        if jobs
            .iter()
            .zip(&outcomes)
            .any(|(job, o)| job.probe && o.is_ok())
        {
            shared.exit_degraded();
        }
        // Service-rate sample: mean per-job cost of this drained group,
        // feeding the shed estimator's drain rate.
        let per_job_us = reg.now_us().saturating_sub(group_start) / jobs.len() as u64;
        ewma_update(&shared.writer_service_ewma_us, per_job_us);
        // One published epoch per group, and only after a successful
        // apply — on error readers stay on the previous epoch.
        let epoch = if any_ok {
            reg.add("server.update.publishes", 1);
            // Drain the group's consolidated delta *before* publishing so
            // it can't pick up a later group's changes, then step every
            // registered view from the previously published snapshot to
            // the new one.
            let delta = store.take_delta();
            let e = store.publish();
            let new_snap = shared.reader.snapshot();
            shared.hub.publish(&prev_snap, &new_snap, &delta);
            prev_snap = new_snap;
            e
        } else {
            0
        };
        for (job, outcome) in jobs.iter().zip(outcomes) {
            let reply = match outcome {
                Ok(o) => {
                    if !job.probe {
                        reg.add("server.update.applied", 1);
                        since_checkpoint += 1;
                    }
                    Ok(UpdateResponse {
                        accepted: job.ops.len(),
                        added: o.added,
                        removed: o.removed,
                        epoch,
                    })
                }
                Err(e) => {
                    if !job.probe {
                        reg.add("server.update.apply_errors", 1);
                    }
                    Err(e)
                }
            };
            // The client may have timed out and dropped the receiver; the
            // update is journaled and applied either way.
            let _ = job.reply.try_send(reply);
        }
        // Consume the counter in `checkpoint_every`-sized chunks rather
        // than resetting it: a drained group can overshoot the boundary,
        // and the periodic cadence must stay exactly one checkpoint per N
        // applied updates regardless of how the groups landed.
        while checkpoint_every > 0 && since_checkpoint >= checkpoint_every {
            since_checkpoint -= checkpoint_every;
            if store.checkpoint().is_err() {
                reg.add("server.checkpoint.errors", 1);
            } else {
                reg.add("server.checkpoint.count", 1);
            }
        }
    }
    store
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
