//! # webreason-failpoints — deterministic fault injection
//!
//! A minimal, dependency-free failpoint layer in the style of
//! `tikv/fail-rs`: code under test marks crash-relevant sites with
//! [`fail_point!`]`("site.name")`, and a test (or an operator chasing a
//! heisenbug) arms those sites with an action script. The layer is
//! **zero-cost unless the `failpoints` cargo feature is enabled**: with
//! the feature off, `fail_point!` expands to nothing — no registry, no
//! atomics, no branch.
//!
//! ## Arming sites
//!
//! Sites are armed from the `WEBREASON_FAILPOINTS` environment variable
//! (read once, at first evaluation) or programmatically via [`configure`]:
//!
//! ```text
//! WEBREASON_FAILPOINTS=store.journal.append=panic@3,store.merge.pre_commit=abort
//! ```
//!
//! Each entry is `site=action[@n]` where `action` is one of
//!
//! * `panic` — panic at the site (unwinding; exercises panic isolation),
//! * `abort` — abort the process at the site (no destructors, no unwind;
//!   models a crash / power cut for recovery tests),
//! * `err(ENOSPC)` / `err(EIO)` — make the site return the corresponding
//!   `std::io::Error` (raw OS errno, so `raw_os_error()` matches real
//!   disk faults). Only sites marked with [`fail_point_io!`] can return;
//!   a plain [`fail_point!`] ignores an armed `err` action.
//! * `off`   — explicitly disarmed (useful to override an outer script).
//!
//! `@n` (1-based, default 1) delays the action until the *n*-th hit of the
//! site, so a test can survive two appends and die on the third. Hits are
//! counted per site with a process-global atomic counter, which makes the
//! trigger deterministic for a deterministic workload.
//!
//! Trigger semantics differ by action class: `panic`/`abort` are
//! **one-shot** (they fire exactly on hit *n* — the process usually does
//! not survive to hit *n+1* anyway), while `err(...)` is **persistent**
//! (it fires on every hit from *n* onward, until re-[`configure`]d).
//! Persistence is what makes a *fault window* expressible: arm
//! `store.journal.append=err(ENOSPC)`, run traffic, disarm with
//! `configure("")` — every append in between fails, exactly like a full
//! disk that stays full until an operator frees space.
//!
//! ## Naming convention
//!
//! Site names are dotted paths, `<subsystem>.<component>.<event>`:
//! `store.journal.append`, `store.checkpoint.write`,
//! `store.merge.pre_commit`, `store.maintain.incremental`,
//! `rdfs.parallel.worker`, `sparql.union.worker`. The registry is
//! open-world — arming an unknown site is not an error, it simply never
//! fires — so tests can be written against sites before they exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marks a fault-injection site.
///
/// With the `failpoints` feature enabled this evaluates the site against
/// the process-global registry (possibly panicking or aborting); with the
/// feature off it expands to nothing.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval($name)
    };
}

/// Marks a fault-injection site (no-op build: the `failpoints` feature is
/// disabled, the macro expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
}

/// Marks a fault-injection site on a fallible I/O path.
///
/// Like [`fail_point!`], but the site can also be armed with an
/// `err(ENOSPC)` / `err(EIO)` action, which makes the macro return the
/// corresponding `std::io::Error` from the enclosing function via `?` —
/// the enclosing error type must implement `From<std::io::Error>`.
/// `panic`/`abort` actions behave exactly as at a plain site.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point_io {
    ($name:expr) => {
        $crate::eval_io($name)?
    };
}

/// Marks a fault-injection site on a fallible I/O path (no-op build: the
/// `failpoints` feature is disabled, the macro expands to nothing — no
/// registry, no branch, no `Result` in sight).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point_io {
    ($name:expr) => {};
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// What an armed site does when it triggers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Panic (unwinding) at the site.
        Panic,
        /// Abort the process at the site — models a hard crash.
        Abort,
        /// Return an injected `std::io::Error` (only from
        /// `fail_point_io!` sites). Unlike `Panic`/`Abort`, fires on
        /// *every* hit from `trigger_at` onward — a fault window stays
        /// faulted until reconfigured, like a disk that stays full.
        Err(ErrKind),
        /// Explicitly disarmed.
        Off,
    }

    /// Which I/O error an [`Action::Err`] site injects. The raw OS errno
    /// is used so `io::Error::raw_os_error()` is indistinguishable from a
    /// real disk fault.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ErrKind {
        /// `ENOSPC` — no space left on device (errno 28).
        Enospc,
        /// `EIO` — input/output error (errno 5).
        Eio,
    }

    impl ErrKind {
        fn to_io_error(self) -> std::io::Error {
            match self {
                ErrKind::Enospc => std::io::Error::from_raw_os_error(28),
                ErrKind::Eio => std::io::Error::from_raw_os_error(5),
            }
        }
    }

    struct Site {
        action: Action,
        /// 1-based hit index on which the action fires.
        trigger_at: u64,
        hits: AtomicU64,
    }

    struct Registry {
        sites: HashMap<String, Site>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let spec = std::env::var("WEBREASON_FAILPOINTS").unwrap_or_default();
            Mutex::new(parse(&spec))
        })
    }

    fn parse(spec: &str) -> Registry {
        let mut sites = HashMap::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, rhs)) = entry.split_once('=') else {
                continue;
            };
            let (action, trigger_at) = match rhs.split_once('@') {
                Some((a, n)) => (a, n.parse::<u64>().unwrap_or(1).max(1)),
                None => (rhs, 1),
            };
            let action = match action.trim() {
                "panic" => Action::Panic,
                "abort" | "kill" => Action::Abort,
                a if a.eq_ignore_ascii_case("err(ENOSPC)") => Action::Err(ErrKind::Enospc),
                a if a.eq_ignore_ascii_case("err(EIO)") => Action::Err(ErrKind::Eio),
                _ => Action::Off,
            };
            sites.insert(
                name.trim().to_owned(),
                Site {
                    action,
                    trigger_at,
                    hits: AtomicU64::new(0),
                },
            );
        }
        Registry { sites }
    }

    /// Evaluates a site: counts the hit and fires the armed action on the
    /// configured occurrence. Called by `fail_point!`. An armed `err`
    /// action is ignored here — a plain site has no way to return it.
    pub fn eval(name: &str) {
        let _ = eval_inner(name);
    }

    /// Evaluates an I/O site: like [`eval`], but an armed `err` action
    /// returns the injected error (on every hit from `trigger_at`
    /// onward). Called by `fail_point_io!`.
    pub fn eval_io(name: &str) -> std::io::Result<()> {
        eval_inner(name)
    }

    fn eval_inner(name: &str) -> std::io::Result<()> {
        let reg = registry().lock().expect("failpoint registry");
        let Some(site) = reg.sites.get(name) else {
            return Ok(());
        };
        let hit = site.hits.fetch_add(1, Ordering::SeqCst) + 1;
        match site.action {
            // Persistent: the window stays faulted from `trigger_at` on.
            Action::Err(kind) if hit >= site.trigger_at => Err(kind.to_io_error()),
            // One-shot actions fire exactly on the configured hit.
            Action::Panic if hit == site.trigger_at => {
                drop(reg); // don't poison the registry for catch_unwind users
                panic!("failpoint {name} triggered (hit {hit})");
            }
            Action::Abort if hit == site.trigger_at => {
                // Flush nothing, unwind nothing: model a hard crash.
                eprintln!("failpoint {name} aborting process (hit {hit})");
                std::process::abort();
            }
            _ => Ok(()),
        }
    }

    /// Replaces the whole registry from a spec string (same grammar as the
    /// `WEBREASON_FAILPOINTS` environment variable). Hit counters reset.
    pub fn configure(spec: &str) {
        *registry().lock().expect("failpoint registry") = parse(spec);
    }

    /// How many times a site has been evaluated since it was last armed.
    pub fn hit_count(name: &str) -> u64 {
        registry()
            .lock()
            .expect("failpoint registry")
            .sites
            .get(name)
            .map(|s| s.hits.load(Ordering::SeqCst))
            .unwrap_or(0)
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{configure, eval, eval_io, hit_count, Action, ErrKind};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; tests that reconfigure it must not
    /// overlap.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_sites_are_inert() {
        let _g = serial();
        configure("");
        fail_point!("nothing.armed.here");
        assert_eq!(hit_count("nothing.armed.here"), 0);
    }

    #[test]
    fn panic_fires_on_the_configured_hit() {
        let _g = serial();
        configure("t.panic=panic@3");
        fail_point!("t.panic");
        fail_point!("t.panic");
        assert_eq!(hit_count("t.panic"), 2);
        let r = std::panic::catch_unwind(|| fail_point!("t.panic"));
        assert!(r.is_err(), "third hit panics");
        // subsequent hits are inert again (one-shot trigger)
        fail_point!("t.panic");
        assert_eq!(hit_count("t.panic"), 4);
    }

    #[test]
    fn off_and_garbage_actions_never_fire() {
        let _g = serial();
        configure("t.off=off,t.junk=frobnicate,malformed-entry,x=panic@0");
        fail_point!("t.off");
        fail_point!("t.junk");
        // `@0` clamps to 1, so "x" would fire on first hit — but only for
        // a real action; `panic@0` is armed as panic at hit 1.
        let r = std::panic::catch_unwind(|| fail_point!("x"));
        assert!(r.is_err());
        assert_eq!(hit_count("t.off"), 1);
    }

    fn io_site(name: &str) -> std::io::Result<()> {
        fail_point_io!(name);
        Ok(())
    }

    #[test]
    fn err_actions_fire_persistently_from_the_trigger() {
        let _g = serial();
        configure("t.io=err(ENOSPC)@3");
        assert!(io_site("t.io").is_ok(), "hit 1 survives");
        assert!(io_site("t.io").is_ok(), "hit 2 survives");
        for hit in 3..6 {
            let e = io_site("t.io").expect_err("err actions persist");
            assert_eq!(e.raw_os_error(), Some(28), "ENOSPC at hit {hit}");
        }
        assert_eq!(hit_count("t.io"), 5);
        // Disarming ends the fault window; the site heals.
        configure("");
        assert!(io_site("t.io").is_ok());
    }

    #[test]
    fn err_kinds_map_to_real_errnos() {
        let _g = serial();
        configure("t.eio=err(EIO)");
        assert_eq!(io_site("t.eio").unwrap_err().raw_os_error(), Some(5));
        configure("t.enospc=err(enospc)"); // case-insensitive inner token
        assert_eq!(io_site("t.enospc").unwrap_err().raw_os_error(), Some(28));
    }

    #[test]
    fn io_sites_still_honour_panic_actions() {
        let _g = serial();
        configure("t.io_panic=panic@2");
        assert!(io_site("t.io_panic").is_ok());
        let r = std::panic::catch_unwind(|| io_site("t.io_panic"));
        assert!(r.is_err(), "second hit panics through the io macro");
        // One-shot: hit 3 is inert again.
        assert!(io_site("t.io_panic").is_ok());
    }

    #[test]
    fn plain_sites_ignore_err_actions() {
        let _g = serial();
        configure("t.plain=err(ENOSPC)");
        fail_point!("t.plain"); // no way to return: must not fire
        assert_eq!(hit_count("t.plain"), 1);
    }
}

/// Default-build proof: with the `failpoints` feature off, the macros
/// expand to nothing — the compiler sees a function whose only statement
/// is `Ok(())`, no registry, no atomics, no branch. The CI
/// `cargo test -p webreason-failpoints` (no features) run compiles and
/// executes this, pinning the zero-cost claim.
#[cfg(all(test, not(feature = "failpoints")))]
mod noop_tests {
    fn io_site() -> std::io::Result<()> {
        fail_point_io!("store.journal.append");
        Ok(())
    }

    #[test]
    fn disabled_macros_compile_to_nothing() {
        fail_point!("store.journal.append");
        assert!(io_site().is_ok(), "an unarmed build can never inject");
    }
}
