//! BGP and union query evaluation (`q(G)`).
//!
//! Index nested-loop join over the planner's order: each triple pattern is
//! probed against the [`Graph`] index with every position that is a
//! constant or an already-bound variable fixed, and the remaining variables
//! bound from the matching triples. Unions evaluate each BGP independently;
//! `DISTINCT` switches from bag to set semantics (the answer-*set*
//! semantics the paper's query answering is defined with).

use crate::ast::{Aggregate, Bgp, QTerm, Query, TriplePattern, Variable};
use crate::plan::{plan_bgp, PlannedBgp};
use rdf_model::{vocab, Dictionary, Graph, Literal, Pattern, Term, TermId, Triple};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::cmp::Ordering;

/// The solutions of a query: one row per answer, holding the values of the
/// projected variables in projection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solutions {
    /// Names of the projected variables (without `?`).
    pub var_names: Vec<String>,
    /// Answer rows; `rows[i][j]` is the value of `var_names[j]` in answer `i`.
    pub rows: Vec<Vec<TermId>>,
}

impl Solutions {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there is no answer.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The answers as a set (order- and duplicate-insensitive), for
    /// comparing evaluation strategies.
    pub fn as_set(&self) -> FxHashSet<Vec<TermId>> {
        self.rows.iter().cloned().collect()
    }

    /// The answers sorted lexicographically — deterministic output for
    /// tests and the bench harness.
    pub fn sorted_rows(&self) -> Vec<Vec<TermId>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Renders each answer as `name=term` pairs, sorted, via `dict`.
    pub fn to_strings(&self, dict: &Dictionary) -> Vec<String> {
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&self.var_names)
                    .map(|(id, name)| {
                        let term = dict
                            .decode(*id)
                            .map_or_else(|| id.to_string(), |t| t.to_string());
                        format!("?{name}={term}")
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        out.sort();
        out
    }
}

/// Binds the variables of `tp` against the concrete triple `t`, pushing
/// newly-bound variables onto `touched`. Returns false on a repeated-variable
/// mismatch (e.g. `?x p ?x` matched against `a p b`).
#[inline]
pub(crate) fn bind_triple(
    tp: &TriplePattern,
    t: &Triple,
    binding: &mut [Option<TermId>],
    touched: &mut SmallVec<[Variable; 3]>,
) -> bool {
    for (qt, value) in [(tp.s, t.s), (tp.p, t.p), (tp.o, t.o)] {
        if let QTerm::Var(v) = qt {
            match binding[v.index()] {
                Some(bound) => {
                    if bound != value {
                        return false;
                    }
                }
                None => {
                    binding[v.index()] = Some(value);
                    touched.push(v);
                }
            }
        }
    }
    true
}

#[inline]
pub(crate) fn resolve(qt: QTerm, binding: &[Option<TermId>]) -> Option<TermId> {
    match qt {
        QTerm::Const(c) => Some(c),
        QTerm::Var(v) => binding[v.index()],
    }
}

fn eval_rec(
    g: &Graph,
    bgp: &Bgp,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&[Option<TermId>]),
) {
    if depth == order.len() {
        emit(binding);
        return;
    }
    let tp = &bgp.patterns[order[depth]];
    let probe = Pattern::new(
        resolve(tp.s, binding),
        resolve(tp.p, binding),
        resolve(tp.o, binding),
    );
    g.for_each_match(&probe, |t| {
        let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
        if bind_triple(tp, &t, binding, &mut touched) {
            eval_rec(g, bgp, order, depth + 1, binding, emit);
        }
        for v in touched {
            binding[v.index()] = None;
        }
    });
}

fn exists_rec(
    g: &Graph,
    patterns: &[TriplePattern],
    depth: usize,
    binding: &mut [Option<TermId>],
) -> bool {
    let Some(tp) = patterns.get(depth) else {
        return true;
    };
    let probe = Pattern::new(
        resolve(tp.s, binding),
        resolve(tp.p, binding),
        resolve(tp.o, binding),
    );
    // Collect then test: early exit without aborting the index callback.
    let mut matches: Vec<Triple> = Vec::new();
    g.for_each_match(&probe, |t| matches.push(t));
    for t in matches {
        let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
        let ok = bind_triple(tp, &t, binding, &mut touched)
            && exists_rec(g, patterns, depth + 1, binding);
        for v in touched {
            binding[v.index()] = None;
        }
        if ok {
            return true;
        }
    }
    false
}

/// True if `bgp` has at least one match in `g` under the given (partial)
/// binding — the `FILTER NOT EXISTS` probe. Bound variables constrain the
/// search; unbound ones are existential.
pub fn bgp_has_match(g: &Graph, bgp: &Bgp, binding: &[Option<TermId>]) -> bool {
    let mut scratch: Vec<Option<TermId>> = binding.to_vec();
    // Ensure the scratch table covers the neg-pattern's variables.
    let max_var = bgp
        .patterns
        .iter()
        .flat_map(|tp| tp.variables())
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0);
    if scratch.len() < max_var {
        scratch.resize(max_var, None);
    }
    exists_rec(g, &bgp.patterns, 0, &mut scratch)
}

/// Applies the query's `NOT EXISTS` groups to a candidate binding.
#[inline]
pub(crate) fn passes_negation(g: &Graph, q: &Query, binding: &[Option<TermId>]) -> bool {
    q.not_exists
        .iter()
        .all(|neg| !bgp_has_match(g, neg, binding))
}

/// Evaluates a single BGP with an explicit plan, emitting every complete
/// variable binding. `n_vars` is the owning query's variable-table size.
pub fn evaluate_bgp_with_plan(
    g: &Graph,
    bgp: &Bgp,
    plan: &PlannedBgp,
    n_vars: usize,
    mut emit: impl FnMut(&[Option<TermId>]),
) {
    let mut binding: Vec<Option<TermId>> = vec![None; n_vars];
    eval_rec(g, bgp, &plan.order, 0, &mut binding, &mut emit);
}

/// Evaluates a single BGP (planning it first), returning complete bindings.
pub fn evaluate_bgp(g: &Graph, bgp: &Bgp, n_vars: usize) -> Vec<Vec<Option<TermId>>> {
    let plan = plan_bgp(g, bgp);
    let mut out = Vec::new();
    evaluate_bgp_with_plan(g, bgp, &plan, n_vars, |b| out.push(b.to_vec()));
    out
}

/// Evaluates a query (a union of BGPs) against `g` — plain *query
/// evaluation* in the paper's terms: only explicit triples of `g` are used.
///
/// A union branch that does not bind every projected variable contributes
/// no answers (the conjunctive fragment has no partial bindings).
pub fn evaluate(g: &Graph, q: &Query) -> Solutions {
    let mut rows: Vec<Vec<TermId>> = Vec::new();
    let mut seen: FxHashSet<Vec<TermId>> = FxHashSet::default();
    for bgp in &q.bgps {
        let vars = bgp.variables();
        if !q.projection.iter().all(|v| vars.contains(v)) {
            continue;
        }
        let plan = plan_bgp(g, bgp);
        evaluate_bgp_with_plan(g, bgp, &plan, q.var_names.len(), |binding| {
            if !passes_negation(g, q, binding) {
                return;
            }
            let row: Vec<TermId> = q
                .projection
                .iter()
                .map(|v| binding[v.index()].expect("projected variable bound"))
                .collect();
            if q.distinct {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            } else {
                rows.push(row);
            }
        });
    }
    let var_names = q
        .projection
        .iter()
        .map(|&v| q.var_name(v).to_owned())
        .collect();
    Solutions { var_names, rows }
}

/// SPARQL value ordering for `ORDER BY`: numeric literals compare by
/// value; otherwise terms compare by kind (IRI < literal < blank) then
/// lexically. Total and deterministic.
pub fn compare_terms(a: &Term, b: &Term) -> Ordering {
    fn numeric(t: &Term) -> Option<f64> {
        let lit = t.as_literal()?;
        match lit.datatype() {
            Some(vocab::XSD_INTEGER) | Some(vocab::XSD_DECIMAL) | Some(vocab::XSD_DOUBLE) => {
                lit.lexical().parse().ok()
            }
            _ => None,
        }
    }
    match (numeric(a), numeric(b)) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        _ => a.cmp(b),
    }
}

/// Applies a query's filters, aggregate and solution modifiers to raw
/// solutions: `FILTER`, then `COUNT`, then `ORDER BY`, then
/// `OFFSET`/`LIMIT`.
///
/// Separated from [`evaluate`] because filters, ordering and aggregate
/// literals need the dictionary — and so that they apply identically no
/// matter which reasoning strategy produced the solutions (the store calls
/// this once per answer).
pub fn finalize(mut sols: Solutions, q: &Query, dict: &mut Dictionary) -> Solutions {
    if !q.filters.is_empty() {
        // Filter variables are projected (parser restriction), so resolve
        // each side to a row column or a constant.
        let column = |v: Variable| -> usize {
            q.projection
                .iter()
                .position(|&p| p == v)
                .expect("parser: filter vars projected")
        };
        let checks: Vec<(usize, crate::ast::CompareOp, Result<usize, TermId>)> = q
            .filters
            .iter()
            .map(|f| {
                let right = match f.right {
                    QTerm::Var(v) => Ok(column(v)),
                    QTerm::Const(c) => Err(c),
                };
                (column(f.left), f.op, right)
            })
            .collect();
        sols.rows.retain(|row| {
            checks.iter().all(|&(left, op, right)| {
                let lhs = row[left];
                let rhs = match right {
                    Ok(col) => row[col],
                    Err(c) => c,
                };
                // Interning makes id equality term equality; the ordered
                // operators use SPARQL value comparison.
                match op {
                    crate::ast::CompareOp::Eq => lhs == rhs,
                    crate::ast::CompareOp::Ne => lhs != rhs,
                    _ => match (dict.decode(lhs), dict.decode(rhs)) {
                        (Some(a), Some(b)) => op.test(compare_terms(a, b)),
                        _ => false,
                    },
                }
            })
        });
    }
    if let Some(Aggregate::Count { distinct, alias }) = &q.aggregate {
        let n = if *distinct {
            sols.as_set().len()
        } else {
            sols.len()
        };
        let id = dict.encode(&Term::Literal(Literal::typed(
            n.to_string(),
            vocab::XSD_INTEGER,
        )));
        return Solutions {
            var_names: vec![alias.clone()],
            rows: vec![vec![id]],
        };
    }
    if q.modifiers.is_empty() {
        return sols;
    }
    if !q.modifiers.order_by.is_empty() {
        // Resolve each key to its column in the projected rows.
        let columns: Vec<(usize, bool)> = q
            .modifiers
            .order_by
            .iter()
            .map(|key| {
                let col = q
                    .projection
                    .iter()
                    .position(|&v| v == key.var)
                    .expect("parser guarantees ORDER BY keys are projected");
                (col, key.descending)
            })
            .collect();
        sols.rows.sort_by(|a, b| {
            for &(col, descending) in &columns {
                let (ta, tb) = (dict.decode(a[col]), dict.decode(b[col]));
                let ord = match (ta, tb) {
                    (Some(ta), Some(tb)) => compare_terms(ta, tb),
                    _ => Ordering::Equal,
                };
                let ord = if descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if q.modifiers.offset > 0 {
        let offset = q.modifiers.offset.min(sols.rows.len());
        sols.rows.drain(..offset);
    }
    if let Some(limit) = q.modifiers.limit {
        sols.rows.truncate(limit);
    }
    sols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use rdf_io::parse_turtle;

    fn setup(data: &str, query: &str) -> Solutions {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(data, &mut dict, &mut g).expect("fixture data parses");
        let q = parse_query(query, &mut dict).expect("fixture query parses");
        evaluate(&g, &q)
    }

    const DATA: &str = r#"
        @prefix ex: <http://ex/> .
        ex:anne ex:hasFriend ex:marie .
        ex:marie ex:hasFriend ex:paul .
        ex:paul ex:hasFriend ex:anne .
        ex:anne a ex:Person .
        ex:marie a ex:Person .
        ex:bob ex:knows ex:anne .
        ex:anne ex:age 31 .
    "#;

    #[test]
    fn single_pattern() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ex:marie }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn two_hop_join() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:hasFriend ?y . ?y ex:hasFriend ?z }",
        );
        assert_eq!(s.len(), 3, "friend-of-friend over the 3-cycle");
    }

    #[test]
    fn join_with_type_filter() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ?y . ?x a ex:Person }",
        );
        assert_eq!(s.len(), 2, "anne and marie; paul has no type");
    }

    #[test]
    fn variable_in_property_position() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?p WHERE { ex:bob ?p ex:anne }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn literal_object() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:age 31 }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn repeated_variable_self_join() {
        // ?x ex:hasFriend ?x — nobody is their own friend in DATA.
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ?x }",
        );
        assert!(s.is_empty());
        // add a self-loop and check it is found
        let s = setup(
            &format!("{DATA}\nex:solo ex:hasFriend ex:solo ."),
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ?x }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn no_match_returns_empty() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:nonexistent ?y }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x a ex:Person . ?y ex:knows ex:anne }",
        );
        assert_eq!(s.len(), 2, "2 persons × 1 knower");
    }

    #[test]
    fn union_bag_and_set_semantics() {
        // Pins SPARQL union semantics for BOTH evaluators: under bag
        // semantics (`distinct=false`) each branch contributes its full
        // bag — a solution produced by two overlapping branches appears
        // twice, and a duplicated branch doubles its solutions. The
        // shared-prefix evaluator must NOT deduplicate what its trie
        // happens to share; it keeps a leaf multiplicity instead.
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        rdf_io::parse_turtle(DATA, &mut dict, &mut g).unwrap();
        let threads = std::num::NonZeroUsize::new(2).unwrap();

        let q = "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x ex:hasFriend ?y } UNION { ?x a ex:Person } }";
        let bag_q = crate::parse_query(q, &mut dict).unwrap();
        let bag = evaluate(&g, &bag_q);
        assert_eq!(
            bag.len(),
            5,
            "3 friendship subjects + 2 typed, duplicates kept"
        );
        let (union_bag, _) = crate::evaluate_union(&g, &bag_q, threads);
        assert_eq!(union_bag.sorted_rows(), bag.sorted_rows());

        let set_q = crate::parse_query(&q.replace("SELECT", "SELECT DISTINCT"), &mut dict).unwrap();
        let set = evaluate(&g, &set_q);
        assert_eq!(set.len(), 3, "anne, marie, paul");
        let (union_set, _) = crate::evaluate_union(&g, &set_q, threads);
        assert_eq!(union_set.sorted_rows(), set.sorted_rows());

        // Overlapping-branch edge: the same branch twice. Bag semantics
        // double-counts; DISTINCT collapses. Both evaluators agree.
        let dup = "PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Person } }";
        let dup_q = crate::parse_query(dup, &mut dict).unwrap();
        let dup_bag = evaluate(&g, &dup_q);
        assert_eq!(dup_bag.len(), 4, "2 persons × 2 identical branches");
        let (union_dup, _) = crate::evaluate_union(&g, &dup_q, threads);
        assert_eq!(union_dup.sorted_rows(), dup_bag.sorted_rows());
    }

    #[test]
    fn distinct_collapses_duplicates() {
        let q = "PREFIX ex: <http://ex/> SELECT DISTINCT ?y WHERE { ?x ex:hasFriend ?y . ?y a ex:Person }";
        let s = setup(DATA, q);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_branch_missing_projection_var_is_skipped() {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(DATA, &mut dict, &mut g).unwrap();
        let mut q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:hasFriend ?y }",
            &mut dict,
        )
        .unwrap();
        // Manually add a branch that lacks ?y.
        let knows = QTerm::Const(dict.encode_iri("http://ex/knows"));
        q.bgps.push(Bgp::new(vec![TriplePattern::new(
            QTerm::Var(Variable(0)),
            knows,
            QTerm::Var(Variable(0)),
        )]));
        let s = evaluate(&g, &q);
        assert_eq!(s.len(), 3, "only the complete branch contributes");
    }

    #[test]
    fn ground_pattern_acts_as_filter() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . ex:anne ex:hasFriend ex:marie }",
        );
        assert_eq!(s.len(), 2);
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . ex:anne ex:hasFriend ex:paul }",
        );
        assert!(s.is_empty(), "false ground pattern empties the result");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Reference evaluator: try every assignment of graph terms to
        /// variables (exponential, only viable on tiny instances).
        fn brute_force(g: &Graph, q: &Query) -> FxHashSet<Vec<TermId>> {
            let mut universe: Vec<TermId> = Vec::new();
            for t in g.iter() {
                for id in [t.s, t.p, t.o] {
                    if !universe.contains(&id) {
                        universe.push(id);
                    }
                }
            }
            let n = q.var_names.len();
            let mut out = FxHashSet::default();
            let mut assignment = vec![None::<TermId>; n];
            fn rec(
                g: &Graph,
                q: &Query,
                universe: &[TermId],
                assignment: &mut Vec<Option<TermId>>,
                var: usize,
                out: &mut FxHashSet<Vec<TermId>>,
            ) {
                if var == assignment.len() {
                    let resolve = |t: QTerm| match t {
                        QTerm::Const(c) => c,
                        QTerm::Var(v) => assignment[v.index()].unwrap(),
                    };
                    for bgp in &q.bgps {
                        let ok = bgp.patterns.iter().all(|tp| {
                            g.contains(&Triple::new(resolve(tp.s), resolve(tp.p), resolve(tp.o)))
                        });
                        if ok && !bgp.patterns.is_empty() {
                            out.insert(
                                q.projection
                                    .iter()
                                    .map(|v| assignment[v.index()].unwrap())
                                    .collect(),
                            );
                            return;
                        }
                    }
                    return;
                }
                for &id in universe {
                    assignment[var] = Some(id);
                    rec(g, q, universe, assignment, var + 1, out);
                }
                assignment[var] = None;
            }
            if !universe.is_empty() {
                rec(g, q, &universe, &mut assignment, 0, &mut out);
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// The planned index-nested-loop evaluator agrees with the
            /// brute-force reference on random tiny graphs and queries.
            #[test]
            fn evaluator_matches_brute_force(
                triples in proptest::collection::vec((0usize..5, 0usize..3, 0usize..5), 1..10),
                atoms in proptest::collection::vec((0u16..3, 0usize..3, 0u16..3), 1..3),
            ) {
                let mut dict = Dictionary::new();
                let mut g = Graph::new();
                let node = |d: &mut Dictionary, i: usize| d.encode_iri(&format!("http://n/{i}"));
                let prop = |d: &mut Dictionary, i: usize| d.encode_iri(&format!("http://p/{i}"));
                for &(s, p, o) in &triples {
                    let t = Triple::new(node(&mut dict, s), prop(&mut dict, p), node(&mut dict, o));
                    g.insert(t);
                }
                // Query: variables 0..3, constant properties (keeps the
                // brute-force universe small but exercises joins).
                let patterns: Vec<TriplePattern> = atoms
                    .iter()
                    .map(|&(sv, p, ov)| {
                        TriplePattern::new(
                            QTerm::Var(Variable(sv)),
                            QTerm::Const(prop(&mut dict, p)),
                            QTerm::Var(Variable(ov)),
                        )
                    })
                    .collect();
                let used: std::collections::BTreeSet<u16> =
                    patterns.iter().flat_map(|tp| tp.variables()).map(|v| v.0).collect();
                let max_var = *used.iter().max().unwrap() as usize;
                let q = Query::conjunctive(
                    (0..=max_var).map(|i| format!("v{i}")).collect(),
                    used.iter().map(|&v| Variable(v)).collect(),
                    true,
                    Bgp::new(patterns),
                );
                let got = evaluate(&g, &q).as_set();
                // Brute force enumerates only *used* variables; unused slots
                // don't exist here because projection == used vars.
                let want = brute_force(&g, &q);
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn planned_and_textual_orders_agree() {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(DATA, &mut dict, &mut g).unwrap();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:hasFriend ?y . ?y ex:hasFriend ?z . ?x a ex:Person }",
            &mut dict,
        )
        .unwrap();
        let planned = evaluate(&g, &q).as_set();
        // Evaluate with the trivial textual order.
        let mut rows = FxHashSet::default();
        let plan = crate::plan::plan_textual(&q.bgps[0]);
        evaluate_bgp_with_plan(&g, &q.bgps[0], &plan, q.var_names.len(), |b| {
            rows.insert(
                q.projection
                    .iter()
                    .map(|v| b[v.index()].unwrap())
                    .collect::<Vec<_>>(),
            );
        });
        assert_eq!(planned, rows, "join order must not change the answers");
    }

    fn finalized(data: &str, query: &str) -> (Solutions, Dictionary) {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(data, &mut dict, &mut g).expect("fixture data parses");
        let q = parse_query(query, &mut dict).expect("fixture query parses");
        let sols = evaluate(&g, &q);
        (finalize(sols, &q, &mut dict), dict)
    }

    const AGES: &str = r#"
        @prefix ex: <http://ex/> .
        ex:anne  ex:age 31 .
        ex:bob   ex:age 9 .
        ex:carol ex:age 120 .
    "#;

    #[test]
    fn order_by_numeric_not_lexicographic() {
        let (s, d) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY ?a",
        );
        let ages: Vec<String> = s
            .rows
            .iter()
            .map(|r| {
                d.decode(r[1])
                    .unwrap()
                    .as_literal()
                    .unwrap()
                    .lexical()
                    .to_owned()
            })
            .collect();
        assert_eq!(ages, vec!["9", "31", "120"], "numeric, not string, order");
    }

    #[test]
    fn order_by_desc_and_iri_keys() {
        let (s, d) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY DESC(?x)",
        );
        let names: Vec<&str> = s
            .rows
            .iter()
            .map(|r| d.decode(r[0]).unwrap().as_iri().unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["http://ex/carol", "http://ex/bob", "http://ex/anne"]
        );
    }

    #[test]
    fn limit_and_offset() {
        let (s, _) = finalized(AGES, "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1");
        assert_eq!(s.len(), 1);
        let (s, _) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:age ?a } OFFSET 10",
        );
        assert!(s.is_empty(), "offset past the end");
        let (s, _) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:age ?a } LIMIT 0",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn count_aggregate_plain_and_distinct() {
        let data = format!("{AGES}\nex:anne ex:age 32 .");
        let (s, d) = finalized(
            &data,
            "PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?x ex:age ?a }",
        );
        assert_eq!(s.var_names, vec!["n"]);
        assert_eq!(
            d.decode(s.rows[0][0])
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "4"
        );
        // distinct subjects only
        let (s, d) = finalized(
            &data,
            "PREFIX ex: <http://ex/> SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?x ex:age ?a }",
        );
        assert_eq!(
            d.decode(s.rows[0][0])
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "4"
        );
        // count of an empty result is 0, still one row
        let (s, d) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?x ex:nope ?a }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            d.decode(s.rows[0][0])
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "0"
        );
    }

    #[test]
    fn filters_numeric_and_term_comparisons() {
        let (s, d) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?a > 30) } ORDER BY ?a",
        );
        assert_eq!(s.len(), 2, "31 and 120 (numeric, not lexicographic)");
        let ages: Vec<&str> = s
            .rows
            .iter()
            .map(|r| d.decode(r[1]).unwrap().as_literal().unwrap().lexical())
            .collect();
        assert_eq!(ages, vec!["31", "120"]);

        let (s, _) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?x != ex:bob) }",
        );
        assert_eq!(s.len(), 2);

        let (s, _) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:age ?a . FILTER (?a = 9) }",
        );
        assert_eq!(s.len(), 1);

        // filters compose with COUNT
        let (s, d) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?x ex:age ?a . FILTER (?a <= 31) }",
        );
        assert_eq!(
            d.decode(s.rows[0][0])
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "2"
        );
    }

    #[test]
    fn not_exists_negation() {
        let data = r#"
            @prefix ex: <http://ex/> .
            ex:anne a ex:Person . ex:bob a ex:Person . ex:carol a ex:Person .
            ex:bob ex:banned ex:forever .
        "#;
        let s = setup(
            data,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . FILTER NOT EXISTS { ?x ex:banned ?r } }",
        );
        assert_eq!(s.len(), 2, "bob is excluded");
        // double negation sanity: only bob has a ban
        let s = setup(
            data,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . FILTER NOT EXISTS { ?x a ex:Person } }",
        );
        assert!(s.is_empty(), "self-contradictory filter removes everything");
        // NOT EXISTS with a join inside
        let s = setup(
            data,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:Person . FILTER NOT EXISTS { ?x ex:banned ex:forever } }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bgp_has_match_with_partial_bindings() {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(DATA, &mut dict, &mut g).unwrap();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ?y }",
            &mut dict,
        )
        .unwrap();
        let anne = dict.get_iri_id("http://ex/anne").unwrap();
        let bob = dict.get_iri_id("http://ex/bob").unwrap();
        // ?x bound to anne: a friendship edge exists
        assert!(bgp_has_match(&g, &q.bgps[0], &[Some(anne), None]));
        // ?x bound to bob: bob knows but has no hasFriend edge
        assert!(!bgp_has_match(&g, &q.bgps[0], &[Some(bob), None]));
        // unbound: some edge exists
        assert!(bgp_has_match(&g, &q.bgps[0], &[None, None]));
    }

    #[test]
    fn variable_to_variable_filter() {
        let data = r#"
            @prefix ex: <http://ex/> .
            ex:a ex:age 10 . ex:a ex:limit 20 .
            ex:b ex:age 30 . ex:b ex:limit 25 .
        "#;
        let (s, d) = finalized(
            data,
            "PREFIX ex: <http://ex/> SELECT ?x ?a ?l WHERE { ?x ex:age ?a . ?x ex:limit ?l . FILTER (?a < ?l) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            d.decode(s.rows[0][0]).unwrap().as_iri(),
            Some("http://ex/a")
        );
    }

    #[test]
    fn finalize_without_modifiers_is_identity() {
        let (s, _) = finalized(
            AGES,
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:age ?a }",
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn compare_terms_semantics() {
        use rdf_model::Literal;
        let int = |n: &str| Term::Literal(Literal::typed(n, vocab::XSD_INTEGER));
        let dec = |n: &str| Term::Literal(Literal::typed(n, vocab::XSD_DECIMAL));
        assert_eq!(compare_terms(&int("9"), &int("31")), Ordering::Less);
        assert_eq!(
            compare_terms(&int("10"), &dec("9.5")),
            Ordering::Greater,
            "cross-type numeric"
        );
        assert_eq!(
            compare_terms(&Term::iri("a"), &Term::literal("a")),
            Ordering::Less,
            "IRI before literal"
        );
        assert_eq!(
            compare_terms(&Term::literal("a"), &Term::blank("a")),
            Ordering::Less
        );
        assert_eq!(compare_terms(&int("5"), &int("5")), Ordering::Equal);
    }

    #[test]
    fn solutions_helpers() {
        let s = setup(
            DATA,
            "PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:hasFriend ?y }",
        );
        assert_eq!(s.sorted_rows().len(), 3);
        assert_eq!(s.as_set().len(), 3);
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        parse_turtle(DATA, &mut dict, &mut g).unwrap();
        let q = parse_query(
            "PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:hasFriend ex:marie }",
            &mut dict,
        )
        .unwrap();
        let strings = evaluate(&g, &q).to_strings(&dict);
        assert_eq!(strings, vec!["?x=<http://ex/anne>"]);
    }
}
