//! Interval (LiteMat-style) evaluation of hierarchy queries.
//!
//! Reformulation turns "`?x` is a `C` *or any subclass*" into one union
//! branch per subclass; [`crate::evaluate_union`] then has to trie-share
//! hundreds of near-identical branches back together. With a
//! [`rdf_model::IntervalDict`] sidecar the same semantic disjunction is a
//! single **range-scan atom**: a triple-pattern position holding an
//! interval set instead of a constant, matched either by enumerating the
//! interval's members off the dense reverse array (one contiguous walk
//! per run) or by filter-scanning a wildcard probe with an O(1)
//! interval-containment test per triple. This module defines the
//! range-atom query shape ([`IntervalQuery`]) and its evaluator.
//!
//! The rewriting that *produces* an [`IntervalQuery`] lives in the
//! `reformulation` crate (it needs the schema); this module only needs
//! the finished ranges, so a range position never binds a variable — it
//! restricts which triples match, exactly like a constant would, but for
//! a whole subtree at once.

use crate::ast::{Query, Variable};
use crate::eval::{passes_negation, Solutions};
use crate::plan::DistinctCounts;
use crate::union_eval::{EvalStats, UnionEvalError};
use obs::CancelToken;
use rdf_model::{Graph, IntervalDict, IntervalSet, Pattern, TermId, Triple, WorkerPanicked};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// One projected answer row.
type Row = Vec<TermId>;

/// A position of a range-scan atom: a variable, a constant, or a
/// hierarchy interval (an index into the owning query's range table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RTerm {
    /// A named variable of the original query.
    Var(Variable),
    /// A dictionary-encoded constant.
    Const(TermId),
    /// An interval set: matches any term whose interval id falls inside.
    /// Never binds a variable.
    Range(u16),
}

impl RTerm {
    /// The range-table index, if this position holds a range.
    pub fn as_range(self) -> Option<u16> {
        match self {
            RTerm::Range(r) => Some(r),
            _ => None,
        }
    }
}

/// One range-scan triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeAtom {
    /// Subject position.
    pub s: RTerm,
    /// Property position.
    pub p: RTerm,
    /// Object position.
    pub o: RTerm,
}

impl RangeAtom {
    /// The three positions in s/p/o order.
    pub fn positions(&self) -> [RTerm; 3] {
        [self.s, self.p, self.o]
    }

    /// The variables of this atom, possibly repeated.
    pub fn variables(&self) -> SmallVec<[Variable; 3]> {
        self.positions()
            .iter()
            .filter_map(|t| match t {
                RTerm::Var(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Whether any position holds a range.
    pub fn has_range(&self) -> bool {
        self.positions()
            .iter()
            .any(|t| matches!(t, RTerm::Range(_)))
    }
}

/// One conjunctive branch of range atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeBgp {
    /// The conjuncts.
    pub atoms: Vec<RangeAtom>,
}

/// An interval-rewritten query: the original query's projection and
/// modifiers, a (small) union of range-atom branches, the interval sets
/// they reference, and the [`IntervalDict`] that gives the sets meaning.
#[derive(Debug, Clone)]
pub struct IntervalQuery {
    /// The source query (projection, variable names, `DISTINCT`, filters,
    /// negation, modifiers — all carried through like `reformulate`).
    pub query: Query,
    /// The union of range-atom branches.
    pub branches: Vec<RangeBgp>,
    /// The interval sets referenced by [`RTerm::Range`] indices.
    pub ranges: Vec<IntervalSet>,
    /// How many branches the classical union reformulation would hold.
    pub union_branches: usize,
    /// `union_branches` minus `branches.len()`: hierarchy unions replaced
    /// by range scans.
    pub branches_collapsed: usize,
    /// The interval encoding the ranges index into.
    pub dict: Arc<IntervalDict>,
}

impl IntervalQuery {
    /// Renders the planned shape of every branch — the golden-snapshot
    /// format of `tests/golden/planner_interval.txt`. Deterministic for a
    /// fixed graph and query.
    pub fn explain(&self, g: &Graph, dict: &rdf_model::Dictionary) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} union branches -> {} interval branches ({} collapsed, {} ranges)",
            self.union_branches,
            self.branches.len(),
            self.branches_collapsed,
            self.ranges.len(),
        );
        let dc = DistinctCounts::of(g);
        for (bi, branch) in self.branches.iter().enumerate() {
            let _ = writeln!(out, "branch {bi}:");
            let order = plan_branch(g, &dc, self, &branch.atoms);
            for (step, &i) in order.iter().enumerate() {
                let atom = &branch.atoms[i];
                let est = estimate_atom(g, &dc, self, atom, &FxHashSet::default());
                let pos = |t: RTerm| -> String {
                    match t {
                        RTerm::Var(v) => format!("?{}", self.query.var_name(v)),
                        RTerm::Const(id) => dict
                            .decode(id)
                            .map_or_else(|| format!("#{id}"), |tm| tm.to_string()),
                        RTerm::Range(r) => {
                            let set = &self.ranges[r as usize];
                            format!("[{} terms; {} runs]", set.len(), set.runs().len())
                        }
                    }
                };
                let _ = writeln!(
                    out,
                    "  {}. {} {} {}  est={est:.4}",
                    step + 1,
                    pos(atom.s),
                    pos(atom.p),
                    pos(atom.o),
                );
            }
        }
        out
    }
}

/// Estimated matches of a range atom: the exact index count of the
/// constant skeleton (ranges count as wildcards), discounted per
/// bound-variable position like the union planner, and scaled by the
/// fraction of the position's distinct values a range admits.
fn estimate_atom(
    g: &Graph,
    dc: &DistinctCounts,
    iq: &IntervalQuery,
    atom: &RangeAtom,
    bound: &FxHashSet<Variable>,
) -> f64 {
    let as_const = |t: RTerm| match t {
        RTerm::Const(c) => Some(c),
        _ => None,
    };
    let skeleton = Pattern::new(as_const(atom.s), as_const(atom.p), as_const(atom.o));
    let mut est = g.count(&skeleton) as f64;
    for (t, v_count) in [
        (atom.s, dc.subjects),
        (atom.p, dc.properties),
        (atom.o, dc.objects),
    ] {
        match t {
            RTerm::Var(v) if bound.contains(&v) => est /= v_count,
            RTerm::Range(r) => {
                let fraction = iq.ranges[r as usize].len() as f64 / v_count;
                est *= fraction.min(1.0);
            }
            _ => {}
        }
    }
    est
}

/// Greedy join order for one branch, mirroring `plan_bgp_with`: prefer
/// atoms connected to the bound variables (or ground / range-only atoms),
/// cheapest estimate first.
fn plan_branch(
    g: &Graph,
    dc: &DistinctCounts,
    iq: &IntervalQuery,
    atoms: &[RangeAtom],
) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound: FxHashSet<Variable> = FxHashSet::default();
    while !remaining.is_empty() {
        let mut candidates: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let vars = atoms[i].variables();
                vars.is_empty() || vars.iter().any(|v| bound.contains(v)) || bound.is_empty()
            })
            .collect();
        if candidates.is_empty() {
            candidates.clone_from(&remaining);
        }
        let (best, _) = candidates
            .iter()
            .map(|&i| (i, estimate_atom(g, dc, iq, &atoms[i], &bound)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("candidates nonempty");
        remaining.retain(|&i| i != best);
        for v in atoms[best].variables() {
            bound.insert(v);
        }
        order.push(best);
    }
    order
}

/// Binds the variables of `atom` against a matched triple; constant and
/// range positions were already enforced by the probe and its containment
/// checks. Returns `false` on a repeated-variable clash; `touched` lists
/// the variables to unbind afterwards.
fn bind_range(
    atom: &RangeAtom,
    t: &Triple,
    binding: &mut [Option<TermId>],
    touched: &mut SmallVec<[Variable; 3]>,
) -> bool {
    for (rt, value) in [(atom.s, t.s), (atom.p, t.p), (atom.o, t.o)] {
        if let RTerm::Var(v) = rt {
            match binding[v.index()] {
                Some(bound) => {
                    if bound != value {
                        return false;
                    }
                }
                None => {
                    binding[v.index()] = Some(value);
                    touched.push(v);
                }
            }
        }
    }
    true
}

/// Index-nested-loop evaluation of one branch's atoms in planned order.
///
/// At each range atom the probe mode is chosen from live cardinalities:
/// **member-enumerate** walks the interval's reverse array and probes once
/// per member (cheap for small subtrees against big scans), while
/// **filter-scan** probes the wildcard pattern once and keeps only triples
/// whose term falls inside the interval (cheap for big subtrees). An atom
/// with several range positions drives the smallest one and filter-checks
/// the rest.
fn eval_rec(
    g: &Graph,
    iq: &IntervalQuery,
    atoms: &[RangeAtom],
    idx: usize,
    binding: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&mut Vec<Option<TermId>>),
) {
    if idx == atoms.len() {
        emit(binding);
        return;
    }
    let atom = &atoms[idx];
    let mut probe = [None; 3];
    let mut range_positions: SmallVec<[(usize, &IntervalSet); 2]> = SmallVec::new();
    for (i, rt) in atom.positions().into_iter().enumerate() {
        match rt {
            RTerm::Var(v) => probe[i] = binding[v.index()],
            RTerm::Const(c) => probe[i] = Some(c),
            RTerm::Range(r) => range_positions.push((i, &iq.ranges[r as usize])),
        }
    }
    let pattern = |probe: &[Option<TermId>; 3]| Pattern::new(probe[0], probe[1], probe[2]);

    // Pick the driving range (smallest member count) if enumerating it
    // beats the wildcard scan.
    let driver = range_positions
        .iter()
        .enumerate()
        .min_by_key(|(_, (_, set))| set.len())
        .map(|(k, _)| k);
    let enumerate = driver.is_some_and(|k| {
        let wildcard = g.count(&pattern(&probe));
        range_positions[k].1.len() < wildcard
    });

    let mut step = |t: &Triple, binding: &mut Vec<Option<TermId>>| {
        let mut touched: SmallVec<[Variable; 3]> = SmallVec::new();
        if bind_range(atom, t, binding, &mut touched) {
            eval_rec(g, iq, atoms, idx + 1, binding, emit);
        }
        for v in touched {
            binding[v.index()] = None;
        }
    };

    if enumerate {
        let k = driver.expect("enumerate implies a driver");
        let (pos, set) = range_positions[k];
        let checks: SmallVec<[(usize, &IntervalSet); 2]> = range_positions
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .map(|(_, &c)| c)
            .collect();
        let mut probe = probe;
        for member in iq.dict.members(set) {
            probe[pos] = Some(member);
            g.for_each_match(&pattern(&probe), |t| {
                let values = [t.s, t.p, t.o];
                if checks
                    .iter()
                    .all(|&(j, set)| iq.dict.contains(set, values[j]))
                {
                    step(&t, binding);
                }
            });
        }
    } else {
        g.for_each_match(&pattern(&probe), |t| {
            let values = [t.s, t.p, t.o];
            if range_positions
                .iter()
                .all(|&(j, set)| iq.dict.contains(set, values[j]))
            {
                step(&t, binding);
            }
        });
    }
}

/// Evaluates one worker's chunk of planned branches, deduplicating its
/// own rows under `DISTINCT`. `None` means the cancel token tripped.
fn run_chunk(
    g: &Graph,
    iq: &IntervalQuery,
    branches: &[Vec<RangeAtom>],
    cancel: &CancelToken,
) -> Option<Vec<Row>> {
    let q = &iq.query;
    let mut rows: Vec<Row> = Vec::new();
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut binding: Vec<Option<TermId>> = vec![None; q.var_names.len()];
    for atoms in branches {
        if cancel.is_cancelled() {
            return None;
        }
        let mut emit = |binding: &mut Vec<Option<TermId>>| {
            if !passes_negation(g, q, binding) {
                return;
            }
            let row: Row = q
                .projection
                .iter()
                .map(|v| binding[v.index()].expect("projected variable bound"))
                .collect();
            if q.distinct {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            } else {
                rows.push(row);
            }
        };
        eval_rec(g, iq, atoms, 0, &mut binding, &mut emit);
    }
    Some(rows)
}

/// Mirrors a finished interval evaluation's stats into the registry under
/// the `sparql.range.*` names.
fn publish_stats(reg: &obs::Registry, stats: &EvalStats) {
    if !reg.is_enabled() {
        return;
    }
    reg.add("sparql.range.queries", 1);
    reg.add("sparql.range.branches_total", stats.branches_total as u64);
    reg.add("sparql.range.branches_pruned", stats.branches_pruned as u64);
    reg.add("sparql.range.scans", stats.range_scans);
    reg.add(
        "sparql.range.branches_collapsed",
        stats.branches_collapsed as u64,
    );
    reg.add("sparql.range.rows", stats.rows as u64);
    reg.add("sparql.range.workers", stats.threads as u64);
}

/// Evaluates an interval query with up to `threads` workers, falling back
/// to a single-threaded re-run if a worker panics (mirrors
/// [`crate::evaluate_union`]).
pub fn evaluate_interval(
    g: &Graph,
    iq: &IntervalQuery,
    threads: NonZeroUsize,
) -> (Solutions, EvalStats) {
    match try_evaluate_interval(g, iq, threads) {
        Ok(result) => result,
        Err(_) => try_evaluate_interval(g, iq, NonZeroUsize::MIN)
            .expect("single-threaded interval evaluation spawns no workers"),
    }
}

/// [`evaluate_interval`] surfacing a worker panic instead of falling back.
pub fn try_evaluate_interval(
    g: &Graph,
    iq: &IntervalQuery,
    threads: NonZeroUsize,
) -> Result<(Solutions, EvalStats), WorkerPanicked> {
    match try_evaluate_interval_cancel(g, iq, threads, &CancelToken::none()) {
        Ok(r) => Ok(r),
        Err(UnionEvalError::Worker(w)) => Err(w),
        Err(UnionEvalError::Cancelled) => {
            unreachable!("a CancelToken::none() evaluation never cancels")
        }
    }
}

/// [`try_evaluate_interval`] with cooperative cancellation, polled at
/// branch boundaries inside every worker. Returns the same answer set as
/// evaluating the classical union reformulation (and the same bag for the
/// deduplicated branch lists the interval rewriter emits).
pub fn try_evaluate_interval_cancel(
    g: &Graph,
    iq: &IntervalQuery,
    threads: NonZeroUsize,
    cancel: &CancelToken,
) -> Result<(Solutions, EvalStats), UnionEvalError> {
    let reg = obs::global();
    let _total_span = reg.span("sparql.range.total");
    let eval_start = Instant::now();
    let q = &iq.query;
    let mut stats = EvalStats {
        branches_total: iq.branches.len(),
        branches_collapsed: iq.branches_collapsed,
        ..EvalStats::default()
    };

    // Plan every branch once (one distinct-counts pass for the union).
    let dc = DistinctCounts::of(g);
    let mut branches: Vec<Vec<RangeAtom>> = Vec::with_capacity(iq.branches.len());
    for branch in &iq.branches {
        if cancel.is_cancelled() {
            reg.add("sparql.range.cancelled", 1);
            return Err(UnionEvalError::Cancelled);
        }
        let vars: FxHashSet<Variable> = branch.atoms.iter().flat_map(|a| a.variables()).collect();
        if !q.projection.iter().all(|v| vars.contains(v)) {
            stats.branches_pruned += 1;
            continue;
        }
        let order = plan_branch(g, &dc, iq, &branch.atoms);
        let seq: Vec<RangeAtom> = order.iter().map(|&i| branch.atoms[i]).collect();
        stats.patterns_total += seq.len();
        stats.range_scans += seq.iter().filter(|a| a.has_range()).count() as u64;
        branches.push(seq);
    }
    branches.sort();

    let workers = threads.get().min(branches.len()).max(1);
    stats.threads = workers;

    let maybe_outputs: Vec<Option<Vec<Row>>> = if workers <= 1 {
        vec![run_chunk(g, iq, &branches, cancel)]
    } else {
        let per = branches.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = branches
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| run_chunk(g, iq, chunk, cancel))).map_err(
                            |payload| WorkerPanicked::from_payload("sparql.range.worker", payload),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caught-panic worker never unwinds"))
                .collect::<Result<Vec<_>, _>>()
        })
        .map_err(UnionEvalError::Worker)?
    };
    let outputs: Vec<Vec<Row>> = match maybe_outputs.into_iter().collect() {
        Some(outputs) => outputs,
        None => {
            reg.add("sparql.range.cancelled", 1);
            return Err(UnionEvalError::Cancelled);
        }
    };
    stats.eval_us = eval_start.elapsed().as_micros() as u64;

    // Merge: workers deduplicated their own rows, so `DISTINCT` only has
    // to resolve duplicates across workers.
    let merge_start = Instant::now();
    let rows: Vec<Row> = if q.distinct && outputs.len() > 1 {
        let mut seen: FxHashSet<Row> = FxHashSet::default();
        let mut out = Vec::new();
        for rows in outputs {
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
        }
        out
    } else {
        outputs.into_iter().flatten().collect()
    };
    stats.merge_us = merge_start.elapsed().as_micros() as u64;
    stats.rows = rows.len();
    publish_stats(reg, &stats);

    let var_names = q
        .projection
        .iter()
        .map(|&v| q.var_name(v).to_owned())
        .collect();
    Ok((Solutions { var_names, rows }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Bgp, QTerm, TriplePattern};
    use crate::eval::evaluate;
    use rdf_model::Dictionary;

    /// A small zoo: `Cat ⊑ Mammal ⊑ Animal`, typed individuals, plus a
    /// `hasPet` edge. The IntervalDict covers the class hierarchy.
    struct Fixture {
        dict: Dictionary,
        g: Graph,
        rdf_type: TermId,
        animal: TermId,
        mammal: TermId,
        cat: TermId,
        idict: Arc<IntervalDict>,
    }

    fn fixture() -> Fixture {
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        let rdf_type = dict.encode_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        let animal = dict.encode_iri("http://ex/Animal");
        let mammal = dict.encode_iri("http://ex/Mammal");
        let cat = dict.encode_iri("http://ex/Cat");
        for (name, class) in [("tom", cat), ("rex", mammal), ("nemo", animal)] {
            let s = dict.encode_iri(&format!("http://ex/{name}"));
            g.insert(Triple::new(s, rdf_type, class));
        }
        let idict = Arc::new(IntervalDict::build(&[(cat, mammal), (mammal, animal)], &[]));
        Fixture {
            dict,
            g,
            rdf_type,
            animal,
            mammal,
            cat,
            idict,
        }
    }

    /// `SELECT ?x WHERE { ?x rdf:type <range over class ∪ subclasses> }`
    fn type_query(f: &Fixture, class: TermId) -> IntervalQuery {
        let cov = f.idict.coverage(class).unwrap().clone();
        let union_branches = cov.len();
        let query = Query::conjunctive(
            vec!["x".into()],
            vec![Variable(0)],
            true,
            Bgp::new(vec![TriplePattern::new(
                QTerm::Var(Variable(0)),
                QTerm::Const(f.rdf_type),
                QTerm::Const(class),
            )]),
        );
        IntervalQuery {
            query,
            branches: vec![RangeBgp {
                atoms: vec![RangeAtom {
                    s: RTerm::Var(Variable(0)),
                    p: RTerm::Const(f.rdf_type),
                    o: RTerm::Range(0),
                }],
            }],
            ranges: vec![cov],
            union_branches,
            branches_collapsed: union_branches - 1,
            dict: Arc::clone(&f.idict),
        }
    }

    #[test]
    fn range_atom_matches_whole_subtree() {
        let f = fixture();
        for (class, expect) in [(f.animal, 3), (f.mammal, 2), (f.cat, 1)] {
            let iq = type_query(&f, class);
            for t in [1usize, 2, 4] {
                let (sols, stats) = evaluate_interval(&f.g, &iq, NonZeroUsize::new(t).unwrap());
                assert_eq!(sols.len(), expect, "class coverage at {t} threads");
                assert_eq!(stats.range_scans, 1);
            }
        }
    }

    #[test]
    fn agrees_with_union_expansion() {
        let f = fixture();
        let iq = type_query(&f, f.animal);
        // Expand the range by hand into the classical union.
        let bgps: Vec<Bgp> = [f.animal, f.mammal, f.cat]
            .iter()
            .map(|&c| {
                Bgp::new(vec![TriplePattern::new(
                    QTerm::Var(Variable(0)),
                    QTerm::Const(f.rdf_type),
                    QTerm::Const(c),
                )])
            })
            .collect();
        let union = iq.query.with_bgps(bgps);
        let legacy = evaluate(&f.g, &union);
        let (got, stats) = evaluate_interval(&f.g, &iq, NonZeroUsize::MIN);
        assert_eq!(got.sorted_rows(), legacy.sorted_rows());
        assert_eq!(stats.branches_total, 1);
        assert_eq!(stats.branches_collapsed, 2);
    }

    #[test]
    fn filter_scan_and_enumerate_agree() {
        // Join through a range: ?x hasPet ?y . ?y rdf:type [Animal..] —
        // the driving decision differs with graph shape but the answers
        // must not.
        let mut f = fixture();
        let has_pet = f.dict.encode_iri("http://ex/hasPet");
        let anne = f.dict.encode_iri("http://ex/anne");
        let tom = f.dict.get_iri_id("http://ex/tom").unwrap();
        f.g.insert(Triple::new(anne, has_pet, tom));
        let cov = f.idict.coverage(f.animal).unwrap().clone();
        let query = Query::conjunctive(
            vec!["x".into(), "y".into()],
            vec![Variable(0)],
            true,
            Bgp::new(vec![
                TriplePattern::new(
                    QTerm::Var(Variable(0)),
                    QTerm::Const(has_pet),
                    QTerm::Var(Variable(1)),
                ),
                TriplePattern::new(
                    QTerm::Var(Variable(1)),
                    QTerm::Const(f.rdf_type),
                    QTerm::Const(f.animal),
                ),
            ]),
        );
        let iq = IntervalQuery {
            query,
            branches: vec![RangeBgp {
                atoms: vec![
                    RangeAtom {
                        s: RTerm::Var(Variable(0)),
                        p: RTerm::Const(has_pet),
                        o: RTerm::Var(Variable(1)),
                    },
                    RangeAtom {
                        s: RTerm::Var(Variable(1)),
                        p: RTerm::Const(f.rdf_type),
                        o: RTerm::Range(0),
                    },
                ],
            }],
            ranges: vec![cov],
            union_branches: 3,
            branches_collapsed: 2,
            dict: Arc::clone(&f.idict),
        };
        let (sols, _) = evaluate_interval(&f.g, &iq, NonZeroUsize::MIN);
        assert_eq!(sols.len(), 1, "anne's pet tom is an animal");
    }

    #[test]
    fn range_in_property_position() {
        // ?x [p ∪ subproperties] ?y as a single range atom.
        let mut dict = Dictionary::new();
        let mut g = Graph::new();
        let knows = dict.encode_iri("http://ex/knows");
        let friend = dict.encode_iri("http://ex/hasFriend");
        let other = dict.encode_iri("http://ex/unrelated");
        let a = dict.encode_iri("http://ex/a");
        let b = dict.encode_iri("http://ex/b");
        let c = dict.encode_iri("http://ex/c");
        g.insert(Triple::new(a, friend, b));
        g.insert(Triple::new(b, knows, c));
        g.insert(Triple::new(a, other, c));
        let idict = Arc::new(IntervalDict::build(&[(friend, knows)], &[]));
        let cov = idict.coverage(knows).unwrap().clone();
        let query = Query::conjunctive(
            vec!["x".into(), "y".into()],
            vec![Variable(0), Variable(1)],
            true,
            Bgp::new(vec![TriplePattern::new(
                QTerm::Var(Variable(0)),
                QTerm::Const(knows),
                QTerm::Var(Variable(1)),
            )]),
        );
        let iq = IntervalQuery {
            query,
            branches: vec![RangeBgp {
                atoms: vec![RangeAtom {
                    s: RTerm::Var(Variable(0)),
                    p: RTerm::Range(0),
                    o: RTerm::Var(Variable(1)),
                }],
            }],
            ranges: vec![cov],
            union_branches: 2,
            branches_collapsed: 1,
            dict: idict,
        };
        let (sols, _) = evaluate_interval(&g, &iq, NonZeroUsize::MIN);
        assert_eq!(sols.len(), 2, "knows ∪ hasFriend edges, not `unrelated`");
    }

    #[test]
    fn explain_renders_ranges() {
        let f = fixture();
        let iq = type_query(&f, f.animal);
        let text = iq.explain(&f.g, &f.dict);
        assert!(
            text.contains("3 union branches -> 1 interval branches"),
            "{text}"
        );
        assert!(text.contains("[3 terms; 1 runs]"), "{text}");
    }
}
