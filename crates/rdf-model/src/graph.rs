//! An in-memory, triple-indexed RDF graph.
//!
//! The graph maintains the three nested-map indexes
//!
//! * `SPO`: subject → property → {object}
//! * `POS`: property → object → {subject}
//! * `OSP`: object → subject → {property}
//!
//! which together answer each of the eight bound/unbound [`Pattern`] shapes
//! with a single probe chain — the classical "all access paths" layout of
//! RDF stores such as Hexastore and RDF-3X (the paper's §II-C prototypes),
//! reduced from six to three orders because RDF patterns never need a
//! *sorted* residual column here, only a set.

use crate::dictionary::TermId;
use crate::triple::{Pattern, Triple};
use rustc_hash::{FxHashMap, FxHashSet};

type Leaf = FxHashSet<TermId>;
type Index = FxHashMap<TermId, FxHashMap<TermId, Leaf>>;

/// An in-memory RDF graph over dictionary-encoded triples.
///
/// Duplicate-free by construction; `insert` and `remove` report whether the
/// graph changed. Cloning a graph deep-copies the indexes, which the
/// saturation maintenance algorithms use to snapshot states.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    spo: Index,
    pos: Index,
    osp: Index,
    /// Exact triple count per property, kept for O(1) planner cardinalities.
    p_counts: FxHashMap<TermId, usize>,
    len: usize,
}

fn index_insert(index: &mut Index, a: TermId, b: TermId, c: TermId) -> bool {
    index.entry(a).or_default().entry(b).or_default().insert(c)
}

fn index_remove(index: &mut Index, a: TermId, b: TermId, c: TermId) -> bool {
    let Some(inner) = index.get_mut(&a) else { return false };
    let Some(leaf) = inner.get_mut(&b) else { return false };
    let removed = leaf.remove(&c);
    if removed {
        if leaf.is_empty() {
            inner.remove(&b);
        }
        if inner.is_empty() {
            index.remove(&a);
        }
    }
    removed
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the graph holds no triple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !index_insert(&mut self.spo, t.s, t.p, t.o) {
            return false;
        }
        index_insert(&mut self.pos, t.p, t.o, t.s);
        index_insert(&mut self.osp, t.o, t.s, t.p);
        *self.p_counts.entry(t.p).or_insert(0) += 1;
        self.len += 1;
        true
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        if !index_remove(&mut self.spo, t.s, t.p, t.o) {
            return false;
        }
        index_remove(&mut self.pos, t.p, t.o, t.s);
        index_remove(&mut self.osp, t.o, t.s, t.p);
        match self.p_counts.get_mut(&t.p) {
            Some(c) if *c > 1 => *c -= 1,
            _ => {
                self.p_counts.remove(&t.p);
            }
        }
        self.len -= 1;
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo
            .get(&t.s)
            .and_then(|inner| inner.get(&t.p))
            .is_some_and(|leaf| leaf.contains(&t.o))
    }

    /// Removes every triple.
    pub fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
        self.p_counts.clear();
        self.len = 0;
    }

    /// Iterates over all triples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().flat_map(|(&s, inner)| {
            inner
                .iter()
                .flat_map(move |(&p, leaf)| leaf.iter().map(move |&o| Triple::new(s, p, o)))
        })
    }

    /// Calls `f` with every triple matching `pattern`, using the cheapest
    /// index for the pattern's shape.
    pub fn for_each_match(&self, pattern: &Pattern, mut f: impl FnMut(Triple)) {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                if let Some(leaf) = self.spo.get(&s).and_then(|i| i.get(&p)) {
                    for &o in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(leaf) = self.osp.get(&o).and_then(|i| i.get(&s)) {
                    for &p in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                if let Some(leaf) = self.pos.get(&p).and_then(|i| i.get(&o)) {
                    for &s in leaf {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(inner) = self.spo.get(&s) {
                    for (&p, leaf) in inner {
                        for &o in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(inner) = self.pos.get(&p) {
                    for (&o, leaf) in inner {
                        for &s in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(inner) = self.osp.get(&o) {
                    for (&s, leaf) in inner {
                        for &p in leaf {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for t in self.iter() {
                    f(t);
                }
            }
        }
    }

    /// Collects the triples matching `pattern`.
    pub fn matches(&self, pattern: &Pattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pattern, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pattern`.
    ///
    /// O(1) for fully-bound, `(s,p,?)`-class and `(?,p,?)` shapes; for the
    /// remaining shapes it sums leaf sizes of the relevant inner map.
    pub fn count(&self, pattern: &Pattern) -> usize {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => self.contains(&Triple::new(s, p, o)) as usize,
            (Some(s), Some(p), None) => {
                self.spo.get(&s).and_then(|i| i.get(&p)).map_or(0, Leaf::len)
            }
            (Some(s), None, Some(o)) => {
                self.osp.get(&o).and_then(|i| i.get(&s)).map_or(0, Leaf::len)
            }
            (None, Some(p), Some(o)) => {
                self.pos.get(&p).and_then(|i| i.get(&o)).map_or(0, Leaf::len)
            }
            (Some(s), None, None) => {
                self.spo.get(&s).map_or(0, |i| i.values().map(Leaf::len).sum())
            }
            (None, Some(p), None) => self.p_counts.get(&p).copied().unwrap_or(0),
            (None, None, Some(o)) => {
                self.osp.get(&o).map_or(0, |i| i.values().map(Leaf::len).sum())
            }
            (None, None, None) => self.len,
        }
    }

    /// The set of objects `o` with `s p o` in the graph, if any.
    ///
    /// Hot accessor for the reasoner's specialised join loops.
    #[inline]
    pub fn objects(&self, s: TermId, p: TermId) -> Option<&FxHashSet<TermId>> {
        self.spo.get(&s).and_then(|i| i.get(&p))
    }

    /// The set of subjects `s` with `s p o` in the graph, if any.
    #[inline]
    pub fn subjects_with(&self, p: TermId, o: TermId) -> Option<&FxHashSet<TermId>> {
        self.pos.get(&p).and_then(|i| i.get(&o))
    }

    /// Iterates over `(s, o)` pairs of triples with property `p`.
    pub fn pairs_with_property(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.pos
            .get(&p)
            .into_iter()
            .flat_map(|inner| inner.iter().flat_map(|(&o, leaf)| leaf.iter().map(move |&s| (s, o))))
    }

    /// Distinct subjects appearing in the graph.
    pub fn subjects(&self) -> impl Iterator<Item = TermId> + '_ {
        self.spo.keys().copied()
    }

    /// Distinct properties appearing in the graph.
    pub fn properties(&self) -> impl Iterator<Item = TermId> + '_ {
        self.pos.keys().copied()
    }

    /// Distinct objects appearing in the graph.
    pub fn objects_iter(&self) -> impl Iterator<Item = TermId> + '_ {
        self.osp.keys().copied()
    }

    /// Number of distinct properties.
    pub fn property_count(&self) -> usize {
        self.pos.len()
    }

    /// True if `other` contains every triple of `self`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.len <= other.len && self.iter().all(|t| other.contains(&t))
    }

    /// Inserts every triple yielded by the iterator; returns how many were new.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        triples.into_iter().filter(|&t| self.insert(t)).count()
    }

    /// The triples of `self` absent from `other`, i.e. set difference.
    pub fn difference(&self, other: &Graph) -> Vec<Triple> {
        self.iter().filter(|t| !other.contains(t)).collect()
    }
}

impl PartialEq for Graph {
    /// Two graphs are equal when they hold the same triple set.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        Graph::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> TermId {
        TermId::from_index(i)
    }

    fn t(s: usize, p: usize, o: usize) -> Triple {
        Triple::new(id(s), id(p), id(o))
    }

    fn sample() -> Graph {
        [t(1, 10, 2), t(1, 10, 3), t(2, 10, 3), t(1, 11, 2), t(4, 12, 1)].into_iter().collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut g = Graph::new();
        assert!(g.insert(t(1, 2, 3)));
        assert!(!g.insert(t(1, 2, 3)), "duplicate insert reports false");
        assert_eq!(g.len(), 1);
        assert!(g.contains(&t(1, 2, 3)));
        assert!(!g.contains(&t(3, 2, 1)));
        assert!(g.remove(&t(1, 2, 3)));
        assert!(!g.remove(&t(1, 2, 3)), "double remove reports false");
        assert!(g.is_empty());
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let g = sample();
        let m = |s: Option<usize>, p: Option<usize>, o: Option<usize>| {
            let mut v = g.matches(&Pattern::new(
                s.map(id),
                p.map(id),
                o.map(id),
            ));
            v.sort();
            v
        };
        assert_eq!(m(Some(1), Some(10), Some(2)), vec![t(1, 10, 2)]);
        assert_eq!(m(Some(1), Some(10), None), vec![t(1, 10, 2), t(1, 10, 3)]);
        assert_eq!(m(Some(1), None, Some(2)), vec![t(1, 10, 2), t(1, 11, 2)]);
        assert_eq!(m(None, Some(10), Some(3)), vec![t(1, 10, 3), t(2, 10, 3)]);
        assert_eq!(m(Some(1), None, None), vec![t(1, 10, 2), t(1, 10, 3), t(1, 11, 2)]);
        assert_eq!(m(None, Some(10), None), vec![t(1, 10, 2), t(1, 10, 3), t(2, 10, 3)]);
        assert_eq!(m(None, None, Some(3)), vec![t(1, 10, 3), t(2, 10, 3)]);
        assert_eq!(m(None, None, None).len(), 5);
    }

    #[test]
    fn counts_agree_with_matches() {
        let g = sample();
        let shapes = [
            Pattern::new(Some(id(1)), Some(id(10)), Some(id(2))),
            Pattern::new(Some(id(1)), Some(id(10)), None),
            Pattern::new(Some(id(1)), None, Some(id(2))),
            Pattern::new(None, Some(id(10)), Some(id(3))),
            Pattern::new(Some(id(1)), None, None),
            Pattern::new(None, Some(id(10)), None),
            Pattern::new(None, None, Some(id(3))),
            Pattern::any(),
            // misses:
            Pattern::new(Some(id(99)), None, None),
            Pattern::new(None, Some(id(99)), None),
            Pattern::new(None, None, Some(id(99))),
        ];
        for p in &shapes {
            assert_eq!(g.count(p), g.matches(p).len(), "pattern {p:?}");
        }
    }

    #[test]
    fn property_counts_track_removals() {
        let mut g = sample();
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 3);
        g.remove(&t(1, 10, 2));
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 2);
        g.remove(&t(1, 10, 3));
        g.remove(&t(2, 10, 3));
        assert_eq!(g.count(&Pattern::new(None, Some(id(10)), None)), 0);
        assert!(!g.properties().any(|p| p == id(10)), "empty property pruned from index");
    }

    #[test]
    fn removal_prunes_index_keys() {
        let mut g = Graph::new();
        g.insert(t(1, 2, 3));
        g.remove(&t(1, 2, 3));
        assert_eq!(g.subjects().count(), 0);
        assert_eq!(g.properties().count(), 0);
        assert_eq!(g.objects_iter().count(), 0);
    }

    #[test]
    fn hot_accessors() {
        let g = sample();
        let objs = g.objects(id(1), id(10)).unwrap();
        assert_eq!(objs.len(), 2);
        assert!(objs.contains(&id(2)) && objs.contains(&id(3)));
        let subs = g.subjects_with(id(10), id(3)).unwrap();
        assert_eq!(subs.len(), 2);
        assert!(g.objects(id(9), id(9)).is_none());
        let mut pairs: Vec<_> = g.pairs_with_property(id(10)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(id(1), id(2)), (id(1), id(3)), (id(2), id(3))]);
    }

    #[test]
    fn graph_equality_ignores_insertion_order() {
        let a: Graph = [t(1, 2, 3), t(4, 5, 6)].into_iter().collect();
        let b: Graph = [t(4, 5, 6), t(1, 2, 3)].into_iter().collect();
        assert_eq!(a, b);
        let c: Graph = [t(1, 2, 3)].into_iter().collect();
        assert_ne!(a, c);
        assert!(c.is_subgraph_of(&a));
        assert!(!a.is_subgraph_of(&c));
    }

    #[test]
    fn difference() {
        let a = sample();
        let mut b = sample();
        b.remove(&t(4, 12, 1));
        let mut d = a.difference(&b);
        d.sort();
        assert_eq!(d, vec![t(4, 12, 1)]);
        assert!(b.difference(&a).is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = sample();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
        assert_eq!(g.count(&Pattern::any()), 0);
        assert!(g.insert(t(1, 10, 2)));
        assert_eq!(g.len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(Triple),
            Remove(Triple),
        }

        fn arb_triple() -> impl Strategy<Value = Triple> {
            (0usize..12, 0usize..6, 0usize..12).prop_map(|(s, p, o)| t(s, p, o))
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![arb_triple().prop_map(Op::Insert), arb_triple().prop_map(Op::Remove)],
                0..200,
            )
        }

        proptest! {
            /// The indexed graph behaves exactly like a plain set of triples
            /// under arbitrary insert/remove streams, for every pattern shape.
            #[test]
            fn graph_matches_set_model(ops in arb_ops()) {
                let mut g = Graph::new();
                let mut model: BTreeSet<Triple> = BTreeSet::new();
                for op in ops {
                    match op {
                        Op::Insert(tr) => {
                            prop_assert_eq!(g.insert(tr), model.insert(tr));
                        }
                        Op::Remove(tr) => {
                            prop_assert_eq!(g.remove(&tr), model.remove(&tr));
                        }
                    }
                }
                prop_assert_eq!(g.len(), model.len());
                let mut all: Vec<_> = g.iter().collect();
                all.sort();
                prop_assert_eq!(all, model.iter().copied().collect::<Vec<_>>());

                // Exhaustive pattern check over the small id universe.
                for s in (0..12).map(id).map(Some).chain([None]) {
                    for p in (0..6).map(id).map(Some).chain([None]) {
                        for o in (0..12).map(id).map(Some).chain([None]) {
                            let pat = Pattern::new(s, p, o);
                            let mut got = g.matches(&pat);
                            got.sort();
                            let want: Vec<_> =
                                model.iter().copied().filter(|tr| pat.matches(tr)).collect();
                            prop_assert_eq!(&got, &want);
                            prop_assert_eq!(g.count(&pat), want.len());
                        }
                    }
                }
            }
        }
    }
}
