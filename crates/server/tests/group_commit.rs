//! Group-commit equivalence suite: N concurrent clients firing single-
//! and multi-op update scripts at a `FsyncPolicy::Always` server, with a
//! writer delay that forces jobs to pile up and drain as groups.
//!
//! Oracles:
//! * the final base graph equals the sequential application of every
//!   acknowledged op (scripts touch disjoint triples, so the union is the
//!   order-independent reference), live and after recovery;
//! * every 200 carries an epoch whose snapshot contains that script's net
//!   effect (checked through a concurrent [`StoreReader`]: published
//!   epochs are monotonic and the triples are never deleted later, so any
//!   snapshot at `>= epoch` must contain them);
//! * `durability.journal.fsyncs` and `server.update.publishes` grow by
//!   the number of *drained groups*, not the number of ops — the fsync
//!   amortization the writer claims, proven by counters.
//!
//! One `#[test]` only: the obs registry is process-global, and a second
//! test in this binary would race the counter deltas.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;
use webreason_core::{DurableStore, FsyncPolicy, MaintenanceAlgorithm, ReasoningConfig, Store};
use webreason_server::{Server, ServerConfig};

const CLIENTS: usize = 8;
const SCRIPTS_PER_CLIENT: usize = 6;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webreason-group-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout sets");
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("request writes");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("response reads");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

fn json_usize(text: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = text
        .find(&marker)
        .unwrap_or_else(|| panic!("{key} in {text}"));
    text[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn concurrent_scripts_commit_in_groups_and_equal_sequential_apply() {
    let dir = tmpdir("equivalence");
    let store = DurableStore::create(
        &dir,
        ReasoningConfig::Saturation(MaintenanceAlgorithm::Counting),
        NonZeroUsize::MIN,
        FsyncPolicy::Always,
    )
    .expect("store creates");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: CLIENTS,
        checkpoint_every: 0, // keep the fsync ledger to update groups only
        writer_delay: Some(Duration::from_millis(25)),
        ..Default::default()
    };
    let server = Server::start(store, config).expect("server boots");
    let addr = server.local_addr();
    let reader = server.reader();

    let reg = obs::global();
    let fsyncs0 = reg.counter_value("durability.journal.fsyncs");
    let groups0 = reg.counter_value("server.update.groups");
    let publishes0 = reg.counter_value("server.update.publishes");

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let reader = reader.clone();
            std::thread::spawn(move || {
                for i in 0..SCRIPTS_PER_CLIENT {
                    // Even scripts: one insert. Odd scripts: multi-op with
                    // an insert-then-delete pair that must net to absent.
                    let body = if i % 2 == 0 {
                        format!("insert <http://ex/c{c}i{i}> <http://ex/p> <http://ex/o> .\n")
                    } else {
                        format!(
                            "insert <http://ex/c{c}i{i}> <http://ex/p> <http://ex/o> .\n\
                             insert <http://ex/c{c}i{i}-ghost> <http://ex/p> <http://ex/o> .\n\
                             delete <http://ex/c{c}i{i}-ghost> <http://ex/p> <http://ex/o> .\n"
                        )
                    };
                    let (status, text) = post(addr, "/update", &body);
                    assert_eq!(status, 200, "{text}");
                    let acked_epoch = json_usize(&text, "epoch");
                    // The 200's epoch must identify a snapshot containing
                    // the script's effect: published epochs are monotonic
                    // and nothing ever deletes this triple, so the current
                    // snapshot (>= acked_epoch) must hold it.
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= acked_epoch,
                        "published {} < acked {acked_epoch}",
                        snap.epoch()
                    );
                    let q = format!(
                        "PREFIX ex: <http://ex/> SELECT ?o WHERE {{ ex:c{c}i{i} ex:p ?o }}"
                    );
                    let (sols, _, epoch) = reader.answer_sparql(&q).expect("query answers");
                    assert!(epoch >= acked_epoch);
                    assert_eq!(sols.len(), 1, "acked effect visible at epoch {epoch}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let total_scripts = (CLIENTS * SCRIPTS_PER_CLIENT) as u64;
    let fsyncs = reg.counter_value("durability.journal.fsyncs") - fsyncs0;
    let groups = reg.counter_value("server.update.groups") - groups0;
    let publishes = reg.counter_value("server.update.publishes") - publishes0;
    // One fsync and one publish per drained group — not per script, and
    // with 8 concurrent closed-loop writers the writer must actually have
    // grouped (strictly fewer groups than scripts).
    assert_eq!(fsyncs, groups, "exactly one fsync per drained group");
    assert_eq!(publishes, groups, "exactly one publish per drained group");
    assert!(
        groups < total_scripts,
        "no grouping happened: {groups} groups for {total_scripts} scripts"
    );
    assert_eq!(
        reg.counter_value("server.update.applied"),
        reg.counter_value("server.update.enqueued"),
        "every enqueued script was applied"
    );

    // Final state equals the sequential application of all acked ops:
    // every c{c}i{i} triple present, every ghost absent — live and
    // recovered.
    let store = server.shutdown();
    assert_eq!(
        store.stats().base_triples,
        CLIENTS * SCRIPTS_PER_CLIENT,
        "each acked script nets exactly one triple"
    );
    let ghosts = store
        .store()
        .export_ntriples()
        .lines()
        .filter(|l| l.contains("ghost"))
        .count();
    assert_eq!(ghosts, 0, "insert-then-delete netted to absent");
    let rec = Store::recover(&dir).expect("recovers");
    assert_eq!(rec.export_ntriples(), store.store().export_ntriples());
}
