//! Deterministic harness for the per-connection state machine: every
//! lifecycle the reactor relies on, driven with scripted readable /
//! writable / EOF sequences and an explicit clock — no sockets, no
//! threads, no sleeps. This is where the protocol corner cases live;
//! `server_integration.rs` only has to prove the reactor wires the same
//! machine to real sockets.

mod common;

use common::ScriptedIo;
use webreason_server::conn::{ConnState, Connection};
use webreason_server::http::{write_response, Limits, Request};

const IDLE_MS: u64 = 100;

fn new_conn(now: u64) -> Connection {
    Connection::new(Limits::default(), IDLE_MS, now)
}

/// A pure stand-in for the dispatch layer: the response identifies the
/// request it answered, so tests can assert ordering byte-for-byte.
fn canned(req: &Request) -> Vec<u8> {
    let body = format!(
        "{} {} [{}]",
        req.method,
        req.target,
        String::from_utf8_lossy(&req.body)
    );
    write_response(200, "OK", "text/plain", &[], body.as_bytes())
}

const GET_HEALTH: &[u8] = b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n";

#[test]
fn request_response_then_keep_alive_reuse() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    assert_eq!(conn.state(), ConnState::ReadingHead);
    assert!(conn.wants_read() && !conn.wants_write());

    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 10).expect("one request");
    assert_eq!(req.path(), "/health");
    assert_eq!(conn.state(), ConnState::Dispatched);
    assert!(!conn.wants_read(), "serial dispatch: reads pause");

    let resp = canned(&req);
    assert!(conn.on_response(resp.clone(), false, &mut io, 20).is_none());
    assert_eq!(conn.state(), ConnState::KeepAlive);
    assert_eq!(io.written, resp);
    assert!(conn.wants_read(), "idle connection awaits the next request");

    // Reuse: a second request on the same connection.
    io.push_data(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    let req2 = conn.on_readable(&mut io, 150).expect("second request");
    assert_eq!(req2.path(), "/metrics");
    conn.on_response(canned(&req2), false, &mut io, 160);
    assert_eq!(conn.served(), 2);
    assert_eq!(conn.state(), ConnState::KeepAlive);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);

    // Two requests in one read: serial dispatch hands out the first,
    // buffers the second until the first response is queued.
    let mut doc = GET_HEALTH.to_vec();
    doc.extend_from_slice(b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nq2");
    io.push_data(&doc);

    let r1 = conn.on_readable(&mut io, 0).expect("first request");
    assert_eq!(r1.path(), "/health");
    let resp1 = canned(&r1);
    let r2 = conn
        .on_response(resp1.clone(), false, &mut io, 5)
        .expect("pipelined follow-up dispatches after the response");
    assert_eq!(r2.path(), "/query");
    assert_eq!(r2.body, b"q2");
    let resp2 = canned(&r2);
    assert!(conn.on_response(resp2.clone(), false, &mut io, 9).is_none());

    let mut expect = resp1;
    expect.extend_from_slice(&resp2);
    assert_eq!(io.written, expect, "responses in request order");
    assert_eq!(conn.state(), ConnState::KeepAlive);
}

#[test]
fn partial_writes_park_then_resume_on_writability() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");

    // The "socket" accepts 5 bytes, then blocks.
    let resp = canned(&req);
    io.cap_next_write(5);
    io.default_write = Some(0);
    assert!(conn.on_response(resp.clone(), false, &mut io, 10).is_none());
    assert_eq!(conn.state(), ConnState::Writing);
    assert!(conn.wants_write(), "partial write registers write interest");
    assert_eq!(io.written.len(), 5);

    // Writability: 7 more bytes land, still short.
    io.cap_next_write(7);
    assert!(conn.on_writable(&mut io, 20).is_none());
    assert_eq!(io.written.len(), 12);
    assert!(conn.wants_write());

    // Finally the socket drains fully.
    io.default_write = None;
    assert!(conn.on_writable(&mut io, 30).is_none());
    assert_eq!(io.written, resp, "resumed writes reassemble the response");
    assert_eq!(conn.state(), ConnState::KeepAlive);
    assert!(!conn.wants_write());
}

#[test]
fn half_close_after_a_full_request_still_gets_its_response() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    io.push_eof(); // client shuts down its write side right away

    let req = conn.on_readable(&mut io, 0).expect("request parsed");
    let resp = canned(&req);
    conn.on_response(resp.clone(), false, &mut io, 5);
    assert_eq!(io.written, resp, "half-close does not lose the response");

    // The next readability event observes the EOF and closes.
    assert!(conn.on_readable(&mut io, 10).is_none());
    assert!(conn.is_closed());
}

#[test]
fn eof_mid_request_closes_without_a_response() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(b"POST /query HTTP/1.1\r\nContent-Le");
    io.push_eof();
    assert!(conn.on_readable(&mut io, 0).is_none());
    assert!(conn.is_closed(), "a truncated request can never complete");
    assert!(io.written.is_empty());
}

#[test]
fn head_limit_breached_mid_read_gets_431_and_close() {
    let mut io = ScriptedIo::new();
    let limits = Limits {
        max_head_bytes: 64,
        ..Limits::default()
    };
    let mut conn = Connection::new(limits, IDLE_MS, 0);

    // The head arrives in fragments and blows the cap before CRLFCRLF.
    io.push_data(b"GET /");
    io.push_data("x".repeat(80).as_bytes());
    assert!(conn.on_readable(&mut io, 0).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 431"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert!(conn.is_closed());
}

#[test]
fn body_limit_breached_mid_read_gets_413() {
    let mut io = ScriptedIo::new();
    let limits = Limits {
        max_body_bytes: 16,
        ..Limits::default()
    };
    let mut conn = Connection::new(limits, IDLE_MS, 0);
    io.push_data(b"POST /query HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
    assert!(conn.on_readable(&mut io, 0).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 413"), "{text}");
    assert!(conn.is_closed());
}

#[test]
fn garbage_gets_400_and_close() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(b"NONSENSE\r\n\r\n");
    assert!(conn.on_readable(&mut io, 0).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert!(conn.is_closed());
}

#[test]
fn pipelined_garbage_after_a_valid_request_flushes_both_responses() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    let mut doc = GET_HEALTH.to_vec();
    doc.extend_from_slice(b"GARBAGE\r\n\r\n");
    io.push_data(&doc);

    let req = conn.on_readable(&mut io, 0).expect("valid first request");
    let resp = canned(&req);
    assert!(conn.on_response(resp.clone(), false, &mut io, 5).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("HTTP/1.1 400"), "{text}");
    assert!(conn.is_closed(), "framing errors are unrecoverable");
}

#[test]
fn connection_close_header_closes_after_the_response() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
    let req = conn.on_readable(&mut io, 0).expect("request");
    assert!(conn.on_response(canned(&req), false, &mut io, 5).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.contains("Connection: close"), "{text}");
    assert!(conn.is_closed());
}

// --- phase deadlines (the slowloris defence) ---------------------------

#[test]
fn read_phase_deadline_does_not_slide_on_trickled_bytes() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    assert_eq!(conn.deadline_ms(), Some(IDLE_MS));

    // A slowloris sender trickles one byte at a time. The deadline was
    // armed when the phase began; progress must NOT refresh it.
    for (i, t) in [(0usize, 30u64), (1, 60), (2, 90), (3, 99)] {
        io.push_data(&b"GET "[i..i + 1]);
        assert!(conn.on_readable(&mut io, t).is_none());
        assert_eq!(
            conn.deadline_ms(),
            Some(IDLE_MS),
            "deadline slid after byte {i} at t={t}"
        );
    }
}

#[test]
fn keep_alive_phase_rearms_once_per_request() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 10).expect("request");
    conn.on_response(canned(&req), false, &mut io, 40);
    // Idle phase armed at response completion.
    assert_eq!(conn.deadline_ms(), Some(40 + IDLE_MS));

    // First byte of the next request re-arms once…
    io.push_data(b"GET");
    conn.on_readable(&mut io, 120);
    assert_eq!(conn.deadline_ms(), Some(120 + IDLE_MS));
    // …and later bytes of the same request do not.
    io.push_data(b" /health HT");
    conn.on_readable(&mut io, 219);
    assert_eq!(conn.deadline_ms(), Some(120 + IDLE_MS));
}

#[test]
fn write_phase_deadline_is_fixed_while_a_reader_stalls() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");

    io.cap_next_write(1);
    io.default_write = Some(0);
    conn.on_response(canned(&req), false, &mut io, 10);
    assert_eq!(conn.deadline_ms(), Some(10 + IDLE_MS));

    // A stalled reader accepts one byte per writability event: progress,
    // but the phase deadline holds — this connection gets reaped.
    for t in [40, 70, 100] {
        io.cap_next_write(1);
        assert!(conn.on_writable(&mut io, t).is_none());
        assert_eq!(conn.deadline_ms(), Some(10 + IDLE_MS), "slid at t={t}");
    }
}

#[test]
fn dispatched_requests_have_no_deadline() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");
    assert_eq!(conn.state(), ConnState::Dispatched);
    assert_eq!(
        conn.deadline_ms(),
        None,
        "server-side latency must never reap a well-behaved client"
    );
    conn.on_response(canned(&req), false, &mut io, 5);
    assert!(conn.deadline_ms().is_some(), "idle phase re-arms");
}

// --- graceful shutdown --------------------------------------------------

#[test]
fn shutdown_closes_idle_connections_immediately() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");
    conn.on_response(canned(&req), false, &mut io, 5);
    assert_eq!(conn.state(), ConnState::KeepAlive);

    conn.begin_shutdown(&mut io, 10);
    assert!(conn.is_closed());
}

#[test]
fn shutdown_503s_a_partial_request() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-prefix");
    assert!(conn.on_readable(&mut io, 0).is_none());

    conn.begin_shutdown(&mut io, 10);
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert!(conn.is_closed());
}

#[test]
fn shutdown_lets_a_dispatched_request_finish_then_closes() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");

    conn.begin_shutdown(&mut io, 5);
    assert_eq!(
        conn.state(),
        ConnState::Dispatched,
        "in-flight request drains under the shutdown contract"
    );

    // The reactor passes force_close for responses landing mid-drain.
    let resp = canned(&req);
    assert!(conn.on_response(resp, true, &mut io, 10).is_none());
    let text = String::from_utf8_lossy(&io.written);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    assert!(conn.is_closed());
}

#[test]
fn shutdown_with_nothing_buffered_closes_silently() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    conn.begin_shutdown(&mut io, 1);
    assert!(conn.is_closed());
    assert!(
        io.written.is_empty(),
        "no bytes owed to a silent connection"
    );
}

// --- interest signals the reactor keys off ------------------------------

#[test]
fn interest_tracks_the_state_machine() {
    let mut io = ScriptedIo::new();
    let mut conn = new_conn(0);
    assert!(conn.wants_read() && !conn.wants_write());

    io.push_data(GET_HEALTH);
    let req = conn.on_readable(&mut io, 0).expect("request");
    assert!(
        !conn.wants_read() && !conn.wants_write(),
        "dispatched: quiet"
    );

    io.default_write = Some(0);
    conn.on_response(canned(&req), false, &mut io, 5);
    assert!(conn.wants_write(), "blocked response: write interest");
    assert!(!conn.wants_read(), "serial: no reads while writing");

    io.default_write = None;
    conn.on_writable(&mut io, 10);
    assert!(
        conn.wants_read() && !conn.wants_write(),
        "idle: read interest"
    );
}
