//! The advisor in action — automating "the choice between these two
//! techniques, based on a quantitative evaluation of the application
//! setting" (the paper's §II-D open issue).
//!
//! Profiles a LUBM-style dataset once, then asks the advisor for a
//! recommendation across a grid of workload mixes, from read-only
//! analytics to schema-churning data integration.
//!
//! ```sh
//! cargo run --release --example dynamic_advisor
//! ```

use webreason_core::advisor::{advise, Recommendation, UpdateMix, WorkloadMix};
use webreason_core::cost::profile;
use webreason_core::threshold::{compute_thresholds, spread_orders_of_magnitude};
use webreason_core::MaintenanceAlgorithm;
use workload::lubm::{generate, queries, LubmConfig};

fn main() {
    let cfg = LubmConfig {
        departments: 3,
        students_per_department: 40,
        ..LubmConfig::default()
    };
    let mut ds = generate(&cfg);
    let named = queries(&mut ds);
    let qs: Vec<(String, sparql::Query)> = named
        .iter()
        .map(|nq| (nq.name.to_owned(), nq.query.clone()))
        .collect();

    println!(
        "profiling {} triples × {} queries…\n",
        ds.graph.len(),
        qs.len()
    );
    let prof = profile(&ds.graph, &ds.vocab, &qs, MaintenanceAlgorithm::Counting, 3);

    println!(
        "saturation: {:.1} ms; maintenance per update (counting): inst-ins {:.3} ms, \
         inst-del {:.3} ms, schema-ins {:.3} ms, schema-del {:.3} ms\n",
        prof.saturation_time * 1e3,
        prof.maintenance.instance_insert * 1e3,
        prof.maintenance.instance_delete * 1e3,
        prof.maintenance.schema_insert * 1e3,
        prof.maintenance.schema_delete * 1e3,
    );

    let thresholds = compute_thresholds(&prof);
    println!(
        "threshold spread across queries/updates: {:.1} orders of magnitude\n",
        spread_orders_of_magnitude(&thresholds)
    );

    let scenarios: [(&str, WorkloadMix); 4] = [
        (
            "read-only analytics",
            WorkloadMix {
                queries_per_update: f64::INFINITY,
                updates: UpdateMix::append_mostly(),
            },
        ),
        (
            "dashboard (1000 queries per update)",
            WorkloadMix {
                queries_per_update: 1000.0,
                updates: UpdateMix::append_mostly(),
            },
        ),
        (
            "live feed (1 query per update)",
            WorkloadMix {
                queries_per_update: 1.0,
                updates: UpdateMix::append_mostly(),
            },
        ),
        (
            "data integration (schema churn)",
            WorkloadMix {
                queries_per_update: 10.0,
                updates: UpdateMix::schema_churn(),
            },
        ),
    ];

    println!(
        "{:<38} {:>14} {:>14}   recommendation",
        "scenario", "sat €/epoch", "ref €/epoch"
    );
    for (name, mix) in scenarios {
        let advice = advise(&prof, &mix);
        println!(
            "{:<38} {:>12.3}ms {:>12.3}ms   {}",
            name,
            advice.saturation_epoch_cost * 1e3,
            advice.reformulation_epoch_cost * 1e3,
            match advice.recommendation {
                Recommendation::Saturation => "SATURATION",
                Recommendation::Reformulation => "REFORMULATION",
                Recommendation::Interval => "INTERVAL",
            }
        );
    }
    println!(
        "\nPer-query recommendations can differ — the spread is the paper's point:\n\
         \"saturation is not always the best solution … a finer-grained analysis\n\
         of the performance trade-offs involved is needed\"."
    );
}
