//! A minimal, dependency-free HTTP/1.1 request parser.
//!
//! Deliberately a *pure incremental function* over a byte buffer —
//! `parse_request(&buf)` either consumes one complete request, asks for
//! more bytes, or rejects with a typed error that maps onto a 4xx status.
//! No I/O happens here, which is what makes the parser fuzzable: the
//! proptest suite feeds it truncations, garbage splices, oversized heads
//! and broken chunked framing and asserts it never panics (mirroring
//! `rdf-io/tests/corrupt_inputs.rs`).
//!
//! Supported surface (all the embedded server needs): request line +
//! headers, `Content-Length` or `Transfer-Encoding: chunked` bodies,
//! `Connection: close`/`keep-alive`. Everything else is rejected, loudly.

use std::fmt;

/// Parser limits; every one maps to a distinct client error instead of
/// unbounded buffering.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for request line + headers (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum body bytes, after de-chunking (413 beyond this).
    pub max_body_bytes: usize,
    /// Maximum header count (431 beyond this).
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            max_headers: 64,
        }
    }
}

/// Why a request was rejected; [`HttpError::status`] maps each reason to
/// the HTTP status the server replies with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` or contains control bytes.
    BadHeader,
    /// Request line + headers exceed [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`].
    HeadTooLarge,
    /// Declared or actual body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// `Content-Length` is not a decimal number (or conflicts).
    BadContentLength,
    /// A `Transfer-Encoding` other than exactly `chunked`, or chunked
    /// *and* `Content-Length` together (request smuggling vector).
    BadTransferEncoding,
    /// Malformed chunked framing (bad size line, missing CRLF).
    BadChunk,
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion,
}

impl HttpError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedVersion => 505,
            _ => 400,
        }
    }

    /// The canonical reason phrase for [`HttpError::status`].
    pub fn reason(&self) -> &'static str {
        match self.status() {
            431 => "Request Header Fields Too Large",
            413 => "Content Too Large",
            505 => "HTTP Version Not Supported",
            _ => "Bad Request",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header",
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::BadContentLength => "invalid Content-Length",
            HttpError::BadTransferEncoding => "unsupported Transfer-Encoding",
            HttpError::BadChunk => "malformed chunked framing",
            HttpError::UnsupportedVersion => "unsupported HTTP version",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (`/query`, `/metrics?format=json`, …).
    pub target: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.0`. Persistence defaults
    /// flip with the version: 1.1 keeps the connection open unless told
    /// otherwise, 1.0 closes it unless told otherwise.
    pub http10: bool,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection closes after this request. `Connection:
    /// close` always closes and `Connection: keep-alive` always keeps;
    /// absent a header, the version decides — HTTP/1.1 defaults to
    /// keep-alive, HTTP/1.0 to close (a 1.0 client does not expect the
    /// connection to persist and would hang waiting for EOF).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }

    /// The path portion of the target (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query-string portion of the target (after the first `?`).
    pub fn query_string(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// Result of feeding the buffer to the parser.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// One complete request, plus how many buffer bytes it consumed
    /// (the caller drains them and keeps the rest for pipelining).
    Complete(Box<Request>, usize),
    /// The buffer holds a valid prefix; read more bytes.
    Incomplete,
    /// The buffer can never become a valid request.
    Error(HttpError),
}

/// Parses at most one request from `buf`. Pure: no allocation outside the
/// returned request, no I/O, total over arbitrary bytes.
pub fn parse_request(buf: &[u8], limits: &Limits) -> ParseOutcome {
    // --- head: request line + headers, terminated by CRLFCRLF ---------
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            return if buf.len() > limits.max_head_bytes {
                ParseOutcome::Error(HttpError::HeadTooLarge)
            } else {
                ParseOutcome::Incomplete
            };
        }
    };
    if head_end > limits.max_head_bytes {
        return ParseOutcome::Error(HttpError::HeadTooLarge);
    }
    let head = &buf[..head_end];
    let mut lines = split_crlf_lines(head);
    let request_line = match lines.next() {
        Some(Ok(line)) if !line.is_empty() => line,
        _ => return ParseOutcome::Error(HttpError::BadRequestLine),
    };
    let (method, target, http10) = match parse_request_line(request_line) {
        Ok(parts) => parts,
        Err(e) => return ParseOutcome::Error(e),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let line = match line {
            Ok(l) => l,
            Err(e) => return ParseOutcome::Error(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return ParseOutcome::Error(HttpError::HeadTooLarge);
        }
        match parse_header_line(line) {
            Ok(h) => headers.push(h),
            Err(e) => return ParseOutcome::Error(e),
        }
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
        http10,
    };

    // --- body framing ---------------------------------------------------
    let content_length = request.header("content-length");
    let transfer_encoding = request.header("transfer-encoding");
    let body_start = head_end;

    match (content_length, transfer_encoding) {
        (Some(_), Some(_)) => ParseOutcome::Error(HttpError::BadTransferEncoding),
        (None, Some(te)) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return ParseOutcome::Error(HttpError::BadTransferEncoding);
            }
            match parse_chunked(&buf[body_start..], limits.max_body_bytes) {
                Ok(Some((body, consumed))) => {
                    let mut request = request;
                    request.body = body;
                    ParseOutcome::Complete(Box::new(request), body_start + consumed)
                }
                Ok(None) => ParseOutcome::Incomplete,
                Err(e) => ParseOutcome::Error(e),
            }
        }
        (Some(cl), None) => {
            let len: usize = match parse_content_length(cl) {
                Ok(n) => n,
                Err(e) => return ParseOutcome::Error(e),
            };
            if len > limits.max_body_bytes {
                return ParseOutcome::Error(HttpError::BodyTooLarge);
            }
            if buf.len() < body_start + len {
                return ParseOutcome::Incomplete;
            }
            let mut request = request;
            request.body = buf[body_start..body_start + len].to_vec();
            ParseOutcome::Complete(Box::new(request), body_start + len)
        }
        (None, None) => ParseOutcome::Complete(Box::new(request), body_start),
    }
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Whether the buffer already holds a complete head (`\r\n\r\n` seen).
/// Used by the connection state machine to distinguish "still reading
/// headers" from "head done, collecting the body" without re-parsing.
pub fn head_complete(buf: &[u8]) -> bool {
    find_head_end(buf).is_some()
}

/// Iterates CRLF-separated lines of the head as UTF-8 (headers must be
/// ASCII-clean; raw control bytes are a [`HttpError::BadHeader`]).
fn split_crlf_lines(head: &[u8]) -> impl Iterator<Item = Result<&str, HttpError>> {
    head.split_inclusive2()
}

/// Tiny extension: split the head at `\r\n` boundaries without pulling in
/// regex machinery — and validate UTF-8 per line.
trait SplitCrlf {
    fn split_inclusive2(&self) -> CrlfLines<'_>;
}

impl SplitCrlf for [u8] {
    fn split_inclusive2(&self) -> CrlfLines<'_> {
        CrlfLines { rest: self }
    }
}

struct CrlfLines<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for CrlfLines<'a> {
    type Item = Result<&'a str, HttpError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        let (line, rest) = match self.rest.windows(2).position(|w| w == b"\r\n") {
            Some(i) => (&self.rest[..i], &self.rest[i + 2..]),
            None => (self.rest, &self.rest[..0]),
        };
        self.rest = rest;
        match std::str::from_utf8(line) {
            Ok(s) if !s.bytes().any(|b| b.is_ascii_control() && b != b'\t') => Some(Ok(s)),
            _ => Some(Err(HttpError::BadHeader)),
        }
    }
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Err(HttpError::BadRequestLine);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    match version {
        "HTTP/1.1" => Ok((method.to_owned(), target.to_owned(), false)),
        "HTTP/1.0" => Ok((method.to_owned(), target.to_owned(), true)),
        v if v.starts_with("HTTP/") => Err(HttpError::UnsupportedVersion),
        _ => Err(HttpError::BadRequestLine),
    }
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
    if name.is_empty()
        || name
            .bytes()
            .any(|b| b.is_ascii_whitespace() || !b.is_ascii_graphic())
    {
        return Err(HttpError::BadHeader);
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_owned()))
}

fn parse_content_length(value: &str) -> Result<usize, HttpError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::BadContentLength);
    }
    value.parse().map_err(|_| HttpError::BadContentLength)
}

/// Hard cap on one chunk-size line (hex size + extensions). Applied to
/// terminated lines *and* — via [`chunk_line_doomed`] — to unterminated
/// prefixes, so the two checks agree and fragmented parsing stays
/// byte-for-byte equivalent to whole-buffer parsing.
const MAX_CHUNK_LINE: usize = 256;

/// Trims ASCII space/tab from both ends of a chunk-size token. The
/// acceptor deliberately trims only these two bytes (not full Unicode
/// whitespace) so [`chunk_line_doomed`] can reason about prefixes without
/// worrying about multi-byte whitespace arriving split across reads.
fn trim_chunk_token(s: &[u8]) -> &[u8] {
    let start = s
        .iter()
        .position(|&b| b != b' ' && b != b'\t')
        .unwrap_or(s.len());
    let end = s
        .iter()
        .rposition(|&b| b != b' ' && b != b'\t')
        .map_or(start, |i| i + 1);
    &s[start..end]
}

/// Whether a trimmed chunk-size token is acceptable: nonempty, all hex,
/// and at most 16 digits (a `usize` can't hold more anyway; rejecting
/// leading-zero padding beyond that keeps the doomed-prefix check exact).
fn chunk_token_ok(tok: &[u8]) -> bool {
    !tok.is_empty() && tok.len() <= 16 && tok.iter().all(u8::is_ascii_hexdigit)
}

/// Whether an *unterminated* chunk-size line can never become valid, no
/// matter what bytes arrive next. This must be **prefix-stable** with
/// respect to the terminated-line acceptor above: it may only say
/// "doomed" when every possible continuation would be rejected —
/// otherwise a fragmented read could 400 a request the whole-buffer
/// parse accepts, breaking the event-loop equivalence property
/// (`fuzz_http.rs` locks this down).
fn chunk_line_doomed(line: &[u8]) -> bool {
    if line.len() > MAX_CHUNK_LINE {
        return true; // any termination yields a line over the cap
    }
    // A trailing '\r' may be the first half of the CRLF terminator.
    let line = match line.split_last() {
        Some((&b'\r', rest)) => rest,
        _ => line,
    };
    if let Some(semi) = line.iter().position(|&b| b == b';') {
        // A ';' freezes the size token: judge it exactly.
        return !chunk_token_ok(trim_chunk_token(&line[..semi]));
    }
    // No ';' yet — the token may still grow. Doom only what no suffix
    // can repair: a stray byte before/inside/after the hex run, or a
    // run already too long (trailing whitespace could still be followed
    // by ';', so it alone dooms nothing).
    let mut hex_digits = 0usize;
    #[derive(PartialEq)]
    enum Scan {
        Lead,
        Hex,
        Trail,
    }
    let mut state = Scan::Lead;
    for &b in line {
        state = match (state, b) {
            (Scan::Lead, b' ' | b'\t') => Scan::Lead,
            (Scan::Lead | Scan::Hex, d) if d.is_ascii_hexdigit() => {
                hex_digits += 1;
                if hex_digits > 16 {
                    return true;
                }
                Scan::Hex
            }
            (Scan::Hex | Scan::Trail, b' ' | b'\t') => Scan::Trail,
            _ => return true,
        };
    }
    false
}

/// De-chunks a `Transfer-Encoding: chunked` body. Returns the body and the
/// bytes consumed, `None` when more input is needed.
fn parse_chunked(buf: &[u8], max_body: usize) -> Result<Option<(Vec<u8>, usize)>, HttpError> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        // chunk-size line (hex, optional extensions after ';')
        let line_end = match buf[pos..].windows(2).position(|w| w == b"\r\n") {
            Some(i) => pos + i,
            None => {
                // Unterminated: wait for more bytes unless no suffix can
                // ever make this line valid.
                return if chunk_line_doomed(&buf[pos..]) {
                    Err(HttpError::BadChunk)
                } else {
                    Ok(None)
                };
            }
        };
        let line = &buf[pos..line_end];
        if line.len() > MAX_CHUNK_LINE {
            return Err(HttpError::BadChunk);
        }
        let size_part = match line.iter().position(|&b| b == b';') {
            Some(i) => &line[..i],
            None => line,
        };
        let size_hex = trim_chunk_token(size_part);
        if !chunk_token_ok(size_hex) {
            return Err(HttpError::BadChunk);
        }
        let size_hex = std::str::from_utf8(size_hex).map_err(|_| HttpError::BadChunk)?;
        let size = usize::from_str_radix(size_hex, 16).map_err(|_| HttpError::BadChunk)?;
        if body.len() + size > max_body {
            return Err(HttpError::BodyTooLarge);
        }
        let data_start = line_end + 2;
        if size == 0 {
            // last-chunk: expect the terminating CRLF (trailers rejected).
            if buf.len() < data_start + 2 {
                return Ok(None);
            }
            if &buf[data_start..data_start + 2] != b"\r\n" {
                return Err(HttpError::BadChunk);
            }
            return Ok(Some((body, data_start + 2)));
        }
        if buf.len() < data_start + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[data_start..data_start + size]);
        if &buf[data_start + size..data_start + size + 2] != b"\r\n" {
            return Err(HttpError::BadChunk);
        }
        pos = data_start + size + 2;
    }
}

/// Serialises one HTTP/1.1 response. `content_type` is omitted when the
/// body is empty; `extra_headers` ride along verbatim.
pub fn write_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    if !body.is_empty() {
        out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Serialises the head of a `Transfer-Encoding: chunked` response — the
/// framing the subscription stream uses, since its length is unknown when
/// the status line goes out. Follow with [`chunk`] frames and terminate
/// with [`CHUNK_END`].
pub fn write_chunked_head(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(160);
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Frames one chunk of a chunked response (hex length, CRLF, payload,
/// CRLF). Empty payloads are skipped entirely — an empty chunk would
/// terminate the stream.
pub fn chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating frame of a chunked response.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

/// Stamps `Connection: close` onto an already-serialised response, right
/// after the status line — the server calls this on every close path
/// (client asked, HTTP/1.0 default, shutdown drain) so clients are told
/// explicitly instead of having to infer the close from EOF.
pub fn mark_close(resp: &mut Vec<u8>) {
    if let Some(pos) = resp.windows(2).position(|w| w == b"\r\n") {
        let at = pos + 2;
        resp.splice(at..at, b"Connection: close\r\n".iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> ParseOutcome {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse(raw) {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path(), "/metrics");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(consumed, raw.len());
                assert!(req.body.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_content_length_body_and_pipelining_remainder() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /";
        match parse(raw) {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.body, b"hello");
                assert_eq!(&raw[consumed..], b"GET /");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_chunked_body() {
        let raw = b"POST /update HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        match parse(raw) {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.body, b"wikipedia");
                assert_eq!(consumed, raw.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel";
        assert_eq!(parse(raw), ParseOutcome::Incomplete);
        assert_eq!(parse(b"GET /x HT"), ParseOutcome::Incomplete);
        assert_eq!(
            parse(b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwi"),
            ParseOutcome::Incomplete
        );
    }

    #[test]
    fn rejects_smuggling_and_bad_framing() {
        let both = b"POST /u HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            parse(both),
            ParseOutcome::Error(HttpError::BadTransferEncoding)
        ));
        let gzip = b"POST /u HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        assert!(matches!(
            parse(gzip),
            ParseOutcome::Error(HttpError::BadTransferEncoding)
        ));
        let badchunk = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(matches!(
            parse(badchunk),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
    }

    #[test]
    fn enforces_limits() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
            max_headers: 2,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            parse_request(long_head.as_bytes(), &limits),
            ParseOutcome::Error(HttpError::HeadTooLarge)
        ));
        let big_body = b"POST /q HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(
            parse_request(big_body, &limits),
            ParseOutcome::Error(HttpError::BodyTooLarge)
        ));
        let many = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(
            parse_request(many, &limits),
            ParseOutcome::Error(HttpError::HeadTooLarge)
        ));
    }

    #[test]
    fn chunk_size_lines_over_the_cap_are_rejected_terminated_or_not() {
        // Terminated long line: rejected outright.
        let raw = format!(
            "POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4;{}\r\nwiki\r\n0\r\n\r\n",
            "e".repeat(MAX_CHUNK_LINE)
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
        // Unterminated prefix of the same line: also rejected (doomed),
        // never buffered forever.
        let tail = "\r\nwiki\r\n0\r\n\r\n".len();
        let prefix = &raw.as_bytes()[..raw.len() - tail];
        assert!(matches!(
            parse(prefix),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
    }

    #[test]
    fn chunk_doom_check_is_prefix_stable() {
        // For every chunked request the whole-buffer parser accepts, no
        // strict prefix may error: fragmented reads must be able to reach
        // the same final answer.
        let corpus: &[&[u8]] = &[
            b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n0\r\n\r\n",
            b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4;name=value\r\nwiki\r\n0\r\n\r\n",
            b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n 4 ;x\r\nwiki\r\n0\r\n\r\n",
            b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0004\r\nwiki\r\n0\r\n\r\n",
        ];
        for raw in corpus {
            assert!(
                matches!(parse(raw), ParseOutcome::Complete(..)),
                "corpus entry must be valid: {:?}",
                String::from_utf8_lossy(raw)
            );
            for cut in 0..raw.len() {
                assert!(
                    !matches!(parse(&raw[..cut]), ParseOutcome::Error(_)),
                    "prefix of a valid request errored at cut {cut}: {:?}",
                    String::from_utf8_lossy(&raw[..cut])
                );
            }
        }
    }

    #[test]
    fn doomed_chunk_prefixes_fail_early() {
        // A non-hex size byte can never be repaired by later bytes.
        let doomed = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz";
        assert!(matches!(
            parse(doomed),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
        // 17 hex digits overflow the token cap even unterminated.
        let long = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n12345678901234567";
        assert!(matches!(
            parse(long),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
        // An empty size frozen by ';' is doomed too.
        let semi = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n;ext";
        assert!(matches!(
            parse(semi),
            ParseOutcome::Error(HttpError::BadChunk)
        ));
        // But a bare trailing '\r' (maybe half a CRLF) is not doomed…
        let half = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r";
        assert_eq!(parse(half), ParseOutcome::Incomplete);
    }

    #[test]
    fn head_complete_tracks_the_terminator() {
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\ntrailing"));
    }

    #[test]
    fn error_statuses_are_4xx_or_505() {
        for e in [
            HttpError::BadRequestLine,
            HttpError::BadHeader,
            HttpError::HeadTooLarge,
            HttpError::BodyTooLarge,
            HttpError::BadContentLength,
            HttpError::BadTransferEncoding,
            HttpError::BadChunk,
            HttpError::UnsupportedVersion,
        ] {
            let s = e.status();
            assert!((400..=505).contains(&s), "{e}: {s}");
        }
    }

    #[test]
    fn connection_persistence_follows_version_defaults() {
        let parse_one = |raw: &[u8]| match parse(raw) {
            ParseOutcome::Complete(req, _) => req,
            other => panic!("{other:?}"),
        };
        // HTTP/1.1: keep-alive unless told to close.
        assert!(!parse_one(b"GET / HTTP/1.1\r\n\r\n").wants_close());
        assert!(parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_close());
        // HTTP/1.0: close unless told to keep alive.
        let v10 = parse_one(b"GET / HTTP/1.0\r\n\r\n");
        assert!(v10.http10);
        assert!(v10.wants_close(), "1.0 without a header must close");
        assert!(!parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").wants_close());
        assert!(parse_one(b"GET / HTTP/1.0\r\nConnection: Close\r\n\r\n").wants_close());
    }

    #[test]
    fn mark_close_lands_after_the_status_line() {
        let mut resp = write_response(200, "OK", "text/plain", &[], b"ok");
        mark_close(&mut resp);
        let text = String::from_utf8(resp).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 200 OK\r\nConnection: close\r\n"),
            "{text}"
        );
        assert!(text.ends_with("\r\n\r\nok"), "framing intact: {text}");
    }

    #[test]
    fn response_writer_round_trips_sizes() {
        let resp = write_response(
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "1".to_owned())],
            b"{}",
        );
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
